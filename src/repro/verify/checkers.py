"""Conservation-law and state-machine invariant checkers.

The paper's thermal claims rest on balance arguments — heat into the oil
equals heat out through the plate exchangers plus bath storage, and
manifold flows sum to pump flow (iDataCool closes its energy balance the
same way). Nothing outside hand-picked goldens enforced those laws, so a
regression that violates conservation while staying inside a golden
tolerance would ship silently. This module turns every simulator run into
a self-checking experiment.

Invariant catalog (see ``docs/VERIFICATION.md`` for tolerances and their
physical justification):

``energy_balance``
    Module/rack bath temperatures must replay exactly from the recorded
    per-step heat and rejection terms (``C dT = (Q_in - Q_out) dt``, with
    the model's bath ceiling clamp); integrated rack heat must equal the
    step sum; facility heat must equal the sum over racks.
``flow_continuity``
    Every manifold junction's external injection balances the net branch
    flow leaving it (checked per hydraulic solve, rack and facility loop).
``temperature_monotonicity``
    The bath moves in the direction of the net heat: positive net heat
    never cools the bath, negative net heat never warms it.
``thermal_ordering``
    A powered chip's junction is never colder than the bath it heats
    (skipped at the runaway clamp, where the model pins the junction).
``level_conservation``
    The open bath has no automatic make-up: the level only falls, and
    stays within [0, 1].
``supervisor_legality``
    The degradation ladder only escalates (NORMAL -> DEGRADED ->
    THROTTLED -> SAFE_SHUTDOWN), and SAFE_SHUTDOWN is only reachable
    through a recorded ``safe_shutdown`` latch action.
``result_consistency``
    Result scalars (maxima, aggregates, shares, plant dispatch) agree
    with the telemetry and the per-rack results they summarize.

Attach a :class:`CheckSuite` to a simulator via its ``checks=`` field;
with ``checks=None`` (the default) the simulators skip every hook, so the
existing <5 % observability overhead budget is untouched. Violations are
collected on the suite, counted in the process
:class:`~repro.obs.MetricsRegistry` (``verify_violations_total`` /
``verify_checks_total``) and — in strict mode — raised as
:class:`InvariantViolationError`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.control.supervisor import SupervisorState
from repro.obs import get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.racksim import RackSimResult, RackSimulator
    from repro.core.simulation import ModuleSimulator, SimulationResult
    from repro.facility.simulator import FacilityResult, FacilitySimulator

#: Names of the supervisor ladder states, by value.
_STATE_NAMES = {state.value: state.name for state in SupervisorState}


@dataclass(frozen=True)
class Violation:
    """One invariant violation: what law broke, where, and by how much."""

    invariant: str
    level: str
    where: str
    detail: str
    magnitude: float
    tolerance: float

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (canonical-JSON friendly, floats rounded)."""
        return {
            "invariant": self.invariant,
            "level": self.level,
            "where": self.where,
            "detail": self.detail,
            "magnitude": round(float(self.magnitude), 9),
            "tolerance": round(float(self.tolerance), 12),
        }


class InvariantViolationError(RuntimeError):
    """Raised in strict mode when a check finds violations."""

    def __init__(self, violations: Sequence[Violation]):
        self.violations: Tuple[Violation, ...] = tuple(violations)
        first = self.violations[0]
        extra = (
            "" if len(self.violations) == 1 else f" (+{len(self.violations) - 1} more)"
        )
        super().__init__(
            f"{first.invariant} at {first.level}:{first.where}: "
            f"{first.detail}{extra}"
        )


@dataclass(frozen=True)
class Tolerances:
    """Numerical slack per invariant family.

    The defaults are *reconstruction* tolerances, not physical ones: the
    checkers replay the simulators' own update expressions on the recorded
    telemetry, so agreement is expected to round-off, and the bands only
    absorb float noise (1e-9 C on a ~100 C state is ~1e4 ULP of margin).
    ``flow_abs_m3_s`` is the one genuinely physical band: the hydraulic
    solver converges junctions to 1e-9 m^3/s by default and the rack
    simulator's retry ladder may relax that to 1e-7, so 1e-6 (a
    thousandth of a typical loop flow) accepts every converged solve and
    rejects anything hydraulically meaningless.
    """

    #: Per-step bath-temperature reconstruction error, Celsius.
    energy_abs_c: float = 1.0e-9
    #: Relative slack on integrated/aggregated energies (sum reordering).
    energy_rel: float = 1.0e-9
    #: Worst acceptable junction continuity residual, m^3/s.
    flow_abs_m3_s: float = 1.0e-6
    #: Slack on flow-share sums and other O(1) ratios.
    share_abs: float = 1.0e-9
    #: Slack on temperature comparisons (maxima, ordering), Celsius.
    temp_abs_c: float = 1.0e-9
    #: Slack on level fractions.
    level_abs: float = 1.0e-12


@dataclass
class CheckSuite:
    """Collects invariant checks for one or more simulator runs.

    Parameters
    ----------
    strict:
        Raise :class:`InvariantViolationError` as soon as a check finds
        violations. With ``strict=False`` (metrics-only mode) violations
        accumulate on :attr:`violations` and are only counted in the obs
        registry.
    tolerances:
        Numerical slack per invariant family.

    One suite may be shared by the simulators of one composed run (the
    facility simulator forwards its suite to every rack); give concurrent
    sweeps one suite per case.
    """

    strict: bool = False
    tolerances: Tolerances = field(default_factory=Tolerances)
    violations: List[Violation] = field(default_factory=list)
    checks_run: int = 0

    # -- reporting ---------------------------------------------------------

    def _report(self, found: List[Violation]) -> List[Violation]:
        self.checks_run += 1
        obs = get_registry()
        if obs.enabled:
            obs.inc("verify_checks_total")
            if found:
                obs.inc("verify_violations_total", len(found))
        self.violations.extend(found)
        if self.strict and found:
            raise InvariantViolationError(found)
        return found

    @property
    def ok(self) -> bool:
        """Whether no check has found a violation so far."""
        return not self.violations

    # -- hydraulics --------------------------------------------------------

    def check_manifold(self, system, *, level: str, where: str) -> List[Violation]:
        """Flow continuity at every junction of a solved manifold system.

        ``system`` is any object with ``junction_residuals_m3_s()``
        (:class:`~repro.core.balancing.RackManifoldSystem`,
        :class:`~repro.facility.network.FacilityLoopSystem`).
        """
        tol = self.tolerances.flow_abs_m3_s
        found = [
            Violation(
                invariant="flow_continuity",
                level=level,
                where=f"{where} junction {name}",
                detail=(
                    f"junction {name} imbalance {residual:.3e} m^3/s "
                    f"exceeds {tol:g}"
                ),
                magnitude=abs(residual),
                tolerance=tol,
            )
            for name, residual in sorted(system.junction_residuals_m3_s().items())
            if not abs(residual) <= tol
        ]
        return self._report(found)

    # -- shared telemetry laws ---------------------------------------------

    def _bath_replay(
        self,
        found: List[Violation],
        *,
        level: str,
        label: str,
        times: Sequence[float],
        oil: Sequence[float],
        heat: Sequence[float],
        rejected: Sequence[float],
        junction: Sequence[float],
        dt_s: float,
        thermal_mass_j_k: float,
        ceiling_c: float,
        initial_oil_c: float,
        runaway_clamp_c: float,
    ) -> None:
        """Replay one bath's energy balance, monotonicity and ordering."""
        tol = self.tolerances
        prev = initial_oil_c
        for k in range(len(times)):
            expected = prev + (heat[k] - rejected[k]) * dt_s / thermal_mass_j_k
            expected = min(expected, ceiling_c)
            error = abs(oil[k] - expected)
            if not error <= tol.energy_abs_c:
                found.append(
                    Violation(
                        invariant="energy_balance",
                        level=level,
                        where=f"{label} t={times[k]:g}",
                        detail=(
                            f"bath {oil[k]:.6f} C does not replay from "
                            f"C dT = (Q_in - Q_out) dt (expected "
                            f"{expected:.6f} C, error {error:.3e} C)"
                        ),
                        magnitude=error,
                        tolerance=tol.energy_abs_c,
                    )
                )
            net = heat[k] - rejected[k]
            delta = oil[k] - prev
            if (net > 0.0 and delta < -tol.temp_abs_c) or (
                net < 0.0 and delta > tol.temp_abs_c
            ):
                found.append(
                    Violation(
                        invariant="temperature_monotonicity",
                        level=level,
                        where=f"{label} t={times[k]:g}",
                        detail=(
                            f"bath moved {delta:+.3e} C against a net heat "
                            f"of {net:+.3e} W"
                        ),
                        magnitude=abs(delta),
                        tolerance=tol.temp_abs_c,
                    )
                )
            if (
                junction[k] != runaway_clamp_c
                and junction[k] < prev - tol.temp_abs_c
            ):
                found.append(
                    Violation(
                        invariant="thermal_ordering",
                        level=level,
                        where=f"{label} t={times[k]:g}",
                        detail=(
                            f"junction {junction[k]:.6f} C colder than the "
                            f"bath {prev:.6f} C heating it"
                        ),
                        magnitude=prev - junction[k],
                        tolerance=tol.temp_abs_c,
                    )
                )
            prev = oil[k]

    def _supervisor_legality(
        self,
        found: List[Violation],
        *,
        level: str,
        times: Sequence[float],
        states: Sequence[float],
        final_state: Optional[str],
        recovery_actions: Sequence,
    ) -> None:
        """The ladder only escalates; SAFE_SHUTDOWN needs a latch record."""
        prev_value: Optional[int] = None
        for k in range(len(times)):
            value = int(states[k])
            if value != states[k] or value not in _STATE_NAMES:
                found.append(
                    Violation(
                        invariant="supervisor_legality",
                        level=level,
                        where=f"t={times[k]:g}",
                        detail=f"telemetry state {states[k]!r} is not a ladder state",
                        magnitude=float(states[k]),
                        tolerance=0.0,
                    )
                )
                continue
            if prev_value is not None and value < prev_value:
                found.append(
                    Violation(
                        invariant="supervisor_legality",
                        level=level,
                        where=f"t={times[k]:g}",
                        detail=(
                            f"ladder de-escalated {_STATE_NAMES[prev_value]} -> "
                            f"{_STATE_NAMES[value]} (states only escalate)"
                        ),
                        magnitude=float(prev_value - value),
                        tolerance=0.0,
                    )
                )
            prev_value = value
        if len(times):
            last = _STATE_NAMES.get(int(states[-1]))
            if final_state is not None and last != final_state:
                found.append(
                    Violation(
                        invariant="supervisor_legality",
                        level=level,
                        where=f"t={times[-1]:g}",
                        detail=(
                            f"result final_state {final_state!r} disagrees with "
                            f"last telemetry state {last!r}"
                        ),
                        magnitude=0.0,
                        tolerance=0.0,
                    )
                )
        if final_state == SupervisorState.SAFE_SHUTDOWN.name and not any(
            action.kind == "safe_shutdown" for action in recovery_actions
        ):
            found.append(
                Violation(
                    invariant="supervisor_legality",
                    level=level,
                    where="end of run",
                    detail=(
                        "SAFE_SHUTDOWN reached without a recorded "
                        "safe_shutdown latch action"
                    ),
                    magnitude=0.0,
                    tolerance=0.0,
                )
            )

    # -- module level ------------------------------------------------------

    def check_module_run(
        self,
        simulator: "ModuleSimulator",
        result: "SimulationResult",
        *,
        dt_s: float,
        initial_oil_c: float,
    ) -> List[Violation]:
        """Every module-level invariant on one finished run."""
        from repro.core.simulation import RUNAWAY_CLAMP_C

        tol = self.tolerances
        found: List[Violation] = []
        telemetry = result.telemetry
        times, oil = telemetry.series("oil_c")
        _, heat = telemetry.series("bath_heat_w")
        _, rejected = telemetry.series("rejected_w")
        _, junction = telemetry.series("junction_c")
        ceiling = simulator.module.section.oil.t_max_c - 1.0
        self._bath_replay(
            found,
            level="module",
            label="bath",
            times=times,
            oil=oil,
            heat=heat,
            rejected=rejected,
            junction=junction,
            dt_s=dt_s,
            thermal_mass_j_k=simulator.oil_thermal_mass_j_k,
            ceiling_c=ceiling,
            initial_oil_c=initial_oil_c,
            runaway_clamp_c=RUNAWAY_CLAMP_C,
        )

        _, level_series = telemetry.series("level_fraction")
        prev_level = 1.0
        for k in range(len(times)):
            value = level_series[k]
            if value > prev_level + tol.level_abs or not 0.0 <= value <= 1.0:
                found.append(
                    Violation(
                        invariant="level_conservation",
                        level="module",
                        where=f"t={times[k]:g}",
                        detail=(
                            f"bath level {value:.9f} rose from {prev_level:.9f} "
                            "or left [0, 1] (no automatic make-up exists)"
                        ),
                        magnitude=abs(value - prev_level),
                        tolerance=tol.level_abs,
                    )
                )
            prev_level = value

        max_oil = max([initial_oil_c] + [float(v) for v in oil])
        max_junction = max(float(v) for v in junction)
        for name, measured, recomputed in (
            ("max_oil_c", result.max_oil_c, max_oil),
            ("max_junction_c", result.max_junction_c, max_junction),
        ):
            error = abs(measured - recomputed)
            if not error <= tol.temp_abs_c:
                found.append(
                    Violation(
                        invariant="result_consistency",
                        level="module",
                        where=name,
                        detail=(
                            f"result {name} {measured:.6f} C disagrees with the "
                            f"telemetry maximum {recomputed:.6f} C"
                        ),
                        magnitude=error,
                        tolerance=tol.temp_abs_c,
                    )
                )

        if "supervisor_state" in telemetry.channels:
            _, states = telemetry.series("supervisor_state")
            self._supervisor_legality(
                found,
                level="module",
                times=times,
                states=states,
                final_state=result.final_state,
                recovery_actions=result.recovery_actions,
            )
        return self._report(found)

    # -- rack level --------------------------------------------------------

    def check_rack_run(
        self,
        simulator: "RackSimulator",
        result: "RackSimResult",
        *,
        dt_s: float,
    ) -> List[Violation]:
        """Every rack-level invariant on one finished run."""
        from repro.core.racksim import RUNAWAY_CLAMP_C

        tol = self.tolerances
        found: List[Violation] = []
        telemetry = result.telemetry
        times, water = telemetry.series("water_c")
        _, total_heat = telemetry.series("heat_w")
        _, total_rejected = telemetry.series("rejected_w")
        _, capacity = telemetry.series("chiller_capacity_w")
        _, target = telemetry.series("water_target_c")

        # Integrated energy balance: the result's heat_rejected_j must be
        # the step sum of the recorded rejection (same accumulation order,
        # so agreement is expected to round-off).
        integrated = 0.0
        for k in range(len(times)):
            integrated += total_rejected[k] * dt_s
        scale = max(abs(integrated), abs(result.heat_rejected_j), 1.0)
        error = abs(result.heat_rejected_j - integrated)
        if not error <= tol.energy_rel * scale:
            found.append(
                Violation(
                    invariant="energy_balance",
                    level="rack",
                    where="heat_rejected_j",
                    detail=(
                        f"result heat_rejected_j {result.heat_rejected_j:.6e} J "
                        f"differs from the integrated telemetry "
                        f"{integrated:.6e} J"
                    ),
                    magnitude=error,
                    tolerance=tol.energy_rel * scale,
                )
            )

        # Water-loop energy balance: replay the loop update (rejection in,
        # chiller removal out, spare-capacity pull-down to the target).
        # The recorded water_c is the pre-update value of each step.
        mass = simulator.water_thermal_mass_j_k
        w = water[0] if len(times) else 0.0
        for k in range(len(times)):
            error = abs(water[k] - w)
            if not error <= tol.energy_abs_c:
                found.append(
                    Violation(
                        invariant="energy_balance",
                        level="rack",
                        where=f"water loop t={times[k]:g}",
                        detail=(
                            f"water {water[k]:.6f} C does not replay from the "
                            f"loop balance (expected {w:.6f} C, error "
                            f"{error:.3e} C)"
                        ),
                        magnitude=error,
                        tolerance=tol.energy_abs_c,
                    )
                )
                w = water[k]  # re-anchor so one slip reports once
            removed = min(total_rejected[k], capacity[k])
            w = w + (total_rejected[k] - removed) * dt_s / mass
            if capacity[k] > total_rejected[k] and w > target[k]:
                spare = capacity[k] - total_rejected[k]
                w = w - spare * dt_s / mass
                w = max(w, target[k])

        max_water = max([float(v) for v in water] + [w]) if len(times) else w
        if not abs(result.max_water_c - max_water) <= tol.temp_abs_c:
            found.append(
                Violation(
                    invariant="result_consistency",
                    level="rack",
                    where="max_water_c",
                    detail=(
                        f"result max_water_c {result.max_water_c:.6f} C "
                        f"disagrees with the replayed maximum {max_water:.6f} C"
                    ),
                    magnitude=abs(result.max_water_c - max_water),
                    tolerance=tol.temp_abs_c,
                )
            )

        # Per-module bath replays (channels recorded when checks are on).
        n = simulator.rack.n_modules
        initial_oil = water[0] + 8.0 if len(times) else 0.0
        max_junction = -math.inf
        for i in range(n):
            if f"heat_{i}" not in telemetry.channels:
                continue
            _, oil_i = telemetry.series(f"oil_{i}")
            _, heat_i = telemetry.series(f"heat_{i}")
            _, rejected_i = telemetry.series(f"rejected_{i}")
            _, junction_i = telemetry.series(f"junction_{i}")
            max_junction = max(max_junction, max(float(v) for v in junction_i))
            ceiling = simulator._modules[i].section.oil.t_max_c - 1.0
            self._bath_replay(
                found,
                level="rack",
                label=f"cm_{i}",
                times=times,
                oil=oil_i,
                heat=heat_i,
                rejected=rejected_i,
                junction=junction_i,
                dt_s=dt_s,
                thermal_mass_j_k=simulator.oil_thermal_mass_j_k,
                ceiling_c=ceiling,
                initial_oil_c=initial_oil,
                runaway_clamp_c=RUNAWAY_CLAMP_C,
            )
        if math.isfinite(max_junction):
            error = abs(result.max_fpga_c - max_junction)
            if not error <= tol.temp_abs_c:
                found.append(
                    Violation(
                        invariant="result_consistency",
                        level="rack",
                        where="max_fpga_c",
                        detail=(
                            f"result max_fpga_c {result.max_fpga_c:.6f} C "
                            f"disagrees with the telemetry maximum "
                            f"{max_junction:.6f} C"
                        ),
                        magnitude=error,
                        tolerance=tol.temp_abs_c,
                    )
                )

        if "supervisor_state" in telemetry.channels:
            _, states = telemetry.series("supervisor_state")
            self._supervisor_legality(
                found,
                level="rack",
                times=times,
                states=states,
                final_state=result.final_state,
                recovery_actions=result.recovery_actions,
            )
            isolations = sum(
                1 for action in result.recovery_actions
                if action.kind == "module_shutdown"
            )
            if isolations != len(result.modules_shutdown):
                found.append(
                    Violation(
                        invariant="supervisor_legality",
                        level="rack",
                        where="modules_shutdown",
                        detail=(
                            f"{len(result.modules_shutdown)} modules shut down "
                            f"but {isolations} module_shutdown actions recorded"
                        ),
                        magnitude=float(
                            abs(isolations - len(result.modules_shutdown))
                        ),
                        tolerance=0.0,
                    )
                )
        return self._report(found)

    # -- facility level ----------------------------------------------------

    def check_facility_run(
        self,
        simulator: "FacilitySimulator",
        result: "FacilityResult",
    ) -> List[Violation]:
        """Aggregation invariants tying the facility result to its racks."""
        tol = self.tolerances
        found: List[Violation] = []
        racks = result.rack_results

        heat_sum = sum(r.heat_rejected_j for r in racks)
        scale = max(abs(heat_sum), abs(result.heat_rejected_j), 1.0)
        error = abs(result.heat_rejected_j - heat_sum)
        if not error <= tol.energy_rel * scale:
            found.append(
                Violation(
                    invariant="energy_balance",
                    level="facility",
                    where="heat_rejected_j",
                    detail=(
                        f"facility heat_rejected_j {result.heat_rejected_j:.6e} J "
                        f"is not the sum over racks {heat_sum:.6e} J"
                    ),
                    magnitude=error,
                    tolerance=tol.energy_rel * scale,
                )
            )
        load = result.heat_rejected_j / result.duration_s
        error = abs(result.plant.load_w - load)
        if not error <= tol.energy_rel * max(abs(load), 1.0):
            found.append(
                Violation(
                    invariant="energy_balance",
                    level="facility",
                    where="plant_load_w",
                    detail=(
                        f"plant dispatch load {result.plant.load_w:.6e} W is not "
                        f"the run-average heat {load:.6e} W"
                    ),
                    magnitude=error,
                    tolerance=tol.energy_rel * max(abs(load), 1.0),
                )
            )

        for name, facility_value, rack_value in (
            ("max_fpga_c", result.max_fpga_c, max(r.max_fpga_c for r in racks)),
            ("max_water_c", result.max_water_c, max(r.max_water_c for r in racks)),
        ):
            error = abs(facility_value - rack_value)
            if not error <= tol.temp_abs_c:
                found.append(
                    Violation(
                        invariant="result_consistency",
                        level="facility",
                        where=name,
                        detail=(
                            f"facility {name} {facility_value:.6f} C is not the "
                            f"worst rack's {rack_value:.6f} C"
                        ),
                        magnitude=error,
                        tolerance=tol.temp_abs_c,
                    )
                )

        total_flow = sum(result.branch_flows_m3_s)
        if total_flow > 0.0:
            share_sum = sum(result.flow_shares)
            if not abs(share_sum - 1.0) <= tol.share_abs:
                found.append(
                    Violation(
                        invariant="flow_continuity",
                        level="facility",
                        where="flow_shares",
                        detail=(
                            f"branch flow shares sum to {share_sum:.12f}, "
                            "not 1 (flows must add up to the pump flow)"
                        ),
                        magnitude=abs(share_sum - 1.0),
                        tolerance=tol.share_abs,
                    )
                )
            for j, (flow, share) in enumerate(
                zip(result.branch_flows_m3_s, result.flow_shares)
            ):
                error = abs(share * total_flow - flow)
                if not error <= tol.flow_abs_m3_s:
                    found.append(
                        Violation(
                            invariant="flow_continuity",
                            level="facility",
                            where=f"rack_{j} share",
                            detail=(
                                f"rack_{j} share {share:.9f} of the total flow "
                                f"disagrees with its branch flow {flow:.3e} m^3/s"
                            ),
                            magnitude=error,
                            tolerance=tol.flow_abs_m3_s,
                        )
                    )

        rack_cap = simulator.rack_factory().chiller.capacity_w
        for j, alloc in enumerate(result.allocated_capacity_w):
            if alloc < 0.0 or alloc > rack_cap * (1.0 + tol.energy_rel):
                found.append(
                    Violation(
                        invariant="result_consistency",
                        level="facility",
                        where=f"rack_{j} allocation",
                        detail=(
                            f"allocated capacity {alloc:.6e} W outside "
                            f"[0, rack capacity {rack_cap:.6e} W]"
                        ),
                        magnitude=float(alloc),
                        tolerance=rack_cap,
                    )
                )

        # Energy-accounting invariants (pPUE ledger). Structural laws, not
        # reconstructions: pPUE >= 1 by definition, the recovery sink can
        # never harvest more than the loop rejected, and the pPUE value
        # must replay from its own ledger entries.
        it = result.it_energy_j
        overhead = result.pump_energy_j + result.chiller_energy_j
        if result.ppue < 1.0 - tol.share_abs:
            found.append(
                Violation(
                    invariant="energy_balance",
                    level="facility",
                    where="ppue",
                    detail=f"pPUE {result.ppue:.9f} is below 1",
                    magnitude=1.0 - result.ppue,
                    tolerance=tol.share_abs,
                )
            )
        if result.recovered_heat_j > result.heat_rejected_j * (1.0 + tol.energy_rel):
            found.append(
                Violation(
                    invariant="energy_balance",
                    level="facility",
                    where="recovered_heat_j",
                    detail=(
                        f"recovered heat {result.recovered_heat_j:.6e} J exceeds "
                        f"the rejected heat {result.heat_rejected_j:.6e} J"
                    ),
                    magnitude=result.recovered_heat_j - result.heat_rejected_j,
                    tolerance=tol.energy_rel * max(result.heat_rejected_j, 1.0),
                )
            )
        if it > 0.0:
            expected_ppue = (it + overhead) / it
            error = abs(result.ppue - expected_ppue)
            if not error <= tol.energy_rel * expected_ppue:
                found.append(
                    Violation(
                        invariant="energy_balance",
                        level="facility",
                        where="ppue",
                        detail=(
                            f"pPUE {result.ppue:.9f} does not replay from "
                            f"(IT + pump + chiller) / IT = {expected_ppue:.9f}"
                        ),
                        magnitude=error,
                        tolerance=tol.energy_rel * expected_ppue,
                    )
                )

        if simulator.supervised:
            worst = max(
                (r.final_state for r in racks if r.final_state is not None),
                key=lambda name: SupervisorState[name].value,
                default=None,
            )
            if result.final_state != worst:
                found.append(
                    Violation(
                        invariant="supervisor_legality",
                        level="facility",
                        where="final_state",
                        detail=(
                            f"facility final_state {result.final_state!r} is not "
                            f"the worst rack state {worst!r}"
                        ),
                        magnitude=0.0,
                        tolerance=0.0,
                    )
                )
        return self._report(found)

    def check_facility_summary(self, summary: Mapping[str, object]) -> List[Violation]:
        """Aggregation invariants on a canonical facility summary dict.

        Works on :meth:`repro.facility.simulator.FacilityResult.to_dict`
        output — including the byte-pinned golden sweeps — so conservation
        can be audited on committed artifacts without re-running anything.
        Summary floats are rounded to 9 decimal places, so the bands here
        are rounding-aware rather than the reconstruction defaults.
        """
        found: List[Violation] = []
        racks = summary["racks"]
        n = len(racks)

        def _num(value) -> float:
            return float(value)

        if summary["n_racks"] != n:
            found.append(
                Violation(
                    invariant="result_consistency",
                    level="facility",
                    where="n_racks",
                    detail=(
                        f"summary lists {n} rack entries for n_racks="
                        f"{summary['n_racks']}"
                    ),
                    magnitude=float(abs(n - int(summary["n_racks"]))),
                    tolerance=0.0,
                )
            )
        heat = _num(summary["heat_rejected_j"])
        rack_heat = sum(_num(r["heat_rejected_j"]) for r in racks)
        # Each term was rounded to 1e-9 absolute; allow that plus float sum
        # noise on ~1e8 J magnitudes.
        tol_heat = max(1.0e-6, 1.0e-9 * abs(heat)) + 5.0e-10 * (n + 1)
        if not abs(heat - rack_heat) <= tol_heat:
            found.append(
                Violation(
                    invariant="energy_balance",
                    level="facility",
                    where="heat_rejected_j",
                    detail=(
                        f"summary heat_rejected_j {heat:.6e} J is not the sum "
                        f"over rack entries {rack_heat:.6e} J"
                    ),
                    magnitude=abs(heat - rack_heat),
                    tolerance=tol_heat,
                )
            )
        mean = _num(summary["mean_rejected_w"])
        duration = _num(summary["duration_s"])
        tol_mean = max(1.0e-6, 1.0e-9 * abs(heat)) + 5.0e-10 * max(duration, 1.0)
        if not abs(mean * duration - heat) <= tol_mean:
            found.append(
                Violation(
                    invariant="energy_balance",
                    level="facility",
                    where="mean_rejected_w",
                    detail=(
                        f"mean_rejected_w x duration {mean * duration:.6e} J is "
                        f"not heat_rejected_j {heat:.6e} J"
                    ),
                    magnitude=abs(mean * duration - heat),
                    tolerance=tol_mean,
                )
            )
        plant_load = _num(summary["plant_load_w"])
        if not abs(plant_load - mean) <= max(1.0e-8, 1.0e-9 * abs(mean)):
            found.append(
                Violation(
                    invariant="energy_balance",
                    level="facility",
                    where="plant_load_w",
                    detail=(
                        f"plant_load_w {plant_load:.6e} W is not the mean "
                        f"rejection {mean:.6e} W"
                    ),
                    magnitude=abs(plant_load - mean),
                    tolerance=max(1.0e-8, 1.0e-9 * abs(mean)),
                )
            )
        for name in ("max_fpga_c", "max_water_c"):
            value = _num(summary[name])
            worst = max(_num(r[name]) for r in racks)
            if not abs(value - worst) <= 2.0e-9:
                found.append(
                    Violation(
                        invariant="result_consistency",
                        level="facility",
                        where=name,
                        detail=(
                            f"summary {name} {value:.6f} C is not the worst "
                            f"rack entry {worst:.6f} C"
                        ),
                        magnitude=abs(value - worst),
                        tolerance=2.0e-9,
                    )
                )
        shares = [_num(s) for s in summary["flow_shares"]]
        if any(_num(f) > 0.0 for f in summary["branch_flows_m3_s"]):
            share_sum = sum(shares)
            tol_share = 2.0e-9 * (n + 1)
            if not abs(share_sum - 1.0) <= tol_share:
                found.append(
                    Violation(
                        invariant="flow_continuity",
                        level="facility",
                        where="flow_shares",
                        detail=(
                            f"summary flow shares sum to {share_sum:.12f}, not 1"
                        ),
                        magnitude=abs(share_sum - 1.0),
                        tolerance=tol_share,
                    )
                )
        shutdown = sum(len(r["modules_shutdown"]) for r in racks)
        if summary["modules_shutdown"] != shutdown:
            found.append(
                Violation(
                    invariant="result_consistency",
                    level="facility",
                    where="modules_shutdown",
                    detail=(
                        f"summary modules_shutdown {summary['modules_shutdown']} "
                        f"is not the rack total {shutdown}"
                    ),
                    magnitude=float(abs(int(summary["modules_shutdown"]) - shutdown)),
                    tolerance=0.0,
                )
            )
        if "ppue" in summary:
            # Energy-ledger keys (rounded to 9 decimals in the summary).
            it = _num(summary["it_energy_j"])
            overhead = _num(summary["pump_energy_j"]) + _num(
                summary["chiller_energy_j"]
            )
            ppue = _num(summary["ppue"])
            if ppue < 1.0 - 2.0e-9:
                found.append(
                    Violation(
                        invariant="energy_balance",
                        level="facility",
                        where="ppue",
                        detail=f"summary pPUE {ppue:.9f} is below 1",
                        magnitude=1.0 - ppue,
                        tolerance=2.0e-9,
                    )
                )
            recovered = _num(summary["recovered_heat_j"])
            if recovered > heat + max(1.0e-6, 1.0e-9 * abs(heat)):
                found.append(
                    Violation(
                        invariant="energy_balance",
                        level="facility",
                        where="recovered_heat_j",
                        detail=(
                            f"summary recovered heat {recovered:.6e} J exceeds "
                            f"the rejected heat {heat:.6e} J"
                        ),
                        magnitude=recovered - heat,
                        tolerance=max(1.0e-6, 1.0e-9 * abs(heat)),
                    )
                )
            if it > 0.0:
                expected_ppue = (it + overhead) / it
                # it/overhead each carry 5e-10 rounding; ppue carries its own.
                tol_ppue = 2.0e-9 + 2.0e-9 * expected_ppue
                if not abs(ppue - expected_ppue) <= tol_ppue:
                    found.append(
                        Violation(
                            invariant="energy_balance",
                            level="facility",
                            where="ppue",
                            detail=(
                                f"summary pPUE {ppue:.9f} does not replay from "
                                f"(IT + pump + chiller) / IT = "
                                f"{expected_ppue:.9f}"
                            ),
                            magnitude=abs(ppue - expected_ppue),
                            tolerance=tol_ppue,
                        )
                    )
        states = [r["final_state"] for r in racks if r["final_state"] is not None]
        worst_state = (
            max(states, key=lambda name: SupervisorState[name].value)
            if states
            else None
        )
        if summary["final_state"] != worst_state:
            found.append(
                Violation(
                    invariant="supervisor_legality",
                    level="facility",
                    where="final_state",
                    detail=(
                        f"summary final_state {summary['final_state']!r} is not "
                        f"the worst rack entry {worst_state!r}"
                    ),
                    magnitude=0.0,
                    tolerance=0.0,
                )
            )
        return self._report(found)

    # -- golden value specs ------------------------------------------------

    def check_value_spec(
        self,
        expected: Mapping[str, Mapping[str, float]],
        measured: Mapping[str, float],
        *,
        where: str,
    ) -> List[Violation]:
        """Measured quantities against a pinned ``{name: {value, rtol}}`` spec.

        The machinery behind the golden-acceptance property tests: the
        committed goldens (``tests/goldens/*.json``) must pass unmodified,
        and any seeded 5 % perturbation of an energy term must fail (every
        pinned rtol is at most 1e-3).
        """
        found: List[Violation] = []
        for name in sorted(expected):
            spec = expected[name]
            value = measured[name]
            tolerance = abs(spec["rtol"] * spec["value"])
            error = abs(value - spec["value"])
            if not (math.isfinite(value) and error <= tolerance):
                found.append(
                    Violation(
                        invariant="golden_consistency",
                        level="golden",
                        where=f"{where}.{name}",
                        detail=(
                            f"measured {value!r} vs pinned {spec['value']!r} "
                            f"(rtol {spec['rtol']:g})"
                        ),
                        magnitude=error,
                        tolerance=tolerance,
                    )
                )
        return self._report(found)


__all__ = [
    "CheckSuite",
    "InvariantViolationError",
    "Tolerances",
    "Violation",
]
