"""Batched rack-manifold balancing: N valve/pump/temperature scenarios at once.

Compiles a :class:`repro.core.balancing.RackManifoldSystem`'s hydraulic
network into index arrays once, then solves all N scenarios' junction
pressures with a damped Newton iteration on a stacked ``[N, M, M]``
Jacobian. Per-branch flow inverses mirror the serial element formulas
(:mod:`repro.hydraulics.elements`) exactly — the quadratic valve inverse,
the HX linear+quadratic inverse, the pump affinity curve, and the pipe's
Colebrook-style velocity fixed point with the serial 1e-13 settle test —
so a converged lane reproduces :func:`repro.hydraulics.solver.solve_network`
flows to solver precision.

Lanes are independent: each lane's Newton trajectory depends only on its
own residuals (per-lane step damping, per-lane convergence), so batch
results are permutation- and slicing-equivariant. Lanes that fail to
converge, or whose pipe fixed point fails to settle, are re-solved one at
a time through the serial :func:`solve_network` path — the same robust
fallback ladder the scalar solver uses — and flagged in ``fallback_mask``
without touching their neighbours.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.batch.props import eval_property, range_error, range_violation_mask
from repro.batch.rootfind import churchill_friction_factor
from repro.core.balancing import BalanceReport, RackManifoldSystem
from repro.hydraulics.elements import (
    CheckValve,
    HeatExchangerPassage,
    MinorLoss,
    Pipe,
    Pump,
    Valve,
)
from repro.hydraulics.network import HydraulicNetwork

__all__ = ["ManifoldBatch", "solve_manifold_batch"]

# Newton controls. The serial hybr solve drives residuals to machine noise;
# the batched loop matches it by converging each lane to _NEWTON_TOL worst
# imbalance (far below the 1e-9 acceptance threshold) before stopping.
_NEWTON_TOL = 1.0e-13
_MAX_BACKTRACKS = 30
# Derivative guards: quadratic inverses have a vertical tangent at dp = 0,
# so the Jacobian entries are evaluated at a floored |dp| (Pa). Affects the
# Newton direction only, never a converged value.
_DP_FLOOR_PA = 1.0e-9
_ARG_FLOOR = 1.0e-12
_PIPE_SETTLE_RTOL = 1.0e-13  # serial Pipe.flow_at_pressure_change_pa
_PIPE_MAX_ITER = 80


@dataclass(frozen=True)
class _BranchPlan:
    """One compiled branch: topology indices plus element dispatch info."""

    name: str
    a_idx: int  # index into the pressure vector (reference last)
    b_idx: int
    kind: str  # "pump" | "pipe" | "valve" | "minor" | "hx" | "check"
    element: object
    valve_slot: int = -1  # openings column for kind == "valve"


class _Compiled:
    """Index arrays and element tables for one network topology."""

    def __init__(self, system: RackManifoldSystem) -> None:
        network = system.network
        network.validate()
        self.system = system
        self.fluid = system.fluid
        names = network.junction_names
        reference = network.reference
        self.unknowns: List[str] = [n for n in names if n != reference]
        self.reference = reference
        self.junction_names = self.unknowns + [reference]
        index = {name: i for i, name in enumerate(self.junction_names)}
        self.n_unknowns = len(self.unknowns)
        self.injections = np.array(
            [network.injection(n) for n in self.unknowns], dtype=float
        )
        valve_slots = {name: i for i, name in enumerate(system._valve_names)}
        self.branches: List[_BranchPlan] = []
        for branch in network.branches:
            element = branch.element
            if isinstance(element, Pump):
                kind = "pump"
            elif isinstance(element, Pipe):
                kind = "pipe"
            elif isinstance(element, Valve):
                kind = "valve"
            elif isinstance(element, MinorLoss):
                kind = "minor"
            elif isinstance(element, HeatExchangerPassage):
                kind = "hx"
            elif isinstance(element, CheckValve):
                kind = "check"
            else:
                raise TypeError(
                    f"branch {branch.name!r}: unsupported element type "
                    f"{type(element).__name__} for the batched manifold engine"
                )
            self.branches.append(
                _BranchPlan(
                    name=branch.name,
                    a_idx=index[branch.node_a],
                    b_idx=index[branch.node_b],
                    kind=kind,
                    element=element,
                    valve_slot=valve_slots.get(branch.name, -1),
                )
            )
        self.branch_names = [b.name for b in self.branches]


def _quadratic_flow(
    dp: np.ndarray, c: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Invert ``dp = -c q |q|`` per lane; returns (flow, d flow / d dp).

    Mirrors the serial ``_invert_quadratic_loss``: ``q = -sign(dp)
    sqrt(|dp| / c)``. The derivative is evaluated at a floored |dp| so the
    Jacobian stays finite at the origin.
    """
    mag = np.abs(dp)
    c_safe = np.where(c > 0.0, c, 1.0)
    q = -np.copysign(np.sqrt(mag / c_safe), dp)
    grad = -1.0 / (2.0 * np.sqrt(c_safe * np.maximum(mag, _DP_FLOOR_PA)))
    q = np.where(dp == 0.0, 0.0, q)
    return q, grad


def _hx_flow(
    dp: np.ndarray, r1: float, r2: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Serial HeatExchangerPassage inverse: ``dp = -(r1 q + r2 q |q|)``."""
    drop = np.abs(dp)
    if r2 == 0.0:
        mag = drop / r1
    else:
        mag = (-r1 + np.sqrt(r1 * r1 + 4.0 * r2 * drop)) / (2.0 * r2)
    q = -np.copysign(mag, dp)
    q = np.where(dp == 0.0, 0.0, q)
    grad = -1.0 / (r1 + 2.0 * r2 * mag + (_DP_FLOOR_PA if r1 == 0.0 else 0.0))
    return q, grad


def _pump_flow(
    dp: np.ndarray, pump: Pump, speed: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Serial Pump inverse under the affinity laws, per-lane speed.

    Running lanes: ``q = s qmax sign(arg) sqrt(|arg|)`` with
    ``arg = 1 - dp / (s^2 dp0)``. Stopped lanes fall back to the serial
    high-resistance leak path.
    """
    dp0 = pump.curve.shutoff_pressure_pa
    qmax = pump.curve.max_flow_m3_s
    s = np.asarray(speed, dtype=float)
    running = s > 0.0
    s_safe = np.where(running, s, 1.0)
    arg = 1.0 - dp / (s_safe**2 * dp0)
    q_run = s_safe * qmax * np.copysign(np.sqrt(np.abs(arg)), arg)
    g_run = -qmax / (
        2.0 * s_safe * dp0 * np.sqrt(np.maximum(np.abs(arg), _ARG_FLOOR))
    )
    q_leak, g_leak = _quadratic_flow(
        dp, np.full(dp.shape, pump.stopped_leak_resistance_pa_per_m3_s2)
    )
    return np.where(running, q_run, q_leak), np.where(running, g_run, g_leak)


def _pipe_flow(
    dp: np.ndarray,
    pipe: Pipe,
    rho: np.ndarray,
    nu: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Serial Pipe inverse: masked Colebrook-style velocity fixed point.

    Per-lane mirror of ``Pipe.flow_at_pressure_change_pa``: iterate
    velocity -> Reynolds -> friction factor -> velocity with the serial
    1e-13 relative settle test and 80-iteration cap; each lane freezes the
    moment its own velocity settles, so the trajectory is lane-independent.
    Returns ``(flow, d flow / d dp, failed_mask)`` — failed lanes are the
    ones the serial code would send to the bracketed fallback.
    """
    head = np.abs(dp)
    rel_roughness = pipe.roughness_m / pipe.diameter_m
    geometry_l_d = pipe.length_m / pipe.diameter_m
    f = np.full(dp.shape, 0.02)
    velocity = np.zeros(dp.shape)
    live = head > 0.0  # dp == 0 lanes return exactly 0 without iterating
    done = ~live
    for _ in range(_PIPE_MAX_ITER):
        if not np.any(~done):
            break
        active = ~done
        geometry = f * geometry_l_d + pipe.minor_loss_k
        new_velocity = np.sqrt(2.0 * head / (rho * geometry))
        settled = active & (
            np.abs(new_velocity - velocity) <= _PIPE_SETTLE_RTOL * new_velocity
        )
        velocity = np.where(active, new_velocity, velocity)
        done = done | settled
        if not np.any(~done):
            break
        f = np.where(
            ~done,
            churchill_friction_factor(
                velocity * pipe.diameter_m / nu, rel_roughness
            ),
            f,
        )
    failed = live & ~done
    q = -np.copysign(velocity * pipe.area_m2, dp)
    q = np.where(dp == 0.0, 0.0, q)
    geometry = f * geometry_l_d + pipe.minor_loss_k
    grad = -pipe.area_m2 / (
        rho * geometry * np.maximum(velocity, 1.0e-9)
    )
    return q, grad, failed


class _BatchState:
    """Per-solve lane parameters and property tables."""

    def __init__(
        self,
        compiled: _Compiled,
        openings: np.ndarray,
        speed: np.ndarray,
        temperature_c: np.ndarray,
    ) -> None:
        self.openings = openings
        self.speed = speed
        self.temperature_c = temperature_c
        self.n = openings.shape[0]
        fluid = compiled.fluid
        self.bad_range = range_violation_mask(fluid, temperature_c)
        t_safe = np.where(
            self.bad_range, 0.5 * (fluid.t_min_c + fluid.t_max_c), temperature_c
        )
        self.rho = eval_property(fluid.density_model, t_safe)
        mu = eval_property(fluid.viscosity_model, t_safe)
        self.nu = mu / self.rho


def _branch_flows(
    compiled: _Compiled, state: _BatchState, dp: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flows and derivatives for every branch at the given per-branch dp.

    ``dp`` has shape [N, B]. Returns ``(q, grad, closed, pipe_failed)``;
    closed lanes of a valve branch carry exactly 0 flow and 0 derivative
    (the serial solver drops them from the residual assembly entirely).
    """
    n = dp.shape[0]
    n_branches = len(compiled.branches)
    q = np.zeros((n, n_branches))
    grad = np.zeros((n, n_branches))
    closed = np.zeros((n, n_branches), dtype=bool)
    pipe_failed = np.zeros(n, dtype=bool)
    for j, plan in enumerate(compiled.branches):
        col = dp[:, j]
        if plan.kind == "pump":
            q[:, j], grad[:, j] = _pump_flow(col, plan.element, state.speed)
        elif plan.kind == "pipe":
            qj, gj, failed = _pipe_flow(col, plan.element, state.rho, state.nu)
            q[:, j], grad[:, j] = qj, gj
            pipe_failed |= failed
        elif plan.kind == "valve":
            element: Valve = plan.element
            if plan.valve_slot >= 0:
                opening = state.openings[:, plan.valve_slot]
            else:
                opening = np.full(n, element.opening)
            shut = opening == 0.0
            opening_safe = np.where(shut, 1.0, opening)
            k_eff = element.k_open / opening_safe**2
            c = k_eff * state.rho / (2.0 * element.area_m2**2)
            qj, gj = _quadratic_flow(col, c)
            q[:, j] = np.where(shut, 0.0, qj)
            grad[:, j] = np.where(shut, 0.0, gj)
            closed[:, j] = shut
        elif plan.kind == "minor":
            element = plan.element
            c = element.k * state.rho / (2.0 * element.area_m2**2)
            q[:, j], grad[:, j] = _quadratic_flow(col, c)
        elif plan.kind == "hx":
            element = plan.element
            q[:, j], grad[:, j] = _hx_flow(
                col,
                element.r_linear_pa_per_m3_s,
                element.r_quadratic_pa_per_m3_s2,
            )
        else:  # check valve
            element = plan.element
            k = np.where(
                col < 0.0,
                element.k_forward,
                element.k_forward * element.reverse_multiplier,
            )
            c = k * state.rho / (2.0 * element.area_m2**2)
            q[:, j], grad[:, j] = _quadratic_flow(col, c)
    return q, grad, closed, pipe_failed


def _residuals(
    compiled: _Compiled, state: _BatchState, x: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Junction imbalance per lane: ``(res, q, grad, closed, pipe_failed)``.

    ``x`` is [N, M] unknown pressures; the reference is appended at zero,
    matching the serial unknown ordering.
    """
    n = x.shape[0]
    pressures = np.concatenate((x, np.zeros((n, 1))), axis=1)
    a_idx = np.array([b.a_idx for b in compiled.branches])
    b_idx = np.array([b.b_idx for b in compiled.branches])
    dp = pressures[:, b_idx] - pressures[:, a_idx]
    q, grad, closed, pipe_failed = _branch_flows(compiled, state, dp)
    res = np.tile(compiled.injections, (n, 1))
    m = compiled.n_unknowns
    for j, plan in enumerate(compiled.branches):
        if plan.a_idx < m:
            res[:, plan.a_idx] -= q[:, j]
        if plan.b_idx < m:
            res[:, plan.b_idx] += q[:, j]
    return res, q, grad, closed, pipe_failed


def _jacobian(
    compiled: _Compiled, grad: np.ndarray
) -> np.ndarray:
    """Assemble the stacked [N, M, M] nodal Jacobian from branch slopes."""
    n = grad.shape[0]
    m = compiled.n_unknowns
    jac = np.zeros((n, m, m))
    for j, plan in enumerate(compiled.branches):
        g = grad[:, j]
        a, b = plan.a_idx, plan.b_idx
        if a < m:
            jac[:, a, a] += g
            if b < m:
                jac[:, a, b] -= g
        if b < m:
            jac[:, b, b] += g
            if a < m:
                jac[:, b, a] -= g
    return jac


@dataclass
class ManifoldBatch:
    """Results of one batched manifold solve over N scenarios.

    ``loop_flows_m3_s`` rows reproduce the serial
    :meth:`RackManifoldSystem.solve` flow lists; ``fallback_mask`` marks
    lanes that were re-solved through the serial robust ladder.
    """

    system: RackManifoldSystem
    openings: np.ndarray  # [N, n_loops]
    pump_speed_fraction: np.ndarray  # [N]
    temperature_c: np.ndarray  # [N]
    loop_flows_m3_s: np.ndarray  # [N, n_loops]
    pump_flow_m3_s: np.ndarray  # [N]
    branch_flows_m3_s: np.ndarray  # [N, B] in network branch order
    pressures_pa: np.ndarray  # [N, J] in junction order (reference last)
    residual_m3_s: np.ndarray  # [N] worst junction imbalance
    junction_names: List[str]
    branch_names: List[str]
    fallback_mask: np.ndarray  # [N] bool
    errors: List[Optional[Exception]]

    @property
    def n(self) -> int:
        """Batch width."""
        return self.openings.shape[0]

    @property
    def ok(self) -> np.ndarray:
        """Per-lane success mask."""
        return np.array([e is None for e in self.errors], dtype=bool)

    def report(self, i: int) -> BalanceReport:
        """Rebuild the serial :class:`BalanceReport` for lane ``i``."""
        err = self.errors[i]
        if err is not None:
            raise err
        failed = [
            j for j in range(self.openings.shape[1]) if self.openings[i, j] == 0.0
        ]
        flows = [
            0.0 if j in failed else float(self.loop_flows_m3_s[i, j])
            for j in range(self.openings.shape[1])
        ]
        return BalanceReport(
            layout=self.system.layout, loop_flows_m3_s=flows, failed_loops=failed
        )

    def reports(self) -> List[BalanceReport]:
        """All lane reports; raises the first lane error encountered."""
        return [self.report(i) for i in range(self.n)]

    def junction_residuals(self, i: int) -> Dict[str, float]:
        """Continuity imbalance per junction for lane ``i`` (incl. reference)."""
        err = self.errors[i]
        if err is not None:
            raise err
        residuals: Dict[str, float] = {}
        flows = self.branch_flows_m3_s[i]
        name_to_col = {n: j for j, n in enumerate(self.branch_names)}
        network = self.system.network
        for name in network.junction_names:
            balance = network.injection(name)
            for branch, orientation in network.incident(name):
                balance -= orientation * float(flows[name_to_col[branch.name]])
            residuals[name] = balance
        return residuals


def _as_lane_array(value, n: int, name: str) -> np.ndarray:
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        return np.full(n, float(arr))
    if arr.ndim == 1 and arr.shape[0] == n:
        return arr.astype(float, copy=True)
    raise ValueError(f"{name} must be scalar or shape [{n}], got {arr.shape}")


def _current_openings(system: RackManifoldSystem) -> List[float]:
    return [
        system.network.branch(name).element.opening
        for name in system._valve_names
    ]


def _serial_lane_solve(
    compiled: _Compiled,
    state: _BatchState,
    lane: int,
    tolerance_m3_s: float,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Solve one lane through the serial robust ladder.

    Clones the template network with the lane's valve openings and pump
    speed, then runs :func:`solve_network` with a fresh solver (no cache
    cross-talk between lanes). Returns branch flows (compiled branch
    order), junction pressures (compiled junction order) and the serial
    worst residual.
    """
    from repro.hydraulics.solver import NetworkSolver, solve_network

    network = compiled.system.network
    clone = HydraulicNetwork()
    for name in network.junction_names:
        clone.add_junction(name, network.injection(name))
    clone.set_reference(network.reference)
    for plan in compiled.branches:
        branch = network.branch(plan.name)
        element = plan.element
        if plan.kind == "valve" and plan.valve_slot >= 0:
            element = dataclasses.replace(
                element, opening=float(state.openings[lane, plan.valve_slot])
            )
        elif plan.kind == "pump":
            element = dataclasses.replace(
                element, speed_fraction=float(state.speed[lane])
            )
        clone.add_branch(plan.name, branch.node_a, branch.node_b, element)
    result = solve_network(
        clone,
        compiled.fluid,
        float(state.temperature_c[lane]),
        tolerance_m3_s=tolerance_m3_s,
        solver=NetworkSolver(use_cache=False, warm_start=False),
    )
    flows = np.array([result.flows_m3_s[n] for n in compiled.branch_names])
    pressures = np.array(
        [result.pressures_pa[n] for n in compiled.junction_names]
    )
    return flows, pressures, result.residual_m3_s


def solve_manifold_batch(
    system: RackManifoldSystem,
    opening_fraction: Optional[Sequence] = None,
    *,
    pump_speed_fraction=None,
    temperature_c=None,
    tolerance_m3_s: float = 1.0e-9,
    max_iterations: int = 60,
) -> ManifoldBatch:
    """Solve N manifold balancing scenarios in one batched Newton iteration.

    Parameters
    ----------
    system:
        The template :class:`RackManifoldSystem`; its network supplies the
        topology and element sizing. The system object is not mutated.
    opening_fraction:
        Per-scenario valve openings, shape ``[N, n_loops]`` (or
        ``[n_loops]`` for a single scenario). ``None`` reads the system's
        current valve state for every lane. ``0`` closes a loop, exactly
        like :meth:`RackManifoldSystem.fail_loop`.
    pump_speed_fraction, temperature_c:
        Scalars or length-N arrays; default to the template pump's speed
        and the system temperature.
    tolerance_m3_s:
        Acceptance threshold on the worst junction imbalance (the serial
        meaning); the Newton loop itself converges far past it.
    max_iterations:
        Newton iteration cap per solve; lanes still unconverged at the cap
        are re-solved serially and flagged in ``fallback_mask``.
    """
    compiled = _Compiled(system)
    n_loops = system.n_loops

    if opening_fraction is None:
        openings = np.asarray(_current_openings(system), dtype=float)
    else:
        openings = np.asarray(opening_fraction, dtype=float)
    if openings.ndim == 1:
        openings = openings.reshape(1, -1)
    if openings.ndim != 2 or openings.shape[1] != n_loops:
        raise ValueError(
            f"opening_fraction must have shape [N, {n_loops}], got {openings.shape}"
        )
    if np.any((openings < 0.0) | (openings > 1.0)):
        raise ValueError("opening must be within [0, 1]")
    n = openings.shape[0]
    if n == 0:
        raise ValueError("opening_fraction must contain at least one scenario")

    if pump_speed_fraction is None:
        pump_speed_fraction = system.pump.speed_fraction
    speed = _as_lane_array(pump_speed_fraction, n, "pump_speed_fraction")
    if np.any((speed < 0.0) | (speed > 1.5)):
        raise ValueError("speed fraction must be within [0, 1.5]")
    if temperature_c is None:
        temperature_c = system.temperature_c
    temps = _as_lane_array(temperature_c, n, "temperature_c")

    state = _BatchState(compiled, openings, speed, temps)
    m = compiled.n_unknowns
    errors: List[Optional[Exception]] = [None] * n
    for i in np.flatnonzero(state.bad_range):
        errors[int(i)] = range_error(compiled.fluid, float(temps[int(i)]))
    alive = ~state.bad_range

    x = np.zeros((n, m))
    res, q, grad, closed, pipe_failed = _residuals(compiled, state, x)
    res_inf = np.max(np.abs(res), axis=1)
    need_fallback = pipe_failed & alive
    active = alive & ~need_fallback & (res_inf > _NEWTON_TOL)
    for _ in range(max_iterations):
        if not np.any(active):
            break
        jac = _jacobian(compiled, grad)
        # Regularize frozen lanes so the stacked solve never sees the
        # untouched zero blocks; their steps are discarded anyway.
        jac[~active] = np.eye(m)[None, :, :]
        rhs = np.where(active[:, None], -res, 0.0)
        try:
            step = np.linalg.solve(jac, rhs[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError:
            jac = jac + 1.0e-18 * np.eye(m)[None, :, :]
            step = np.linalg.solve(jac, rhs[:, :, None])[:, :, 0]
        # Per-lane backtracking: halve a lane's step until its own worst
        # imbalance improves. Lanes that never improve keep the smallest
        # step (the outer loop or the serial fallback catches true stalls).
        t = np.ones(n)
        searching = active.copy()
        accepted_x = x.copy()
        accepted = ~active
        for _ in range(_MAX_BACKTRACKS):
            if not np.any(searching):
                break
            trial = x + t[:, None] * step
            trial_res, _, _, _, trial_pipe_failed = _residuals(
                compiled, state, np.where(searching[:, None], trial, x)
            )
            trial_inf = np.max(np.abs(trial_res), axis=1)
            improved = searching & ~trial_pipe_failed & (trial_inf < res_inf)
            accepted_x = np.where(improved[:, None], trial, accepted_x)
            accepted = accepted | improved
            searching = searching & ~improved
            t = np.where(searching, 0.5 * t, t)
        stalled = active & ~accepted
        need_fallback = need_fallback | stalled
        active = active & ~stalled
        x = accepted_x
        res, q, grad, closed, pipe_failed = _residuals(compiled, state, x)
        res_inf = np.max(np.abs(res), axis=1)
        newly_failed = pipe_failed & active
        need_fallback = need_fallback | newly_failed
        active = active & ~newly_failed & (res_inf > _NEWTON_TOL)
    need_fallback = need_fallback | (active & (res_inf > tolerance_m3_s))

    pressures = np.concatenate((x, np.zeros((n, 1))), axis=1)
    flows = q
    worst = res_inf.copy()

    fallback_mask = need_fallback & alive
    for i in np.flatnonzero(fallback_mask):
        lane = int(i)
        try:
            lane_flows, lane_pressures, lane_worst = _serial_lane_solve(
                compiled, state, lane, tolerance_m3_s
            )
        except Exception as exc:  # serial ladder exhausted: record per-lane
            errors[lane] = exc
            continue
        flows[lane] = lane_flows
        pressures[lane] = lane_pressures
        worst[lane] = lane_worst

    # Closed-valve loops report exactly 0.0, mirroring the serial result.
    loop_cols = np.array(
        [compiled.branch_names.index(f"loop_{j}") for j in range(n_loops)]
    )
    loop_flows = flows[:, loop_cols].copy()
    loop_flows[openings == 0.0] = 0.0
    valve_cols = [
        j for j, b in enumerate(compiled.branches) if b.kind == "valve"
    ]
    for j in valve_cols:
        plan = compiled.branches[j]
        if plan.valve_slot >= 0:
            flows[openings[:, plan.valve_slot] == 0.0, j] = 0.0

    pump_col = next(
        j for j, b in enumerate(compiled.branches) if b.kind == "pump"
    )
    return ManifoldBatch(
        system=system,
        openings=openings,
        pump_speed_fraction=speed,
        temperature_c=temps,
        loop_flows_m3_s=loop_flows,
        pump_flow_m3_s=flows[:, pump_col].copy(),
        branch_flows_m3_s=flows,
        pressures_pa=pressures,
        residual_m3_s=worst,
        junction_names=list(compiled.junction_names),
        branch_names=list(compiled.branch_names),
        fallback_mask=fallback_mask,
        errors=errors,
    )
