"""Batched structure-of-arrays simulation engines.

The serial models in :mod:`repro.core` solve one scenario at a time
through a Python object graph; the engines here stack N scenarios'
parameters into numpy arrays and advance every root find, thermal
network and hydraulic residual in lockstep, so a whole sweep costs a
handful of vectorized passes instead of N object-graph walks.

The serial implementations stay untouched and act as the oracle: the
differential suite (``tests/test_batch_differential.py``) pins batched
results to per-object serial runs for every engine, and the N=1 views
(:meth:`repro.core.module.ComputationalModule.solve_steady_batch`,
:meth:`repro.core.simulation.ModuleSimulator.run_many`,
:meth:`repro.core.balancing.RackManifoldSystem.solve_batch`) rebuild the
exact serial report objects from batch rows.

Engines:

- :func:`repro.batch.steady.solve_module_steady_batch` — module
  steady-state energy balance over N (water_in, water_flow, utilization)
  scenarios;
- :func:`repro.batch.transient.run_module_transient_batch` — open-loop
  transient bath integration over N failure-event scenarios;
- :func:`repro.batch.manifold.solve_manifold_batch` — rack manifold
  balancing over N (valve openings, pump speed, temperature) scenarios
  with a batched damped-Newton solver and per-scenario serial fallback.

Sweep integration: :func:`repro.sweep.run_sweep_batched` chunks a case
list into batches and dispatches them over the serial/thread/process
backends; :mod:`repro.batch.sweepfns` supplies the picklable paired
serial/batched evaluations (``MODULE_STEADY``, ``RACK_MANIFOLD``).
"""

from importlib import import_module

__all__ = [
    "MODULE_STEADY",
    "ManifoldBatch",
    "ModuleSteadyBatch",
    "ModuleTransientBatch",
    "RACK_MANIFOLD",
    "run_module_transient_batch",
    "solve_manifold_batch",
    "solve_module_steady_batch",
]

_EXPORTS = {
    "ManifoldBatch": "repro.batch.manifold",
    "solve_manifold_batch": "repro.batch.manifold",
    "ModuleSteadyBatch": "repro.batch.steady",
    "solve_module_steady_batch": "repro.batch.steady",
    "ModuleTransientBatch": "repro.batch.transient",
    "run_module_transient_batch": "repro.batch.transient",
    "MODULE_STEADY": "repro.batch.sweepfns",
    "RACK_MANIFOLD": "repro.batch.sweepfns",
}


def __getattr__(name: str):
    # PEP 562 lazy re-exports: each engine pulls in numpy/scipy machinery,
    # so resolve submodules only when their symbols are first touched.
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.batch' has no attribute {name!r}")
    return getattr(import_module(module), name)
