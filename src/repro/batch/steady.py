"""Batched module steady-state: N coupled energy balances in lockstep.

Mirrors :meth:`repro.core.module.ComputationalModule.solve_steady` over a
batch of (water inlet temperature, water flow, FPGA utilization) scenarios.

The serial path scans the residual at ``water_in + 0.05 + 2k`` for the first
sign change, then refines with ``brentq``. The batch path exploits that the
scan grid is residual-independent: all 31 scan points of every lane are
evaluated in ONE wide vectorized pass (shape ``[31 * N]``), after which each
lane picks its serial bracket/error out of the grid; the ``brentq``
refinement becomes a fixed-budget lane-masked Illinois iteration whose
bracket ends far inside brentq's ``xtol=1e-6``.

Per-lane failures (thermal runaway while scanning, out-of-range fluid
temperatures, no equilibrium below ``water_in + 60``) are captured as the
same exception types and messages the serial path raises, and re-raised
lazily by :meth:`ModuleSteadyBatch.report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.batch import modulephys as phys
from repro.batch import props as bprops
from repro.core.immersion import ImmersedChipReport, ImmersionReport
from repro.core.module import ComputationalModule, ModuleReport
from repro.devices.power import ThermalRunawayError
from repro.heatexchange.plate import HxOperatingPoint

__all__ = ["ModuleSteadyBatch", "solve_module_steady_batch"]

#: Scan points of the serial sign-change search: ``low + 2k <= low + 60``.
SCAN_POINTS = 31
#: Illinois refinements of the 2-degree bracket; the residual is smooth, so
#: this lands far inside the serial brentq xtol of 1e-6. Lanes deactivate
#: individually once their bracket narrows below REFINE_XTOL (the
#: convergence test reads only the lane's own bracket, preserving lane
#: independence), so the typical solve uses ~10 evaluations.
REFINE_ITERATIONS = 18
REFINE_XTOL = 1.0e-9


@dataclass
class _Parts:
    """One batched evaluation of the serial ``heat_and_parts`` closure."""

    residual: np.ndarray
    flow: np.ndarray
    immersion: phys.ImmersionBatch
    pump_electrical: np.ndarray
    bath_heat: np.ndarray
    oil_hot: np.ndarray
    hx: phys.HxBatch


@dataclass
class ModuleSteadyBatch:
    """Result of :func:`solve_module_steady_batch` over N scenario lanes.

    Array fields are lane-indexed; ``errors[i]`` is None for solved lanes
    and the serial-equivalent exception otherwise. :meth:`report` rebuilds
    the exact serial :class:`ModuleReport` for one lane (raising for failed
    lanes, as the serial call would).
    """

    module: ComputationalModule
    water_in_c: np.ndarray
    water_flow_m3_s: np.ndarray
    utilization: Optional[np.ndarray]
    oil_cold_c: np.ndarray
    oil_hot_c: np.ndarray
    oil_flow_m3_s: np.ndarray
    pump_electrical_w: np.ndarray
    bath_heat_w: np.ndarray
    module_electrical_w: np.ndarray
    immersion: phys.ImmersionBatch
    hx: phys.HxBatch
    errors: List[Optional[BaseException]] = field(default_factory=list)

    def __len__(self) -> int:
        return self.water_in_c.shape[0]

    @property
    def ok(self) -> np.ndarray:
        """Boolean mask of lanes that solved."""
        return np.array([e is None for e in self.errors], dtype=bool)

    def report(self, i: int) -> ModuleReport:
        """Rebuild the serial :class:`ModuleReport` for lane ``i``."""
        error = self.errors[i]
        if error is not None:
            raise error
        imm = self.immersion
        chips = [
            ImmersedChipReport(
                position=position,
                local_oil_c=float(imm.local_oil_c[position, i]),
                junction_c=float(imm.junction_c[position, i]),
                power_w=float(imm.power_w[position, i]),
            )
            for position in range(imm.local_oil_c.shape[0])
        ]
        immersion = ImmersionReport(
            oil_supply_c=float(imm.oil_supply_c[i]),
            oil_return_c=float(imm.oil_return_c[i]),
            oil_flow_m3_s=float(imm.oil_flow_m3_s[i]),
            chips_per_board=chips,
            max_junction_c=float(imm.max_junction_c[i]),
            electronics_heat_w=float(imm.electronics_heat_w[i]),
            psu_heat_w=float(imm.psu_heat_w[i]),
            total_heat_w=float(imm.total_heat_w[i]),
            board_pressure_drop_pa=float(imm.board_pressure_drop_pa[i]),
            chip_resistance_k_w=float(imm.chip_resistance_k_w[i]),
        )
        hx_point = HxOperatingPoint(
            q_w=float(self.hx.q_w[i]),
            hot_out_c=float(self.hx.hot_out_c[i]),
            cold_out_c=float(self.hx.cold_out_c[i]),
            effectiveness=float(self.hx.effectiveness[i]),
            ntu=float(self.hx.ntu[i]),
            ua_w_k=float(self.hx.ua_w_k[i]),
            u_w_m2k=float(self.hx.u_w_m2k[i]),
            c_min_w_k=float(self.hx.c_min_w_k[i]),
            c_max_w_k=float(self.hx.c_max_w_k[i]),
        )
        return ModuleReport(
            immersion=immersion,
            hx=hx_point,
            oil_flow_m3_s=float(self.oil_flow_m3_s[i]),
            oil_cold_c=float(self.oil_cold_c[i]),
            oil_hot_c=float(self.oil_hot_c[i]),
            water_in_c=float(self.water_in_c[i]),
            water_flow_m3_s=float(self.water_flow_m3_s[i]),
            pump_electrical_w=float(self.pump_electrical_w[i]),
            total_heat_to_water_w=float(self.hx.q_w[i]),
            module_electrical_w=float(self.module_electrical_w[i]),
        )

    def reports(self) -> List[ModuleReport]:
        """Reports for every solved lane, in lane order (failed lanes raise)."""
        return [self.report(i) for i in range(len(self))]


class _SteadySolver:
    """Internal lockstep driver; one instance per batch call."""

    def __init__(
        self,
        module: ComputationalModule,
        water_in: np.ndarray,
        water_flow: np.ndarray,
        utilization: Optional[np.ndarray],
    ) -> None:
        self.module = module
        self.oil = module.section.oil
        self.water = module.water
        self.water_in = water_in
        self.water_flow = water_flow
        self.utilization = utilization
        n = water_in.shape[0]
        self.errors: List[Optional[BaseException]] = [None] * n
        self.alive = np.ones(n, dtype=bool)
        # Safe stand-ins used on lanes that are inactive or already failed,
        # so vectorized evaluations never see invalid inputs.
        self.water_in_safe = np.clip(water_in, self.water.t_min_c, self.water.t_max_c)
        self.water_flow_safe = np.where(water_flow > 0.0, water_flow, 1.0e-4)

    # -- error bookkeeping ------------------------------------------------

    def _fail(self, mask: np.ndarray, build) -> None:
        """Record an exception for every lane in ``mask`` (first error wins)."""
        for i in np.flatnonzero(mask):
            if self.errors[i] is None:
                self.errors[i] = build(int(i))
        self.alive &= ~mask

    def _runaway_error(
        self, resistance: np.ndarray, coolant: np.ndarray, i: int
    ) -> ThermalRunawayError:
        family = self.module.section.ccb.fpga.family
        return ThermalRunawayError(
            f"{family.name}: no thermal equilibrium below "
            f"{phys.JUNCTION_CEILING_C:.0f} C with "
            f"R={float(resistance[i]):.3f} K/W at "
            f"coolant {float(coolant[i]):.1f} C"
        )

    # -- core evaluation --------------------------------------------------

    def _eval_core(
        self,
        oil_cold: np.ndarray,
        water_in: np.ndarray,
        water_in_safe: np.ndarray,
        water_flow_safe: np.ndarray,
        utilization: Optional[np.ndarray],
    ) -> tuple:
        """Batched ``heat_and_parts`` + residual over arbitrary-length lanes.

        Performs no error bookkeeping; invalid lanes are clamped to safe
        inputs and flagged in the returned mask dict (in the serial raise
        order: cold-oil range, runaway, hot-oil range, water range).
        """
        module = self.module
        oil = self.oil
        bad_cold = bprops.range_violation_mask(oil, oil_cold)
        t_safe = np.clip(oil_cold, oil.t_min_c, oil.t_max_c)
        state = bprops.fluid_state(oil, t_safe, check=False)
        flow = phys.oil_loop_flow_batch(module, state)
        imm = phys.immersion_solve_batch(
            module.section, state, t_safe, flow, utilization
        )
        pump_electrical = phys.pump_electrical_batch(module.pump, flow)
        bath_heat = imm.total_heat_w + (
            pump_electrical if module.pump.immersed else 0.0
        )
        capacity = state.volumetric_heat_capacity_j_m3k * flow
        oil_hot = t_safe + bath_heat / capacity
        bad_hot = bprops.range_violation_mask(oil, oil_hot)
        oil_hot_safe = np.clip(oil_hot, oil.t_min_c, oil.t_max_c)
        bad_water = bprops.range_violation_mask(self.water, water_in)
        hx = phys.hx_solve_batch(
            module.hx,
            oil,
            oil_hot_safe,
            flow,
            self.water,
            water_in_safe,
            water_flow_safe,
        )
        parts = _Parts(
            residual=hx.q_w - bath_heat,
            flow=flow,
            immersion=imm,
            pump_electrical=pump_electrical,
            bath_heat=bath_heat,
            oil_hot=oil_hot,
            hx=hx,
        )
        masks: Dict[str, np.ndarray] = {
            "bad_cold": bad_cold,
            "runaway": imm.runaway,
            "bad_hot": bad_hot,
            "bad_water": bad_water,
        }
        return parts, masks

    def evaluate(self, oil_cold: np.ndarray, active: np.ndarray) -> tuple:
        """N-lane evaluation that records per-lane errors in serial order.

        Returns ``(parts, ok)`` where ``ok`` is ``active`` minus the lanes
        that failed during this evaluation.
        """
        active = active & self.alive
        parts, masks = self._eval_core(
            oil_cold,
            self.water_in,
            self.water_in_safe,
            self.water_flow_safe,
            self.utilization,
        )
        oil = self.oil
        imm = parts.immersion
        oil_hot = parts.oil_hot
        for name, mask in masks.items():
            bad = mask & active
            if not np.any(bad):
                continue
            if name == "bad_cold":
                self._fail(bad, lambda i: bprops.range_error(oil, float(oil_cold[i])))
            elif name == "runaway":
                self._fail(
                    bad,
                    lambda i: self._runaway_error(
                        imm.chip_resistance_k_w, imm.runaway_coolant_c, i
                    ),
                )
            elif name == "bad_hot":
                self._fail(bad, lambda i: bprops.range_error(oil, float(oil_hot[i])))
            else:
                self._fail(
                    bad,
                    lambda i: bprops.range_error(self.water, float(self.water_in[i])),
                )
            active = active & ~bad
        return parts, active

    # -- the solve --------------------------------------------------------

    def _tile(self, a: Optional[np.ndarray], reps: int) -> Optional[np.ndarray]:
        return None if a is None else np.tile(a, reps)

    def solve(self) -> ModuleSteadyBatch:
        n = self.water_in.shape[0]
        bad_flow = ~(self.water_flow > 0.0)
        if np.any(bad_flow):
            self._fail(bad_flow, lambda i: ValueError("water flow must be positive"))

        low = self.water_in + 0.05
        high = self.water_in + 60.0

        # Serial scan grid by sequential accumulation (t += 2.0), all lanes
        # and all points in one wide evaluation.
        rows = [low]
        for _ in range(1, SCAN_POINTS):
            rows.append(rows[-1] + 2.0)
        grid = np.stack(rows)  # [S, N]
        valid = grid <= high[None, :]
        parts, masks = self._eval_core(
            grid.reshape(-1),
            np.tile(self.water_in, SCAN_POINTS),
            np.tile(self.water_in_safe, SCAN_POINTS),
            np.tile(self.water_flow_safe, SCAN_POINTS),
            self._tile(self.utilization, SCAN_POINTS),
        )
        res = parts.residual.reshape(SCAN_POINTS, n)
        err_grid = {k: v.reshape(SCAN_POINTS, n) for k, v in masks.items()}
        any_err = (
            err_grid["bad_cold"]
            | err_grid["runaway"]
            | err_grid["bad_hot"]
            | err_grid["bad_water"]
        )
        event = valid & (any_err | (res >= 0.0))

        lanes = np.arange(n)
        has_event = event.any(axis=0)
        first = np.argmax(event, axis=0)  # 0 where no event; gated below
        exhausted = self.alive & ~has_event
        if np.any(exhausted):
            self._fail(
                exhausted,
                lambda i: ValueError(
                    f"{self.module.name}: no oil equilibrium below "
                    f"{float(high[i]):.0f} C — exchanger cannot reject "
                    "the bath heat"
                ),
            )

        err_at_first = any_err[first, lanes]
        failed = self.alive & has_event & err_at_first
        if np.any(failed):
            oil_hot_grid = parts.oil_hot.reshape(SCAN_POINTS, n)
            runaway_r = parts.immersion.chip_resistance_k_w.reshape(SCAN_POINTS, n)
            runaway_coolant = parts.immersion.runaway_coolant_c.reshape(SCAN_POINTS, n)
            for i in np.flatnonzero(failed):
                k = int(first[i])
                if err_grid["bad_cold"][k, i]:
                    error = bprops.range_error(self.oil, float(grid[k, i]))
                elif err_grid["runaway"][k, i]:
                    error = self._runaway_error(runaway_r[k], runaway_coolant[k], i)
                elif err_grid["bad_hot"][k, i]:
                    error = bprops.range_error(self.oil, float(oil_hot_grid[k, i]))
                else:
                    error = bprops.range_error(self.water, float(self.water_in[i]))
                if self.errors[i] is None:
                    self.errors[i] = error
            self.alive &= ~failed

        bracketed = self.alive & has_event & ~err_at_first
        prev = np.maximum(first - 1, 0)
        hi = np.where(bracketed, grid[first, lanes], low)
        lo = np.where(bracketed & (first > 0), grid[prev, lanes], low)
        fhi = res[first, lanes]
        flo = np.where(first > 0, res[prev, lanes], fhi)

        # Illinois refinement of the serial brentq stage, with per-lane
        # error capture on every evaluation.
        refine = bracketed.copy()
        last_side = np.zeros(n, dtype=np.int8)
        for _ in range(REFINE_ITERATIONS):
            refine = refine & self.alive & (np.abs(hi - lo) > REFINE_XTOL)
            if not np.any(refine):
                break
            with np.errstate(divide="ignore", invalid="ignore"):
                denom = fhi - flo
                x = hi - fhi * (hi - lo) / np.where(denom != 0.0, denom, 1.0)
            mid = 0.5 * (lo + hi)
            inside = np.isfinite(x) & (x > np.minimum(lo, hi)) & (x < np.maximum(lo, hi))
            x = np.where(inside, x, mid)
            step_parts, ok = self.evaluate(x, refine)
            refine = ok
            fx = step_parts.residual
            up = refine & (fx < 0.0)
            down = refine & ~up
            lo[up] = x[up]
            flo[up] = fx[up]
            hi[down] = x[down]
            fhi[down] = fx[down]
            repeat_up = up & (last_side == 1)
            repeat_down = down & (last_side == -1)
            fhi[repeat_up] = 0.5 * fhi[repeat_up]
            flo[repeat_down] = 0.5 * flo[repeat_down]
            last_side[up] = 1
            last_side[down] = -1
        with np.errstate(divide="ignore", invalid="ignore"):
            denom = fhi - flo
            estimate = hi - fhi * (hi - lo) / np.where(denom != 0.0, denom, 1.0)
        inside = (
            np.isfinite(estimate)
            & (estimate >= np.minimum(lo, hi))
            & (estimate <= np.maximum(lo, hi))
        )
        oil_cold = np.where(inside, estimate, 0.5 * (lo + hi))
        oil_cold = np.where(bracketed, oil_cold, low)

        final_active = bracketed & self.alive
        parts, _ok = self.evaluate(oil_cold, final_active)
        imm = parts.immersion
        module_electrical = (
            imm.electronics_heat_w + imm.psu_heat_w + parts.pump_electrical
        )
        return ModuleSteadyBatch(
            module=self.module,
            water_in_c=self.water_in,
            water_flow_m3_s=self.water_flow,
            utilization=self.utilization,
            oil_cold_c=oil_cold,
            oil_hot_c=parts.oil_hot,
            oil_flow_m3_s=parts.flow,
            pump_electrical_w=parts.pump_electrical,
            bath_heat_w=parts.bath_heat,
            module_electrical_w=module_electrical,
            immersion=imm,
            hx=parts.hx,
            errors=self.errors,
        )


def solve_module_steady_batch(
    module: ComputationalModule,
    water_in_c,
    water_flow_m3_s,
    utilization=None,
) -> ModuleSteadyBatch:
    """Solve N module steady states in one structure-of-arrays pass.

    Parameters broadcast against each other: scalars are shared across the
    batch, arrays give per-lane values. ``utilization`` of ``None`` uses the
    module's configured FPGA utilization on every lane.
    """
    water_in = np.asarray(water_in_c, dtype=float)
    water_flow = np.asarray(water_flow_m3_s, dtype=float)
    arrays = [water_in, water_flow]
    if utilization is not None:
        arrays.append(np.asarray(utilization, dtype=float))
    shape = np.broadcast_shapes(*(a.shape for a in arrays))
    if len(shape) > 1:
        raise ValueError("batch parameters must be scalars or 1-D arrays")
    n = shape[0] if shape else 1
    water_in = np.broadcast_to(water_in, (n,)).astype(float).copy()
    water_flow = np.broadcast_to(water_flow, (n,)).astype(float).copy()
    util = (
        None
        if utilization is None
        else np.broadcast_to(np.asarray(utilization, dtype=float), (n,)).copy()
    )
    solver = _SteadySolver(module, water_in, water_flow, util)
    return solver.solve()
