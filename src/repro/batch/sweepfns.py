"""Picklable serial/batched sweep evaluations over the batch engines.

Module-level functions (the process backend pickles them by reference)
pairing each serial per-case evaluation with its structure-of-arrays
equivalent, packaged as :class:`repro.sweep.batched.BatchedSweepFn` specs:

- :data:`MODULE_STEADY` — the T4/A1-style scan: one
  :func:`repro.core.skat.skat` (or ``skat_plus``) steady solve per
  (water inlet, water flow, utilization) point, batched through
  :func:`repro.batch.steady.solve_module_steady_batch`;
- :data:`RACK_MANIFOLD` — the F5-style scan: one
  :class:`~repro.core.balancing.RackManifoldSystem` balance per
  (valve openings, pump speed, temperature) point, batched through
  :func:`repro.batch.manifold.solve_manifold_batch`.

Both return plain-dict summaries (canonical-JSON friendly, picklable).
Lanes the batched engine records an error for come back as
:data:`~repro.sweep.batched.SERIAL_FALLBACK`, so the per-case serial path
re-raises the exact serial exception without disturbing neighbours.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.core.balancing import BalanceReport, RackManifoldSystem
from repro.core.module import ModuleReport
from repro.core.skat import skat, skat_plus
from repro.sweep.batched import SERIAL_FALLBACK, BatchedSweepFn
from repro.sweep.cases import SweepCase

__all__ = [
    "MODULE_STEADY",
    "RACK_MANIFOLD",
    "manifold_smoke_cases",
    "module_steady_batch",
    "module_steady_case",
    "rack_manifold_batch",
    "rack_manifold_case",
    "steady_smoke_cases",
]

_MODULE_FACTORIES = {"skat": skat, "skat_plus": skat_plus}


def _steady_params(case: SweepCase) -> Dict[str, Any]:
    params = case.params
    return {
        "module": params.get("module", "skat"),
        "n_boards": int(params.get("n_boards", 12)),
        "utilization": float(params.get("utilization", 0.9)),
        "water_in_c": float(params["water_in_c"]),
        "water_flow_m3_s": float(params["water_flow_m3_s"]),
    }


def _steady_summary(report: ModuleReport) -> Dict[str, float]:
    return {
        "oil_cold_c": report.oil_cold_c,
        "oil_hot_c": report.oil_hot_c,
        "oil_flow_m3_s": report.oil_flow_m3_s,
        "pump_electrical_w": report.pump_electrical_w,
        "max_fpga_c": report.max_fpga_c,
        "module_electrical_w": report.module_electrical_w,
        "total_heat_to_water_w": report.total_heat_to_water_w,
    }


def module_steady_case(case: SweepCase) -> Dict[str, float]:
    """Serial oracle: build the module and run the scalar steady solve."""
    p = _steady_params(case)
    module = _MODULE_FACTORIES[p["module"]](
        utilization=p["utilization"], n_boards=p["n_boards"]
    )
    report = module.solve_steady(
        water_in_c=p["water_in_c"], water_flow_m3_s=p["water_flow_m3_s"]
    )
    return _steady_summary(report)


def module_steady_batch(cases: List[SweepCase]) -> List[Any]:
    """One structure-of-arrays steady solve for a whole batch of cases.

    All cases in a batch must share the module configuration (factory and
    board count) — utilization and the water-side parameters vary per
    lane. A mixed batch raises, demoting it to per-case serial evaluation.
    """
    from repro.batch.steady import solve_module_steady_batch

    params = [_steady_params(case) for case in cases]
    configs = {(p["module"], p["n_boards"]) for p in params}
    if len(configs) != 1:
        raise ValueError(f"mixed module configurations in one batch: {configs}")
    (factory_name, n_boards), = configs
    module = _MODULE_FACTORIES[factory_name](n_boards=n_boards)
    batch = solve_module_steady_batch(
        module,
        np.array([p["water_in_c"] for p in params]),
        np.array([p["water_flow_m3_s"] for p in params]),
        utilization=np.array([p["utilization"] for p in params]),
    )
    return [
        SERIAL_FALLBACK if batch.errors[i] is not None
        else _steady_summary(batch.report(i))
        for i in range(len(cases))
    ]


def _manifold_params(case: SweepCase) -> Dict[str, Any]:
    params = case.params
    openings = [float(o) for o in params["openings"]]
    return {
        "openings": openings,
        "pump_speed": float(params.get("pump_speed", 1.0)),
        "temperature_c": float(params.get("temperature_c", 20.0)),
    }


def _manifold_summary(report: BalanceReport) -> Dict[str, Any]:
    return {
        "loop_flows_m3_s": list(report.loop_flows_m3_s),
        "failed_loops": list(report.failed_loops),
        "total_flow_m3_s": report.total_flow_m3_s,
    }


def rack_manifold_case(case: SweepCase) -> Dict[str, Any]:
    """Serial oracle: build the rack system and solve the balance."""
    p = _manifold_params(case)
    system = RackManifoldSystem(
        n_loops=len(p["openings"]),
        balancing_valves=p["openings"],
        temperature_c=p["temperature_c"],
    )
    system.pump.speed_fraction = p["pump_speed"]
    return _manifold_summary(system.solve())


def rack_manifold_batch(cases: List[SweepCase]) -> List[Any]:
    """One batched Newton solve for a whole batch of balancing scenarios.

    All cases in a batch must share the loop count; openings, pump speed
    and temperature vary per lane.
    """
    from repro.batch.manifold import solve_manifold_batch

    params = [_manifold_params(case) for case in cases]
    loop_counts = {len(p["openings"]) for p in params}
    if len(loop_counts) != 1:
        raise ValueError(f"mixed loop counts in one batch: {loop_counts}")
    (n_loops,) = loop_counts
    template = RackManifoldSystem(n_loops=n_loops)
    batch = solve_manifold_batch(
        template,
        np.array([p["openings"] for p in params]),
        pump_speed_fraction=np.array([p["pump_speed"] for p in params]),
        temperature_c=np.array([p["temperature_c"] for p in params]),
    )
    return [
        SERIAL_FALLBACK if batch.errors[i] is not None
        else _manifold_summary(batch.report(i))
        for i in range(len(cases))
    ]


#: The T4/A1-style module steady sweep, batched.
MODULE_STEADY = BatchedSweepFn(serial=module_steady_case, batch=module_steady_batch)
#: The F5-style rack balancing sweep, batched.
RACK_MANIFOLD = BatchedSweepFn(serial=rack_manifold_case, batch=rack_manifold_batch)


def steady_smoke_cases(
    n: int = 12, module: str = "skat", n_boards: int = 12
) -> List[SweepCase]:
    """A deterministic :data:`MODULE_STEADY` matrix of ``n`` cases.

    Sweeps water inlet temperature, water flow and FPGA utilization along
    a fixed grid, so the differential test, the pinned goldens and the CI
    smoke script (``scripts/run_batch_differential.py``) all see the same
    scenarios for the same ``n``.
    """
    cases = []
    for i in range(n):
        f = i / max(n - 1, 1)
        cases.append(
            SweepCase(
                name=f"steady_{i}",
                params={
                    "module": module,
                    "n_boards": n_boards,
                    "utilization": 0.55 + 0.45 * f,
                    "water_in_c": 14.0 + 12.0 * f,
                    "water_flow_m3_s": 5.0e-4 + 7.0e-4 * f,
                },
            )
        )
    return cases


def manifold_smoke_cases(
    n: int = 12, n_loops: int = 6, closed_every: int = 5
) -> List[SweepCase]:
    """A deterministic :data:`RACK_MANIFOLD` matrix of ``n`` cases.

    Seeded trim-valve openings, pump speeds and temperatures; every
    ``closed_every``-th case shuts one loop completely (the paper's
    servicing scenario) so the failed-loop bookkeeping is exercised
    mid-sweep.
    """
    rng = np.random.default_rng(190511)
    cases = []
    for i in range(n):
        openings = rng.uniform(0.3, 1.0, size=n_loops)
        closed = int(rng.integers(n_loops))
        if closed_every and i % closed_every == closed_every - 1:
            openings[closed] = 0.0
        cases.append(
            SweepCase(
                name=f"manifold_{i}",
                params={
                    "openings": [float(o) for o in openings],
                    "pump_speed": float(rng.uniform(0.7, 1.0)),
                    "temperature_c": float(rng.uniform(15.0, 35.0)),
                },
            )
        )
    return cases
