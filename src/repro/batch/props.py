"""Vectorized fluid-property evaluation.

Mirrors :mod:`repro.fluids.properties` element-wise: each property model
is evaluated with the same floating-point operation order as the scalar
code path, so a length-1 batch reproduces the serial value bit-for-bit
(up to the documented ``exp`` ULP caveat for Andrade/Sutherland, where
``numpy`` and ``math`` may differ in the last bit).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fluids.properties import (
    CELSIUS_TO_KELVIN,
    Andrade,
    Constant,
    Fluid,
    IdealGasDensity,
    Polynomial,
    PropertyModel,
    Sutherland,
)

__all__ = [
    "FluidState",
    "check_range",
    "eval_property",
    "fluid_state",
    "heat_capacity_rate",
    "range_violation_mask",
    "volumetric_heat_capacity",
]


def eval_property(model: PropertyModel, temperature_c: np.ndarray) -> np.ndarray:
    """Evaluate a property model over an array of temperatures [C]."""
    t = np.asarray(temperature_c, dtype=float)
    if isinstance(model, Constant):
        return np.full(t.shape, model.value)
    if isinstance(model, Polynomial):
        # Same accumulation order as the scalar loop (not Horner), so each
        # element matches the serial evaluation bit-for-bit.
        result = np.zeros(t.shape)
        power = np.ones(t.shape)
        for coefficient in model.coefficients:
            result = result + coefficient * power
            power = power * t
        return result
    if isinstance(model, Andrade):
        t_k = t + CELSIUS_TO_KELVIN
        return model.a * np.exp(model.b / (t_k - model.c))
    if isinstance(model, Sutherland):
        t_k = t + CELSIUS_TO_KELVIN
        ratio = t_k / model.t_ref_k
        return (
            model.mu_ref
            * ratio**1.5
            * (model.t_ref_k + model.s)
            / (t_k + model.s)
        )
    if isinstance(model, IdealGasDensity):
        return model.pressure_pa / (
            model.specific_gas_constant * (t + CELSIUS_TO_KELVIN)
        )
    # Unknown model subclass: fall back to per-element scalar dispatch
    # (correct for any PropertyModel, just not vectorized).
    flat = t.reshape(-1)
    return np.array([model(float(x)) for x in flat]).reshape(t.shape)


def range_violation_mask(fluid: Fluid, temperature_c: np.ndarray) -> np.ndarray:
    """Boolean mask of lanes whose temperature falls outside the fluid's
    validity range (NaN counts as a violation, matching the serial check)."""
    t = np.asarray(temperature_c, dtype=float)
    ok = (t >= fluid.t_min_c) & (t <= fluid.t_max_c)
    return ~ok


def range_error(fluid: Fluid, temperature_c: float) -> ValueError:
    """Build the same ValueError the serial ``Fluid._check_range`` raises."""
    return ValueError(
        f"{fluid.name}: temperature {temperature_c:.1f} C outside the "
        f"validity range [{fluid.t_min_c:.1f}, {fluid.t_max_c:.1f}] C"
    )


def check_range(fluid: Fluid, temperature_c: np.ndarray) -> None:
    """Raise for the first out-of-range lane, mirroring the serial message."""
    t = np.asarray(temperature_c, dtype=float)
    bad = range_violation_mask(fluid, t)
    if np.any(bad):
        worst = float(t.reshape(-1)[int(np.argmax(bad.reshape(-1)))])
        raise range_error(fluid, worst)


@dataclass(frozen=True)
class FluidState:
    """All transport properties of one fluid evaluated at a temperature array.

    Evaluating everything once per outer solver iteration keeps the inner
    (fixed-temperature) root finds free of repeated polynomial walks.
    """

    density_kg_m3: np.ndarray
    specific_heat_j_kgk: np.ndarray
    conductivity_w_mk: np.ndarray
    viscosity_pa_s: np.ndarray
    kinematic_viscosity_m2_s: np.ndarray
    prandtl: np.ndarray
    volumetric_heat_capacity_j_m3k: np.ndarray


def fluid_state(
    fluid: Fluid, temperature_c: np.ndarray, check: bool = True
) -> FluidState:
    """Evaluate density/cp/k/mu and the derived groups at ``temperature_c``.

    Derived groups use the same operation order as the serial accessors:
    ``nu = mu / rho``, ``Pr = mu * cp / k``, ``rho*cp``. Pass ``check=False``
    when the caller has already range-masked the lanes (inactive lanes then
    just carry extrapolated values that are never read).
    """
    t = np.asarray(temperature_c, dtype=float)
    if check:
        check_range(fluid, t)
    rho = eval_property(fluid.density_model, t)
    cp = eval_property(fluid.specific_heat_model, t)
    k = eval_property(fluid.conductivity_model, t)
    mu = eval_property(fluid.viscosity_model, t)
    return FluidState(
        density_kg_m3=rho,
        specific_heat_j_kgk=cp,
        conductivity_w_mk=k,
        viscosity_pa_s=mu,
        kinematic_viscosity_m2_s=mu / rho,
        prandtl=mu * cp / k,
        volumetric_heat_capacity_j_m3k=rho * cp,
    )


def volumetric_heat_capacity(fluid: Fluid, temperature_c: np.ndarray) -> np.ndarray:
    t = np.asarray(temperature_c, dtype=float)
    check_range(fluid, t)
    return eval_property(fluid.density_model, t) * eval_property(
        fluid.specific_heat_model, t
    )


def heat_capacity_rate(
    fluid: Fluid, volume_flow_m3_s: np.ndarray, temperature_c: np.ndarray
) -> np.ndarray:
    """``rho(T) * cp(T) * q`` with the serial operation order."""
    return volumetric_heat_capacity(fluid, temperature_c) * np.asarray(
        volume_flow_m3_s, dtype=float
    )
