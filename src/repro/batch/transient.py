"""Batched open-loop module transients: N failure scenarios in lockstep.

Mirrors :meth:`repro.core.simulation.ModuleSimulator.run` (open-loop: no
controller, supervisor, or PID — raise for anything else) over N lanes.
Per-lane failure-event schedules are folded into ``[T, N]`` pre-pass arrays
(pump speed, blockage opening, TIM multiplier, bath level), after which
every step advances all lanes with a handful of vectorized evaluations:
the bucketed flow cache becomes a shared bucket->flow dict fed by batched
pump/system solves, the junction fixed point the Lambert-W closed form,
and the bath update the same Euler step (element-wise identical floats, so
the energy-replay checker accepts rebuilt runs unchanged).

:meth:`ModuleTransientBatch.result` rebuilds the exact serial
:class:`~repro.core.simulation.SimulationResult` — telemetry channels,
counters (per-lane cache hit/miss accounting reproduces what a serial run
of that one scenario would have counted), extrema — for one lane.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.batch import modulephys as phys
from repro.batch import props as bprops
from repro.batch.props import FluidState
from repro.control.monitor import AlarmLog, TelemetryLog
from repro.core.module import ComputationalModule
from repro.core.simulation import RUNAWAY_CLAMP_C, SimulationResult
from repro.reliability.failures import FailureEvent

__all__ = ["ModuleTransientBatch", "run_module_transient_batch"]

#: Telemetry channels of an open-loop run, in serial recording order.
_CHANNELS = (
    "oil_c",
    "junction_c",
    "oil_flow_m3_s",
    "bath_heat_w",
    "rejected_w",
    "pump_speed",
    "level_fraction",
)


@dataclass
class ModuleTransientBatch:
    """Result of :func:`run_module_transient_batch` over N scenario lanes.

    Channel arrays are ``[T, N]`` (step-major); :meth:`result` rebuilds the
    serial :class:`SimulationResult` for one lane, raising the recorded
    serial-equivalent exception for lanes whose serial run would have
    failed.
    """

    module: ComputationalModule
    times_s: np.ndarray
    channels: Dict[str, np.ndarray]
    max_junction_c: np.ndarray
    max_oil_c: np.ndarray
    flow_cache_hits: np.ndarray
    flow_cache_misses: np.ndarray
    errors: List[Optional[BaseException]] = field(default_factory=list)

    def __len__(self) -> int:
        return self.max_oil_c.shape[0]

    @property
    def ok(self) -> np.ndarray:
        """Boolean mask of lanes that ran to completion."""
        return np.array([e is None for e in self.errors], dtype=bool)

    def result(self, i: int) -> SimulationResult:
        """Rebuild the serial :class:`SimulationResult` for lane ``i``."""
        error = self.errors[i]
        if error is not None:
            raise error
        telemetry = TelemetryLog()
        for t in range(self.times_s.shape[0]):
            telemetry.record(
                float(self.times_s[t]),
                {name: float(self.channels[name][t, i]) for name in _CHANNELS},
            )
        telemetry.set_counters(
            {
                "flow_cache_hits": int(self.flow_cache_hits[i]),
                "flow_cache_misses": int(self.flow_cache_misses[i]),
                "alarm_episodes": 0,
            }
        )
        return SimulationResult(
            telemetry=telemetry,
            max_junction_c=float(self.max_junction_c[i]),
            max_oil_c=float(self.max_oil_c[i]),
            shutdown_time_s=None,
            alarms_raised=0,
            alarm_log=AlarmLog(),
        )

    def results(self) -> List[SimulationResult]:
        """Results for every lane, in lane order (failed lanes raise)."""
        return [self.result(i) for i in range(len(self))]


def _natural_film_resistance(
    module: ComputationalModule, oil_c: np.ndarray, state: FluidState
) -> np.ndarray:
    """Junction-to-bath resistance with the pump stopped (buoyancy only).

    Vector mirror of the stagnant branch of ``ModuleSimulator._chip_state``:
    Churchill-Chu natural convection on the sink's wetted area at the
    serial's representative 25 K film difference, plus package and fresh
    TIM resistance.
    """
    section = module.section
    sink = section.sink
    family = section.ccb.fpga.family
    oil = section.oil
    dt = 0.5
    rho = state.density_kg_m3
    rho_hi = bprops.eval_property(oil.density_model, oil_c + dt)
    rho_lo = bprops.eval_property(oil.density_model, oil_c - dt)
    beta = -(rho_hi - rho_lo) / (2.0 * dt * rho)
    nu_kin = state.kinematic_viscosity_m2_s
    alpha = state.conductivity_w_mk / state.volumetric_heat_capacity_j_m3k
    length = sink.base_depth_m
    ra = 9.81 * beta * abs(25.0) * length**3 / (nu_kin * alpha)
    pr = state.prandtl
    term = (1.0 + (0.492 / pr) ** (9.0 / 16.0)) ** (8.0 / 27.0)
    nu_root = 0.825 + 0.387 * np.maximum(ra, 0.0) ** (1.0 / 6.0) / term
    h = nu_root**2 * state.conductivity_w_mk / length
    r_conv = 1.0 / (h * sink.wetted_area_m2)
    return (
        family.theta_jc_k_w
        + section.tim.resistance_k_w(family.die_area_m2)
        + r_conv
    )


class _TransientRunner:
    """Internal lockstep integrator; one instance per batch call."""

    def __init__(
        self,
        module: ComputationalModule,
        *,
        water_in_c: np.ndarray,
        water_flow_m3_s: np.ndarray,
        oil_thermal_mass_j_k: float,
        bath_volume_m3: float,
        flow_cache_bucket_c: float,
    ) -> None:
        if bath_volume_m3 <= 0:
            raise ValueError("bath volume must be positive")
        self.module = module
        self.water_in = water_in_c
        self.water_flow = water_flow_m3_s
        self.mass = oil_thermal_mass_j_k
        self.bath_volume = bath_volume_m3
        self.bucket_c = flow_cache_bucket_c
        self.oil = module.section.oil
        self.water = module.water
        # Shared bucket -> full-speed-flow cache: the flow at a bucketed
        # bath temperature is lane-independent, so one dict serves every
        # lane while per-lane hit/miss counters reproduce what each lane's
        # own serial run would have counted.
        self._flow_by_bucket: Dict[int, float] = {}

    def _full_speed_flow(self, oil_c: np.ndarray, need: np.ndarray) -> np.ndarray:
        """Cached full-speed loop flow per lane at the bucketed bath temp."""
        n = oil_c.shape[0]
        flow = np.zeros(n)
        if not np.any(need):
            return flow
        if self.bucket_c <= 0:
            state = bprops.fluid_state(
                self.oil,
                np.clip(oil_c, self.oil.t_min_c, self.oil.t_max_c),
                check=False,
            )
            exact = phys.oil_loop_flow_batch(self.module, state)
            return np.where(need, exact, 0.0)
        # int(round(x)) in the serial cache is round-half-even, same as rint.
        buckets = np.rint(oil_c / self.bucket_c).astype(np.int64)
        missing = sorted(
            {int(b) for b in buckets[need] if int(b) not in self._flow_by_bucket}
        )
        if missing:
            temps = np.array([b * self.bucket_c for b in missing])
            state = bprops.fluid_state(self.oil, temps, check=False)
            solved = phys.oil_loop_flow_batch(self.module, state)
            for b, q in zip(missing, solved):
                self._flow_by_bucket[b] = float(q)
        for i in np.flatnonzero(need):
            flow[i] = self._flow_by_bucket[int(buckets[i])]
        return flow

    def run(
        self,
        duration_s: float,
        events_per_lane: Sequence[Sequence[FailureEvent]],
        dt_s: float,
        initial_oil_c: Optional[np.ndarray],
    ) -> ModuleTransientBatch:
        if duration_s <= 0 or dt_s <= 0:
            raise ValueError("duration and step must be positive")
        module = self.module
        section = module.section
        fpga = section.ccb.fpga
        family = fpga.family
        n = self.water_in.shape[0]

        # Serial time grid: float accumulation, inclusive of duration.
        times: List[float] = []
        t = 0.0
        while t <= duration_s:
            times.append(t)
            t += dt_s
        steps = len(times)
        times_arr = np.asarray(times)

        # --- event pre-passes -> [T, N] schedules -----------------------
        sorted_events = [
            sorted(events_per_lane[i], key=lambda e: e.time_s) for i in range(n)
        ]
        tim_mult = np.ones((steps, n))
        speed = np.ones((steps, n))
        blockage = np.ones((steps, n))
        workload = np.ones((steps, n))
        for i, lane_events in enumerate(sorted_events):
            for event in lane_events:
                due = times_arr >= event.time_s
                if event.kind == "tim_washout":
                    tim_mult[due, i] = np.maximum(tim_mult[due, i], event.magnitude)
                elif event.kind == "pump_stop":
                    speed[due, i] = np.minimum(speed[due, i], event.magnitude)
                elif event.kind == "loop_blockage":
                    blockage[due, i] = np.minimum(blockage[due, i], event.magnitude)
                elif event.kind == "power_step":
                    # Latest-due-wins step function: lane events are
                    # time-sorted (stable), so later events overwrite.
                    workload[due, i] = event.magnitude
        # Bath level: the serial loop subtracts each due leak's rate every
        # step (in event order) and clamps; replay the same fold so the
        # floats match subtraction for subtraction.
        level = np.ones((steps, n))
        leak_amounts = [
            [
                (e.time_s, e.magnitude * dt_s / self.bath_volume)
                for e in lane_events
                if e.kind == "leak"
            ]
            for lane_events in sorted_events
        ]
        current = np.ones(n)
        for ti, time_s in enumerate(times):
            for i, leaks in enumerate(leak_amounts):
                for due_time, amount in leaks:
                    if time_s >= due_time:
                        current[i] -= amount
            current = np.maximum(current, 0.0)
            level[ti] = current

        # --- state ------------------------------------------------------
        oil_c = (
            np.array(initial_oil_c, dtype=float, copy=True)
            if initial_oil_c is not None
            else self.water_in + 8.0
        )
        initial_bath = oil_c.copy()
        max_junction = np.full(n, -1.0e9)
        max_oil = oil_c.copy()
        alive = np.ones(n, dtype=bool)
        errors: List[Optional[BaseException]] = [None] * n
        channels = {name: np.zeros((steps, n)) for name in _CHANNELS}
        oil_ceiling = self.oil.t_max_c - 1.0

        tim_service = section.tim.resistance_k_w(
            family.die_area_m2, section.tim_service_hours
        )
        tim_fresh = section.tim.resistance_k_w(family.die_area_m2)
        chips = section.n_boards * section.ccb.n_fpgas
        misc = section.n_boards * section.ccb.misc_power_w
        velocity_per_flow = (
            section.flow_fraction_over_boards
            / section.n_boards
            / section.board_channel_area_m2
        )

        def fail(mask: np.ndarray, build) -> None:
            for i in np.flatnonzero(mask):
                if errors[i] is None:
                    errors[i] = build(int(i))

        water_bad = bprops.range_violation_mask(self.water, self.water_in)

        for ti, time_s in enumerate(times):
            # Out-of-range bath: the serial run would raise a fluid range
            # error inside the chip-state evaluation. Freeze those lanes.
            oil_bad = alive & bprops.range_violation_mask(self.oil, oil_c)
            if np.any(oil_bad):
                fail(oil_bad, lambda i: bprops.range_error(self.oil, float(oil_c[i])))
                alive = alive & ~oil_bad

            step_speed = np.where(alive, speed[ti], 0.0)
            pumping = step_speed > 0.0
            flow = self._full_speed_flow(oil_c, pumping) * step_speed
            flow = flow * blockage[ti]
            flow = np.where(pumping, flow, 0.0)

            oil_safe = np.clip(oil_c, self.oil.t_min_c, self.oil.t_max_c)
            state = bprops.fluid_state(self.oil, oil_safe, check=False)

            # --- chip state (worst chip + total bath heat) --------------
            flowing = flow > 1.0e-6
            if np.any(flowing):
                perf = phys.pin_sink_performance_batch(
                    section.sink, state, flow * velocity_per_flow
                )
                resistance = family.theta_jc_k_w + tim_service + perf.total_resistance_k_w
            else:
                resistance = np.full(n, np.inf)
            if not np.all(flowing):
                natural = _natural_film_resistance(module, oil_safe, state)
                resistance = np.where(flowing, resistance, natural)
            resistance = resistance + (tim_mult[ti] - 1.0) * tim_fresh
            # Same clamp order as the serial min(1.0, max(0.0, u * w)).
            utilization = np.clip(
                np.full(n, fpga.utilization) * workload[ti], 0.0, 1.0
            )
            junction, runaway = phys.solve_junction_batch(
                fpga.power_model,
                resistance,
                oil_safe,
                utilization,
                fpga.clock_mhz,
            )
            junction = np.where(runaway, RUNAWAY_CLAMP_C, junction)
            chip_power = phys.fpga_power_batch(
                fpga.power_model,
                utilization,
                fpga.clock_mhz,
                junction,
            )
            controller_heat = (
                section.n_boards * chip_power / 3.0
                if section.ccb.separate_controller
                else 0.0
            )
            heat = chips * chip_power + misc + controller_heat
            psu_out = np.minimum(heat / section.n_psus, section.psu.rated_output_w)
            load = psu_out / section.psu.rated_output_w
            droop = 0.025 * (load - 0.5) ** 2 / 0.25
            eta = section.psu.peak_efficiency - droop
            psu_each = np.where(psu_out == 0.0, 0.0, psu_out * (1.0 / eta - 1.0))
            heat = heat + psu_each * section.n_psus

            # --- heat exchanger -----------------------------------------
            hx_mask = alive & flowing & (oil_c > self.water_in)
            bad_now = hx_mask & water_bad
            if np.any(bad_now):
                fail(
                    bad_now,
                    lambda i: bprops.range_error(self.water, float(self.water_in[i])),
                )
                alive = alive & ~bad_now
                hx_mask = hx_mask & ~bad_now
            if np.any(hx_mask):
                hx = phys.hx_solve_batch(
                    module.hx,
                    self.oil,
                    oil_safe,
                    np.where(flowing, flow, 1.0e-4),
                    self.water,
                    np.clip(self.water_in, self.water.t_min_c, self.water.t_max_c),
                    self.water_flow,
                )
                rejected = np.where(hx_mask, hx.q_w, 0.0)
            else:
                rejected = np.zeros(n)

            if module.pump.immersed:
                pump_heat = phys.pump_electrical_batch(module.pump, flow)
                heat = heat + np.where(step_speed > 0.0, pump_heat, 0.0)

            new_oil = oil_c + (heat - rejected) * dt_s / self.mass
            new_oil = np.minimum(new_oil, oil_ceiling)
            oil_c = np.where(alive, new_oil, oil_c)
            max_junction = np.where(
                alive, np.maximum(max_junction, junction), max_junction
            )
            max_oil = np.where(alive, np.maximum(max_oil, oil_c), max_oil)

            channels["oil_c"][ti] = oil_c
            channels["junction_c"][ti] = junction
            channels["oil_flow_m3_s"][ti] = flow
            channels["bath_heat_w"][ti] = heat
            channels["rejected_w"][ti] = rejected
            channels["pump_speed"][ti] = step_speed
            channels["level_fraction"][ti] = level[ti]

        # Per-lane cache accounting: a lane's serial run evaluates the
        # cached flow once per pumping step; distinct buckets are misses.
        hits = np.zeros(n, dtype=np.int64)
        misses = np.zeros(n, dtype=np.int64)
        if self.bucket_c > 0:
            oil_hist = channels["oil_c"]
            # Bucket of the oil temperature *entering* each step: step 0 uses
            # the initial bath, later steps the previous step's closing oil.
            entering = np.vstack([initial_bath.reshape(1, -1), oil_hist[:-1]])
            bucket_hist = np.rint(entering / self.bucket_c).astype(np.int64)
            pumping_hist = speed > 0.0
            for i in range(n):
                seen: set = set()
                for ti in range(steps):
                    if not pumping_hist[ti, i]:
                        continue
                    b = int(bucket_hist[ti, i])
                    if b in seen:
                        hits[i] += 1
                    else:
                        seen.add(b)
                        misses[i] += 1

        return ModuleTransientBatch(
            module=module,
            times_s=times_arr,
            channels=channels,
            max_junction_c=max_junction,
            max_oil_c=max_oil,
            flow_cache_hits=hits,
            flow_cache_misses=misses,
            errors=errors,
        )


def run_module_transient_batch(
    module: ComputationalModule,
    duration_s: float,
    events_per_lane: Sequence[Sequence[FailureEvent]],
    *,
    dt_s: float = 5.0,
    water_in_c=20.0,
    water_flow_m3_s=1.2e-3,
    oil_thermal_mass_j_k: float = 1.0e5,
    bath_volume_m3: float = 0.06,
    flow_cache_bucket_c: float = 0.1,
    initial_oil_c=None,
) -> ModuleTransientBatch:
    """Integrate N open-loop module transients in one lockstep pass.

    ``events_per_lane`` fixes the batch width N; ``water_in_c``,
    ``water_flow_m3_s`` and ``initial_oil_c`` broadcast (scalars are shared
    across lanes). Closed-loop features (controller, supervisor, PID,
    sensor faults) are the serial simulator's domain — the batch engine is
    the open-loop sweep fast path.
    """
    n = len(events_per_lane)
    if n == 0:
        raise ValueError("events_per_lane must contain at least one lane")
    # None means "no events", matching the serial run() signature.
    events_per_lane = [
        list(lane_events) if lane_events is not None else []
        for lane_events in events_per_lane
    ]
    for lane_events in events_per_lane:
        for event in lane_events:
            if event.kind == "sensor_fault":
                raise ValueError(
                    "sensor_fault events require the supervised serial "
                    "simulator; the batch engine is open-loop only"
                )
    water_in = np.broadcast_to(np.asarray(water_in_c, dtype=float), (n,)).copy()
    water_flow = np.broadcast_to(
        np.asarray(water_flow_m3_s, dtype=float), (n,)
    ).copy()
    initial = (
        None
        if initial_oil_c is None
        else np.broadcast_to(np.asarray(initial_oil_c, dtype=float), (n,)).copy()
    )
    runner = _TransientRunner(
        module,
        water_in_c=water_in,
        water_flow_m3_s=water_flow,
        oil_thermal_mass_j_k=oil_thermal_mass_j_k,
        bath_volume_m3=bath_volume_m3,
        flow_cache_bucket_c=flow_cache_bucket_c,
    )
    return runner.run(duration_s, events_per_lane, dt_s, initial)
