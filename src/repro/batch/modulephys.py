"""Vectorized module physics: every correlation on arrays of N scenarios.

Each function here is an element-wise mirror of one serial routine
(:mod:`repro.core.heatsink`, :mod:`repro.core.immersion`,
:mod:`repro.devices.power`, :mod:`repro.heatexchange.plate`,
:mod:`repro.hydraulics.elements`/``solver.operating_point``), written with
the same floating-point operation order so a length-1 batch reproduces the
serial numbers to the root-finder tolerances. The one deliberate algorithmic
substitution is the junction solve: where the serial path scans in 2-degree
steps and refines with ``brentq``, the batch path evaluates the closed-form
Lambert-W roots of ``T = a + k exp(T/45)`` and reuses the serial scan-grid
semantics only to decide *runaway* — bit-identical classification, with the
stable root accurate to machine precision (brentq's ``xtol=1e-10`` is the
looser of the two).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import reduce
from typing import Optional

import numpy as np

from repro.batch.props import FluidState, fluid_state
from repro.batch.rootfind import (
    churchill_friction_factor,
    illinois_masked,
    lambertw_real,
)
from repro.core.heatsink import PinFinHeatSink
from repro.core.immersion import ImmersionSection
from repro.core.module import ComputationalModule
from repro.devices.power import (
    LEAKAGE_EFOLD_K,
    REFERENCE_JUNCTION_C,
    REFERENCE_UTILIZATION,
    FpgaPowerModel,
)
from repro.devices.psu import ImmersionPsu
from repro.fluids.properties import Fluid
from repro.heatexchange.plate import PlateHeatExchanger
from repro.hydraulics.elements import Pipe, Pump

__all__ = [
    "HxBatch",
    "ImmersionBatch",
    "JUNCTION_CEILING_C",
    "SinkPerf",
    "effectiveness_counterflow_batch",
    "fpga_power_batch",
    "hx_pressure_drop_batch",
    "hx_solve_batch",
    "immersion_solve_batch",
    "oil_loop_flow_batch",
    "oil_system_pressure_drop_batch",
    "pin_sink_performance_batch",
    "pipe_loss_batch",
    "psu_heat_batch",
    "pump_electrical_batch",
    "pump_head_batch",
    "solve_junction_batch",
]

#: Mirror of the private ceiling in :mod:`repro.devices.power`.
JUNCTION_CEILING_C = 400.0

_SQRT_PI = math.sqrt(math.pi)
#: ``-1/e``: below this Lambert-W argument the junction balance has no roots.
_W_DOMAIN_EDGE = -math.exp(-1.0)


# ---------------------------------------------------------------------------
# Pin-fin heatsink
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SinkPerf:
    """Batched mirror of the fields of ``SinkPerformance`` the solvers use."""

    effective_conductance_w_k: np.ndarray
    total_resistance_k_w: np.ndarray
    pressure_drop_pa: np.ndarray


def pin_sink_performance_batch(
    sink: PinFinHeatSink, state: FluidState, approach_velocity_m_s: np.ndarray
) -> SinkPerf:
    """Vector mirror of :meth:`PinFinHeatSink.performance`.

    Stagnant lanes (zero approach velocity) get the serial ``_stagnant``
    limit: zero conductance, infinite resistance, zero pressure drop.
    """
    v = np.asarray(approach_velocity_m_s, dtype=float)
    gap_fraction = (sink.pin_pitch_m - sink.pin_diameter_m) / sink.pin_pitch_m
    v_max = v / gap_fraction
    stagnant = v_max == 0.0

    # Zukauskas pin-bank film (repro.thermal.convection.nusselt_pin_bank).
    re = v_max * sink.pin_diameter_m / state.kinematic_viscosity_m2_s
    pr = state.prandtl
    re_safe = np.where(re > 0.0, re, 1.0)
    pr36 = pr**0.36
    # Evaluate only the Zukauskas regimes some lane actually occupies —
    # per-lane selection is still the same masked expression, so gating on
    # a global any() never changes a value.
    creeping = re <= 40.0
    transitional = ~creeping & (re <= 1.0e3)
    turbulent = ~creeping & ~transitional
    base = np.zeros(re.shape)
    if np.any(creeping):
        base = np.where(creeping, 0.75 * re_safe**0.4 * pr36, base)
    if np.any(transitional):
        base = np.where(transitional, 0.51 * re_safe**0.5 * pr36, base)
    if np.any(turbulent):
        base = np.where(turbulent, 0.26 * re_safe**0.6 * pr36, base)
    base = np.where(re == 0.0, 0.0, base)
    nu = sink.turbulence_factor * base
    h = nu * state.conductivity_w_mk / sink.pin_diameter_m

    # Adiabatic-tip pin efficiency (pin_fin_efficiency).
    h_safe = np.where(h > 0.0, h, 1.0)
    m = np.sqrt(4.0 * h_safe / (sink.conductivity_w_mk * sink.pin_diameter_m))
    ml = m * sink.pin_height_m
    eta = np.where(ml < 1.0e-9, 1.0, np.tanh(ml) / np.where(ml > 0.0, ml, 1.0))

    conductance = h * (eta * sink.pin_area_m2 + sink.exposed_base_area_m2)
    h_effective = conductance / sink.base_area_m2

    # Lee-Song-Au-Moran spreading (repro.thermal.resistances.spreading) with
    # scalar geometry and a vector Biot number.
    r_source = math.sqrt(sink.source_area_m2 / math.pi)
    r_plate = math.sqrt(sink.base_area_m2 / math.pi)
    epsilon = r_source / r_plate
    if epsilon >= 1.0 - 1e-12:
        r_spread = np.zeros(v.shape)
    else:
        tau = sink.base_thickness_m / r_plate
        biot = h_effective * r_plate / sink.conductivity_w_mk
        lam = math.pi + 1.0 / (_SQRT_PI * epsilon)
        tanh_lt = math.tanh(lam * tau)
        lam_over_biot = lam / np.where(biot > 0.0, biot, 1.0)
        phi = (tanh_lt + lam_over_biot) / (1.0 + lam_over_biot * tanh_lt)
        psi_max = epsilon * tau / _SQRT_PI + (1.0 - epsilon) * phi / _SQRT_PI
        r_spread = psi_max / (sink.conductivity_w_mk * r_source * _SQRT_PI)

    dp = sink.pin_rows * 1.2 * state.density_kg_m3 * v_max**2 / 2.0

    conductance = np.where(stagnant, 0.0, conductance)
    r_spread = np.where(stagnant, 0.0, r_spread)
    with np.errstate(divide="ignore"):
        r_conv = 1.0 / np.where(stagnant, np.nan, conductance)
    total = np.where(stagnant, np.inf, r_spread + r_conv)
    return SinkPerf(
        effective_conductance_w_k=conductance,
        total_resistance_k_w=total,
        pressure_drop_pa=np.where(stagnant, 0.0, dp),
    )


# ---------------------------------------------------------------------------
# FPGA junction balance (Lambert-W closed form)
# ---------------------------------------------------------------------------


def solve_junction_batch(
    power_model: FpgaPowerModel,
    resistance_k_w: np.ndarray,
    coolant_c: np.ndarray,
    utilization: np.ndarray,
    clock_mhz: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form mirror of :meth:`FpgaPowerModel.solve_junction`.

    Returns ``(junction_c, runaway_mask)``. The balance
    ``T = coolant + R (P_dyn + P_s0 e^{(T-60)/45})`` has roots
    ``T = a - 45 W(arg)`` with ``a = coolant + R P_dyn``,
    ``arg = -(k/45) e^{a/45}``, ``k = R P_s0 e^{-60/45}``; branch 0 is the
    stable operating point, branch -1 the unstable high root. A lane is
    classified *runaway* exactly when the serial 2-degree scan would find no
    non-negative imbalance at or below the 400-degree ceiling: either no real
    roots exist, or the first scan-grid point at/above the stable root
    overshoots ``min(T_unstable, 400)``.
    """
    r = np.asarray(resistance_k_w, dtype=float)
    coolant = np.asarray(coolant_c, dtype=float)
    util = np.asarray(utilization, dtype=float)
    p_dyn = (
        power_model.dynamic_reference_w
        * (util / REFERENCE_UTILIZATION)
        * (clock_mhz / power_model.family.nominal_clock_mhz)
    )
    a = coolant + r * p_dyn
    k = r * power_model.static_reference_w * math.exp(
        -REFERENCE_JUNCTION_C / LEAKAGE_EFOLD_K
    )
    with np.errstate(over="ignore", invalid="ignore"):
        arg = -(k / LEAKAGE_EFOLD_K) * np.exp(a / LEAKAGE_EFOLD_K)
    has_roots = arg >= _W_DOMAIN_EDGE
    arg_safe = np.where(has_roots, arg, -0.25)
    # arg is strictly negative whenever leakage exists; keep branch -1 off
    # its singular endpoint for the (leakage-free) arg == 0 case.
    arg_m1 = np.where(arg_safe < 0.0, arg_safe, -1.0e-300)
    t_stable = a - LEAKAGE_EFOLD_K * lambertw_real(arg_safe, 0)
    t_unstable = a - LEAKAGE_EFOLD_K * lambertw_real(arg_m1, -1)
    # First point of the serial scan grid (coolant + 2k, k >= 1) at or above
    # the stable root; the serial scan succeeds iff it lands in the
    # non-negative-imbalance window [t_stable, t_unstable] at/below 400 C.
    steps = np.maximum(np.ceil((t_stable - coolant) / 2.0), 1.0)
    first_grid = coolant + 2.0 * steps
    found = has_roots & (first_grid <= JUNCTION_CEILING_C) & (first_grid <= t_unstable)
    junction = np.where(found, t_stable, coolant)
    return junction, ~found


def fpga_power_batch(
    power_model: FpgaPowerModel,
    utilization: np.ndarray,
    clock_mhz: float,
    junction_c: np.ndarray,
) -> np.ndarray:
    """Vector mirror of :meth:`FpgaPowerModel.total_power_w`."""
    util = np.asarray(utilization, dtype=float)
    dynamic = (
        power_model.dynamic_reference_w
        * (util / REFERENCE_UTILIZATION)
        * (clock_mhz / power_model.family.nominal_clock_mhz)
    )
    static = power_model.static_reference_w * np.exp(
        (np.asarray(junction_c, dtype=float) - REFERENCE_JUNCTION_C) / LEAKAGE_EFOLD_K
    )
    return dynamic + static


# ---------------------------------------------------------------------------
# Immersion bath
# ---------------------------------------------------------------------------


def psu_heat_batch(psu: ImmersionPsu, output_each_w: np.ndarray, n_psus: int) -> np.ndarray:
    """Vector mirror of the PSU-loss sum in :meth:`ImmersionSection.solve`."""
    out = np.minimum(np.asarray(output_each_w, dtype=float), psu.rated_output_w)
    load = out / psu.rated_output_w
    droop = 0.025 * (load - 0.5) ** 2 / 0.25
    eta = psu.peak_efficiency - droop
    dissipation = np.where(
        out == 0.0, 0.0, out * (1.0 / np.where(out == 0.0, 1.0, eta) - 1.0)
    )
    # Serial code sums n identical dissipation terms; accumulate the same way.
    total = np.zeros(out.shape)
    for _ in range(n_psus):
        total = total + dissipation
    return total


@dataclass(frozen=True)
class ImmersionBatch:
    """Batched mirror of ``ImmersionReport`` (chip axis first: ``[P, N]``)."""

    oil_supply_c: np.ndarray
    oil_return_c: np.ndarray
    oil_flow_m3_s: np.ndarray
    local_oil_c: np.ndarray
    junction_c: np.ndarray
    power_w: np.ndarray
    max_junction_c: np.ndarray
    electronics_heat_w: np.ndarray
    psu_heat_w: np.ndarray
    total_heat_w: np.ndarray
    board_pressure_drop_pa: np.ndarray
    chip_resistance_k_w: np.ndarray
    runaway: np.ndarray
    #: Local oil temperature at the first chip position that ran away
    #: (undefined where ``runaway`` is False) — used to rebuild the serial
    #: ``ThermalRunawayError`` message for errored lanes.
    runaway_coolant_c: np.ndarray


def immersion_solve_batch(
    section: ImmersionSection,
    state_supply: FluidState,
    oil_supply_c: np.ndarray,
    oil_flow_m3_s: np.ndarray,
    utilization: Optional[np.ndarray] = None,
) -> ImmersionBatch:
    """Vector mirror of :meth:`ImmersionSection.solve`.

    ``state_supply`` must be the oil's :class:`FluidState` at
    ``oil_supply_c``. Lanes that hit thermal runaway at any chip position
    are flagged in ``runaway`` and carry placeholder temperatures; callers
    must error those lanes out rather than read their numbers.
    """
    supply = np.asarray(oil_supply_c, dtype=float)
    flow = np.asarray(oil_flow_m3_s, dtype=float)
    fpga = section.ccb.fpga
    power_model = fpga.power_model
    util = fpga.utilization if utilization is None else np.asarray(utilization, float)
    clock = fpga.clock_mhz

    per_board_flow = flow * section.flow_fraction_over_boards / section.n_boards
    oil_capacity = state_supply.volumetric_heat_capacity_j_m3k * per_board_flow

    velocity = per_board_flow / section.board_channel_area_m2
    perf = pin_sink_performance_batch(section.sink, state_supply, velocity)
    family = fpga.family
    r_tim = section.tim.resistance_k_w(family.die_area_m2, section.tim_service_hours)
    resistance = family.theta_jc_k_w + r_tim + perf.total_resistance_k_w

    runaway = np.zeros(supply.shape, dtype=bool)
    runaway_coolant = np.zeros(supply.shape)
    upstream = np.zeros(supply.shape)
    local_rows = []
    junction_rows = []
    power_rows = []
    for _position in range(section.ccb.n_fpgas):
        local = supply + upstream / oil_capacity
        junction, lane_runaway = solve_junction_batch(
            power_model, resistance, local, util, clock
        )
        power = fpga_power_batch(power_model, util, clock, junction)
        first_runaway = lane_runaway & ~runaway
        runaway_coolant = np.where(first_runaway, local, runaway_coolant)
        runaway = runaway | lane_runaway
        local_rows.append(local)
        junction_rows.append(junction)
        power_rows.append(power)
        upstream = upstream + power

    board_heat = upstream + section.ccb.misc_power_w
    if section.ccb.separate_controller:
        board_heat = board_heat + power_rows[0] / 3.0
    electronics = board_heat * section.n_boards
    psu_output_each = electronics / section.n_psus
    psu_heat = psu_heat_batch(section.psu, psu_output_each, section.n_psus)
    total = electronics + psu_heat

    bulk_capacity = state_supply.volumetric_heat_capacity_j_m3k * flow
    return ImmersionBatch(
        oil_supply_c=supply,
        oil_return_c=supply + total / bulk_capacity,
        oil_flow_m3_s=flow,
        local_oil_c=np.stack(local_rows),
        junction_c=np.stack(junction_rows),
        power_w=np.stack(power_rows),
        max_junction_c=reduce(np.maximum, junction_rows),
        electronics_heat_w=electronics,
        psu_heat_w=psu_heat,
        total_heat_w=total,
        board_pressure_drop_pa=perf.pressure_drop_pa,
        chip_resistance_k_w=resistance,
        runaway=runaway,
        runaway_coolant_c=runaway_coolant,
    )


# ---------------------------------------------------------------------------
# Plate heat exchanger
# ---------------------------------------------------------------------------


def effectiveness_counterflow_batch(ntu: np.ndarray, c_r: np.ndarray) -> np.ndarray:
    """Vector mirror of :func:`repro.heatexchange.entu.effectiveness_counterflow`."""
    ntu = np.asarray(ntu, dtype=float)
    c_r = np.asarray(c_r, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        m = np.expm1(-ntu * (1.0 - c_r))
        denom = (1.0 - c_r) - c_r * m
        general = -m / np.where(denom != 0.0, denom, 1.0)
    eps = np.where(np.abs(c_r - 1.0) < 1e-12, ntu / (1.0 + ntu), general)
    eps = np.where(c_r == 0.0, 1.0 - np.exp(-ntu), eps)
    return np.where(ntu == 0.0, 0.0, eps)


@dataclass(frozen=True)
class HxBatch:
    """Batched mirror of ``HxOperatingPoint``."""

    q_w: np.ndarray
    hot_out_c: np.ndarray
    cold_out_c: np.ndarray
    effectiveness: np.ndarray
    ntu: np.ndarray
    ua_w_k: np.ndarray
    u_w_m2k: np.ndarray
    c_min_w_k: np.ndarray
    c_max_w_k: np.ndarray


def _plate_film_batch(
    hx: PlateHeatExchanger, flow_m3_s: np.ndarray, state: FluidState
) -> np.ndarray:
    """Vector mirror of :meth:`PlateHeatExchanger.film_coefficient`."""
    area = hx.channels_per_side * hx.channel_gap_m * hx.plate_width_m
    velocity = flow_m3_s / area
    dh = hx.hydraulic_diameter_m
    re = velocity * dh / state.kinematic_viscosity_m2_s
    c = 0.28 * hx.chevron_enhancement / 2.5
    nu = np.maximum(c * re**0.7 * state.prandtl ** (1.0 / 3.0), 3.66)
    return nu * state.conductivity_w_mk / dh


def hx_solve_batch(
    hx: PlateHeatExchanger,
    hot_fluid: Fluid,
    hot_in_c: np.ndarray,
    hot_flow_m3_s: np.ndarray,
    cold_fluid: Fluid,
    cold_in_c: np.ndarray,
    cold_flow_m3_s: np.ndarray,
) -> HxBatch:
    """Vector mirror of :meth:`PlateHeatExchanger.solve`.

    Inputs must already be valid on every lane (in-range temperatures,
    positive flows, hot >= cold); the batch drivers clamp inactive lanes to
    safe values before calling and discard those outputs.
    """
    hot_in = np.asarray(hot_in_c, dtype=float)
    cold_in = np.asarray(cold_in_c, dtype=float)
    hot_flow = np.asarray(hot_flow_m3_s, dtype=float)
    cold_flow = np.asarray(cold_flow_m3_s, dtype=float)
    hot_state = fluid_state(hot_fluid, hot_in, check=False)
    cold_state = fluid_state(cold_fluid, cold_in, check=False)
    c_hot = hot_state.volumetric_heat_capacity_j_m3k * hot_flow
    c_cold = cold_state.volumetric_heat_capacity_j_m3k * cold_flow
    c_min = np.minimum(c_hot, c_cold)
    c_max = np.maximum(c_hot, c_cold)
    h_hot = _plate_film_batch(hx, hot_flow, hot_state)
    h_cold = _plate_film_batch(hx, cold_flow, cold_state)
    wall = hx.plate_thickness_m / hx.plate_conductivity_w_mk
    u = 1.0 / (1.0 / h_hot + wall + 1.0 / h_cold)
    ua = u * hx.transfer_area_m2
    ntu = ua / c_min
    eps = effectiveness_counterflow_batch(ntu, c_min / c_max)
    q = eps * c_min * (hot_in - cold_in)
    return HxBatch(
        q_w=q,
        hot_out_c=hot_in - q / c_hot,
        cold_out_c=cold_in + q / c_cold,
        effectiveness=eps,
        ntu=ntu,
        ua_w_k=ua,
        u_w_m2k=u,
        c_min_w_k=c_min,
        c_max_w_k=c_max,
    )


# ---------------------------------------------------------------------------
# Oil-loop hydraulics and the pump operating point
# ---------------------------------------------------------------------------


def pipe_loss_batch(pipe: Pipe, state: FluidState, flow_m3_s: np.ndarray) -> np.ndarray:
    """Pressure *loss* (positive) of a pipe at non-negative flow.

    Mirror of ``-Pipe.pressure_change_pa`` for ``q >= 0``.
    """
    q = np.asarray(flow_m3_s, dtype=float)
    velocity = q / pipe.area_m2
    re = velocity * pipe.diameter_m / state.kinematic_viscosity_m2_s
    f = churchill_friction_factor(re, pipe.roughness_m / pipe.diameter_m)
    head = (
        (f * pipe.length_m / pipe.diameter_m + pipe.minor_loss_k)
        * state.density_kg_m3
        * velocity**2
        / 2.0
    )
    return np.where(q == 0.0, 0.0, head)


def hx_pressure_drop_batch(
    hx: PlateHeatExchanger, state: FluidState, flow_m3_s: np.ndarray
) -> np.ndarray:
    """Vector mirror of :meth:`PlateHeatExchanger.pressure_drop_pa` (q >= 0)."""
    q = np.asarray(flow_m3_s, dtype=float)
    area = hx.channels_per_side * hx.channel_gap_m * hx.plate_width_m
    velocity = q / area
    dh = hx.hydraulic_diameter_m
    re = velocity * dh / state.kinematic_viscosity_m2_s
    f = hx.chevron_enhancement * churchill_friction_factor(re)
    channel = f * (hx.plate_height_m / dh) * state.density_kg_m3 * velocity**2 / 2.0
    port_area = math.pi * hx.port_diameter_m**2 / 4.0
    port_velocity = q / port_area
    port = hx.port_loss_k * state.density_kg_m3 * port_velocity**2 / 2.0
    return np.where(q == 0.0, 0.0, channel + port)


def oil_system_pressure_drop_batch(
    module: ComputationalModule, state: FluidState, flow_m3_s: np.ndarray
) -> np.ndarray:
    """Vector mirror of :meth:`ComputationalModule.oil_system_pressure_drop_pa`."""
    q = np.asarray(flow_m3_s, dtype=float)
    section = module.section
    dp_pipe = pipe_loss_batch(module.loop_pipe, state, q)
    dp_hx = hx_pressure_drop_batch(module.hx, state, q)
    per_board = q * section.flow_fraction_over_boards / section.n_boards
    velocity = per_board / section.board_channel_area_m2
    dp_boards = pin_sink_performance_batch(
        module.section.sink, state, velocity
    ).pressure_drop_pa
    return dp_pipe + dp_hx + dp_boards


def pump_head_batch(pump: Pump, flow_m3_s: np.ndarray) -> np.ndarray:
    """Vector mirror of :meth:`Pump.head_pa` for a running pump."""
    q = np.asarray(flow_m3_s, dtype=float)
    if not pump.running:
        return -pump.stopped_leak_resistance_pa_per_m3_s2 * q * np.abs(q)
    s = pump.speed_fraction
    q_ratio = (q / s) / pump.curve.max_flow_m3_s
    scaled = pump.curve.shutoff_pressure_pa * (1.0 - q_ratio * np.abs(q_ratio))
    return s**2 * scaled


def pump_electrical_batch(pump: Pump, flow_m3_s: np.ndarray) -> np.ndarray:
    """Vector mirror of :meth:`Pump.electrical_power_w`."""
    q = np.asarray(flow_m3_s, dtype=float)
    if not pump.running:
        return np.zeros(q.shape)
    hydraulic = np.maximum(pump_head_batch(pump, q), 0.0) * np.maximum(q, 0.0)
    return hydraulic / pump.efficiency


def oil_loop_flow_batch(
    module: ComputationalModule,
    state: FluidState,
    *,
    iterations: int = 30,
    active: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Vector mirror of :meth:`ComputationalModule.oil_loop_flow`.

    The serial path solves the pump/system intersection with ``brentq`` at
    ``xtol=1e-15``; here a lockstep Illinois refinement of the bracket
    ``[0, s q_max]`` reaches the same precision (the mismatch is smooth and
    near-quadratic, where Illinois converges superlinearly). Lanes
    deactivate individually once their bracket is below brentq-grade
    tolerance, so the typical solve costs ~12 evaluations.
    """
    pump = module.pump
    shape = state.density_kg_m3.shape
    if not pump.running:
        return np.zeros(shape)
    s = pump.speed_fraction
    q_hi = s * pump.curve.max_flow_m3_s

    def mismatch(q: np.ndarray) -> np.ndarray:
        return pump_head_batch(pump, q) - oil_system_pressure_drop_batch(
            module, state, q
        )

    # mismatch(0) = s^2 * shutoff head exactly (no flow, no system drop).
    f_lower = np.full(shape, -(s**2 * (pump.curve.shutoff_pressure_pa * 1.0)))
    f_upper = -mismatch(np.full(shape, q_hi))
    runout = f_upper < 0.0
    _, _, flow = illinois_masked(
        lambda q, _act: -mismatch(q),
        np.zeros(shape),
        np.full(shape, q_hi),
        iterations=iterations,
        f_lower=f_lower,
        f_upper=f_upper,
        active=(None if active is None else np.asarray(active, dtype=bool)),
        xtol=1.0e-15,
        rtol=4.0e-13,
    )
    return np.where(runout, q_hi, flow)
