"""Lockstep masked root-finding primitives for the batched engines.

Every routine here is *lane-independent*: the sequence of evaluation
points a lane sees depends only on that lane's own bracket and residual
signs, never on its neighbours. That property is what makes the batch
engines exactly permutation- and slicing-equivariant (pinned by the
Hypothesis suite in ``tests/test_batch_properties.py``).
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Tuple

import numpy as np

__all__ = [
    "bisect_masked",
    "churchill_friction_factor",
    "illinois_masked",
    "lambertw_real",
]

# f(t, active) -> residual array over the full batch; values at inactive
# lanes are ignored but must be finite enough not to warn.
ResidualFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def bisect_masked(
    residual: ResidualFn,
    lower: np.ndarray,
    upper: np.ndarray,
    *,
    iterations: int,
    active: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized bisection assuming ``residual(lower) < 0 <= residual(upper)``.

    Runs a fixed number of halvings on every active lane and returns the
    refined ``(lower, upper, midpoint)``. Lanes outside ``active`` keep
    their input bracket and a midpoint of ``(lower + upper) / 2``.
    """
    lo = np.array(lower, dtype=float, copy=True)
    hi = np.array(upper, dtype=float, copy=True)
    if active is None:
        active = np.ones(lo.shape, dtype=bool)
    for _ in range(iterations):
        if not np.any(active):
            break
        mid = 0.5 * (lo + hi)
        res = residual(mid, active)
        go_up = active & (res < 0.0)
        go_down = active & ~go_up
        lo[go_up] = mid[go_up]
        hi[go_down] = mid[go_down]
    return lo, hi, 0.5 * (lo + hi)


def illinois_masked(
    residual: ResidualFn,
    lower: np.ndarray,
    upper: np.ndarray,
    *,
    iterations: int,
    f_lower: Optional[np.ndarray] = None,
    f_upper: Optional[np.ndarray] = None,
    active: Optional[np.ndarray] = None,
    xtol: float = 0.0,
    rtol: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Masked Illinois (modified regula falsi), ``residual(lower) < 0 <= residual(upper)``.

    Superlinear on smooth residuals — a fixed budget of ~20 evaluations
    reaches machine-precision brackets where plain bisection needs ~50.
    Like :func:`bisect_masked`, every lane's trajectory depends only on its
    own values, so batch results are permutation/slicing-equivariant.

    ``f_lower`` / ``f_upper`` optionally supply already-known endpoint
    residuals (saving two evaluations); when omitted they are evaluated.
    With nonzero ``xtol``/``rtol`` a lane deactivates once its bracket
    width drops below ``xtol + rtol * |midpoint|`` — the convergence test
    reads only that lane's own bracket, preserving lane independence — and
    the loop exits early once every lane has converged.
    Returns ``(lo, hi, estimate)`` with the estimate being the final secant
    point of the refined bracket.
    """
    lo = np.array(lower, dtype=float, copy=True)
    hi = np.array(upper, dtype=float, copy=True)
    if active is None:
        active = np.ones(lo.shape, dtype=bool)
    else:
        active = np.array(active, dtype=bool, copy=True)
    flo = (
        np.array(residual(lo, active) if f_lower is None else f_lower,
                 dtype=float, copy=True)
    )
    fhi = (
        np.array(residual(hi, active) if f_upper is None else f_upper,
                 dtype=float, copy=True)
    )
    last_side = np.zeros(lo.shape, dtype=np.int8)  # +1: lo moved last, -1: hi
    for _ in range(iterations):
        if xtol or rtol:
            width_ok = np.abs(hi - lo) > xtol + rtol * np.abs(0.5 * (lo + hi))
            active = active & width_ok
        if not np.any(active):
            break
        with np.errstate(divide="ignore", invalid="ignore"):
            denom = fhi - flo
            x = hi - fhi * (hi - lo) / np.where(denom != 0.0, denom, 1.0)
        mid = 0.5 * (lo + hi)
        inside = np.isfinite(x) & (x > np.minimum(lo, hi)) & (x < np.maximum(lo, hi))
        x = np.where(inside, x, mid)
        fx = residual(x, active)
        up = active & (fx < 0.0)
        down = active & ~up
        lo[up] = x[up]
        flo[up] = fx[up]
        hi[down] = x[down]
        fhi[down] = fx[down]
        # Illinois modification: a repeated move of the same endpoint halves
        # the stagnant endpoint's residual, forcing the secant across.
        repeat_up = up & (last_side == 1)
        repeat_down = down & (last_side == -1)
        fhi[repeat_up] = 0.5 * fhi[repeat_up]
        flo[repeat_down] = 0.5 * flo[repeat_down]
        last_side[up] = 1
        last_side[down] = -1
    with np.errstate(divide="ignore", invalid="ignore"):
        denom = fhi - flo
        estimate = hi - fhi * (hi - lo) / np.where(denom != 0.0, denom, 1.0)
    mid = 0.5 * (lo + hi)
    inside = (
        np.isfinite(estimate)
        & (estimate >= np.minimum(lo, hi))
        & (estimate <= np.maximum(lo, hi))
    )
    return lo, hi, np.where(inside, estimate, mid)


def lambertw_real(x: np.ndarray, branch: int = 0) -> np.ndarray:
    """Real-valued Lambert W on ``[-1/e, 0)`` for branches 0 and -1.

    A vectorized replacement for ``scipy.special.lambertw`` on the domain
    the junction balance produces (its argument is always negative):
    branch-point/asymptotic series starts plus masked Halley iterations,
    converging to machine precision away from the branch point and to the
    series accuracy (~1e-16 absolute in W) at it. scipy's implementation is
    the oracle in the unit tests; it stays out of the hot path because its
    complex-valued ufunc costs ~3x the arithmetic needed here.
    """
    x = np.asarray(x, dtype=float)
    # Branch-point expansion W = -1 +/- p - p^2/3 +/- 11 p^3/72 with
    # p = sqrt(2 (e x + 1)); accurate near x = -1/e for both branches.
    p2 = 2.0 * (math.e * x + 1.0)
    p = np.sqrt(np.maximum(p2, 0.0))
    sign = 1.0 if branch == 0 else -1.0
    w_branch = -1.0 + sign * p - p2 / 3.0 + sign * (11.0 / 72.0) * p * p2
    if branch == 0:
        # Series about 0: W = x (1 - x + 1.5 x^2) — fine for |x| < ~0.3.
        w_small = x * (1.0 + x * (-1.0 + 1.5 * x))
        w = np.where(x < -0.3235, w_branch, w_small)
    else:
        # Asymptotic for x -> 0^-: W = ln(-x) - ln(-ln(-x)).
        x_neg = np.where(x < 0.0, x, -1.0e-300)
        log_neg = np.log(-x_neg)
        w_small = log_neg - np.log(-log_neg)
        w = np.where(x < -0.27, w_branch, w_small)
    # Halley refinement of w e^w = x; updates are masked so lanes where the
    # correction is already below float resolution (or the iterate sits on
    # the singular point w = -1) stay frozen.
    for _ in range(6):
        e = np.exp(w)
        f = w * e - x
        wp1 = w + 1.0
        with np.errstate(divide="ignore", invalid="ignore"):
            denom = e * wp1 - (w + 2.0) * f / (2.0 * wp1)
            step = f / denom
        ok = np.isfinite(step) & (np.abs(wp1) > 1.0e-12)
        w = np.where(ok, w - step, w)
    return w


def churchill_friction_factor(
    reynolds: np.ndarray, relative_roughness: float = 0.0
) -> np.ndarray:
    """Vectorized mirror of :func:`repro.hydraulics.friction.friction_factor`.

    Piecewise identical to the scalar code: ``f = 64/Re`` below Re=100
    (overflow guard), the full Churchill correlation above, and 0 at
    Re=0.
    """
    re = np.asarray(reynolds, dtype=float)
    re_safe = np.where(re > 0.0, re, 1.0)
    laminar = 64.0 / re_safe
    # The Churchill branch is by far the most expensive expression in the
    # hydraulic stack (three 16th/12th powers); skip it when no lane is
    # turbulent. Gating on a global any() never changes a lane's value —
    # branch selection per lane is still the same np.where.
    if np.any(re >= 100.0):
        re_c = np.maximum(re_safe, 100.0)
        a = (
            2.457
            * np.log(1.0 / ((7.0 / re_c) ** 0.9 + 0.27 * relative_roughness))
        ) ** 16
        b = (37530.0 / re_c) ** 16
        churchill = 8.0 * (
            (8.0 / re_c) ** 12 + 1.0 / (a + b) ** 1.5
        ) ** (1.0 / 12.0)
        out = np.where(re < 100.0, laminar, churchill)
    else:
        out = laminar
    return np.where(re == 0.0, 0.0, out)
