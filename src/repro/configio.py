"""Serialization of machine configurations and reports.

A downstream user wants to version their machine definitions and archive
commissioning results. This module round-trips the dataclass-based machine
configuration through plain JSON-compatible dictionaries (no pickle, no
code execution) and dumps reports for archival.

Only the *configuration* is serialized — fluids and families are
referenced by name and resolved from the library/catalog on load, which
keeps files small and forward-compatible.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from typing import Any, Dict

from repro.core.heatsink import PinFinHeatSink
from repro.core.immersion import ImmersionSection
from repro.core.module import ComputationalModule
from repro.core.tim import (
    CONVENTIONAL_PASTE,
    DRY_CONTACT,
    SRC_OIL_STABLE_INTERFACE,
)
from repro.devices.board import Ccb
from repro.devices.families import FpgaFamily, family_roadmap
from repro.devices.fpga import Fpga
from repro.devices.psu import ImmersionPsu
from repro.fluids.library import all_fluids
from repro.heatexchange.plate import PlateHeatExchanger
from repro.hydraulics.elements import Pipe, Pump, PumpCurve

_TIMS = {
    tim.name: tim
    for tim in (CONVENTIONAL_PASTE, SRC_OIL_STABLE_INTERFACE, DRY_CONTACT)
}


def _family_by_name(name: str) -> FpgaFamily:
    for family in family_roadmap():
        if family.name == name:
            return family
    raise KeyError(f"unknown FPGA family {name!r}")


def _fluid_by_name(name: str):
    for fluid in all_fluids():
        if fluid.name == name:
            return fluid
    raise KeyError(f"unknown fluid {name!r}")


def module_to_dict(module: ComputationalModule) -> Dict[str, Any]:
    """Serialize a computational module's configuration."""
    section = module.section
    return {
        "schema": "repro.module/1",
        "name": module.name,
        "height_u": module.height_u,
        "fpga": {
            "family": section.ccb.fpga.family.name,
            "utilization": section.ccb.fpga.utilization,
            "clock_mhz": section.ccb.fpga.clock_mhz,
        },
        "ccb": {
            "n_fpgas": section.ccb.n_fpgas,
            "separate_controller": section.ccb.separate_controller,
            "controller_overhead": section.ccb.controller_overhead,
            "clearance_mm": section.ccb.clearance_mm,
            "misc_power_w": section.ccb.misc_power_w,
        },
        "section": {
            "n_boards": section.n_boards,
            "n_psus": section.n_psus,
            "flow_fraction_over_boards": section.flow_fraction_over_boards,
            "board_channel_area_m2": section.board_channel_area_m2,
            "tim_service_hours": section.tim_service_hours,
            "oil": section.oil.name,
            "tim": section.tim.name,
        },
        "sink": asdict(section.sink),
        "psu": asdict(section.psu),
        "pump": {
            "shutoff_pressure_pa": module.pump.curve.shutoff_pressure_pa,
            "max_flow_m3_s": module.pump.curve.max_flow_m3_s,
            "speed_fraction": module.pump.speed_fraction,
            "efficiency": module.pump.efficiency,
            "immersed": module.pump.immersed,
        },
        "hx": {
            "n_plates": module.hx.n_plates,
            "plate_width_m": module.hx.plate_width_m,
            "plate_height_m": module.hx.plate_height_m,
            "channel_gap_m": module.hx.channel_gap_m,
            "plate_thickness_m": module.hx.plate_thickness_m,
            "plate_conductivity_w_mk": module.hx.plate_conductivity_w_mk,
            "chevron_enhancement": module.hx.chevron_enhancement,
        },
        "loop_pipe": {
            "length_m": module.loop_pipe.length_m,
            "diameter_m": module.loop_pipe.diameter_m,
            "roughness_m": module.loop_pipe.roughness_m,
            "minor_loss_k": module.loop_pipe.minor_loss_k,
        },
    }


def module_from_dict(data: Dict[str, Any]) -> ComputationalModule:
    """Rebuild a computational module from its serialized configuration."""
    if data.get("schema") != "repro.module/1":
        raise ValueError(f"unsupported schema {data.get('schema')!r}")
    fpga = Fpga(
        family=_family_by_name(data["fpga"]["family"]),
        utilization=data["fpga"]["utilization"],
        clock_mhz=data["fpga"]["clock_mhz"],
    )
    ccb = Ccb(fpga=fpga, **data["ccb"])
    tim_name = data["section"]["tim"]
    if tim_name not in _TIMS:
        raise KeyError(f"unknown thermal interface {tim_name!r}")
    section = ImmersionSection(
        ccb=ccb,
        n_boards=data["section"]["n_boards"],
        sink=PinFinHeatSink(**data["sink"]),
        tim=_TIMS[tim_name],
        psu=ImmersionPsu(**data["psu"]),
        n_psus=data["section"]["n_psus"],
        flow_fraction_over_boards=data["section"]["flow_fraction_over_boards"],
        board_channel_area_m2=data["section"]["board_channel_area_m2"],
        tim_service_hours=data["section"]["tim_service_hours"],
        oil=_fluid_by_name(data["section"]["oil"]),
    )
    pump = Pump(
        curve=PumpCurve(
            shutoff_pressure_pa=data["pump"]["shutoff_pressure_pa"],
            max_flow_m3_s=data["pump"]["max_flow_m3_s"],
        ),
        speed_fraction=data["pump"]["speed_fraction"],
        efficiency=data["pump"]["efficiency"],
        immersed=data["pump"]["immersed"],
    )
    return ComputationalModule(
        name=data["name"],
        section=section,
        pump=pump,
        hx=PlateHeatExchanger(**data["hx"]),
        loop_pipe=Pipe(**data["loop_pipe"]),
        height_u=data["height_u"],
    )


def dump_module(module: ComputationalModule, path: str) -> None:
    """Write a module configuration to a JSON file."""
    with open(path, "w") as handle:
        json.dump(module_to_dict(module), handle, indent=2, sort_keys=True)


def load_module(path: str) -> ComputationalModule:
    """Read a module configuration from a JSON file."""
    with open(path) as handle:
        return module_from_dict(json.load(handle))


def report_to_dict(report: Any) -> Dict[str, Any]:
    """Serialize any dataclass-based report (ModuleReport etc.) to plain
    dictionaries for archival."""
    if not is_dataclass(report):
        raise TypeError(f"{type(report).__name__} is not a dataclass report")
    return asdict(report)


__all__ = [
    "dump_module",
    "load_module",
    "module_from_dict",
    "module_to_dict",
    "report_to_dict",
]
