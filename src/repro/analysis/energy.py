"""Energy and cost accounting for the cooling architectures.

The paper's keyword list includes "energy efficiency" and its Section 2
claims that moving liquid takes far less energy than moving air for the
same heat. This harness closes that argument with numbers: for a given IT
load it totals the cooling energy (fans / pumps / chiller), forms the
rack-local PUE, and prices a year of operation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rack import Rack
from repro.core.skat import skat, taygeta

#: Default electricity price for the cost rows, USD per kWh.
DEFAULT_PRICE_USD_KWH = 0.10
HOURS_PER_YEAR = 8760.0


@dataclass(frozen=True)
class EnergyReport:
    """Annual energy accounting for one cooling architecture."""

    name: str
    it_power_kw: float
    cooling_power_kw: float
    pue: float
    annual_it_mwh: float
    annual_cooling_mwh: float
    annual_cooling_cost_usd: float
    cooling_overhead_fraction: float


def _report(name: str, it_w: float, cooling_w: float, price: float) -> EnergyReport:
    annual_it = it_w * HOURS_PER_YEAR / 1.0e6
    annual_cooling = cooling_w * HOURS_PER_YEAR / 1.0e6
    return EnergyReport(
        name=name,
        it_power_kw=it_w / 1000.0,
        cooling_power_kw=cooling_w / 1000.0,
        pue=(it_w + cooling_w) / it_w,
        annual_it_mwh=annual_it,
        annual_cooling_mwh=annual_cooling,
        annual_cooling_cost_usd=annual_cooling * 1000.0 * price,
        cooling_overhead_fraction=cooling_w / it_w,
    )


def air_rack_report(price_usd_kwh: float = DEFAULT_PRICE_USD_KWH) -> EnergyReport:
    """Energy report for a rack of Taygeta-class air-cooled CMs.

    Seven 6U CMs fill the rack; cooling power is the cage fans plus the
    CRAC share — the room air conditioner must move and chill the entire
    exhaust, which is where air cooling loses (a CRAC COP of ~3 against
    the chilled-water plant's ~8).
    """
    n_modules = 7
    module_report = taygeta().solve(25.0)
    fans = module_report.fan_power_w * n_modules
    electronics = (module_report.module_power_w - module_report.fan_power_w) * n_modules
    crac_cop = 3.0
    crac = (electronics + fans) / crac_cop
    return _report("air (Taygeta rack + CRAC)", electronics, fans + crac, price_usd_kwh)


def immersion_rack_report(price_usd_kwh: float = DEFAULT_PRICE_USD_KWH) -> EnergyReport:
    """Energy report for the 12-CM SKAT rack (pumps + chiller)."""
    rack = Rack(module_factory=skat, n_modules=12).solve()
    return _report(
        "immersion (SKAT rack + chiller)",
        rack.it_power_w,
        rack.cooling_power_w,
        price_usd_kwh,
    )


def annual_energy_report(price_usd_kwh: float = DEFAULT_PRICE_USD_KWH) -> dict:
    """Both architectures plus the derived comparisons.

    Returns ``{"air": ..., "immersion": ..., "overhead_ratio": ...,
    "cost_saving_usd_per_rack_year_at_equal_it": ...}`` where the saving
    is normalized to the air rack's IT load (cooling overhead per IT watt
    applied to the same load).
    """
    air = air_rack_report(price_usd_kwh)
    immersion = immersion_rack_report(price_usd_kwh)
    overhead_ratio = air.cooling_overhead_fraction / immersion.cooling_overhead_fraction
    # Overhead per IT watt applied to the air rack's IT load:
    saving_w = (
        air.cooling_overhead_fraction - immersion.cooling_overhead_fraction
    ) * air.it_power_kw * 1000.0
    saving_usd = saving_w / 1000.0 * HOURS_PER_YEAR * price_usd_kwh
    return {
        "air": air,
        "immersion": immersion,
        "overhead_ratio": overhead_ratio,
        "cost_saving_usd_per_rack_year_at_equal_it": saving_usd,
    }


def render_energy_report(report: EnergyReport) -> str:
    """One architecture's report as text."""
    return (
        f"{report.name}\n"
        f"  IT power          : {report.it_power_kw:8.1f} kW\n"
        f"  cooling power     : {report.cooling_power_kw:8.1f} kW "
        f"({report.cooling_overhead_fraction:.1%} of IT)\n"
        f"  PUE (rack-local)  : {report.pue:8.3f}\n"
        f"  annual cooling    : {report.annual_cooling_mwh:8.1f} MWh "
        f"(${report.annual_cooling_cost_usd:,.0f}/yr)"
    )


__all__ = [
    "DEFAULT_PRICE_USD_KWH",
    "EnergyReport",
    "air_rack_report",
    "annual_energy_report",
    "immersion_rack_report",
    "render_energy_report",
]
