"""Uncertainty quantification for the reproduced numbers.

The calibration knobs (solder-pin factor, interface impedance, sink
geometry, catalog powers) are plausible values, not measured ones. This
harness propagates stated tolerances on those knobs through the SKAT
solve by Monte Carlo, so the headline numbers come with error bars —
"55.0 C" becomes "55.0 +/- 1.8 C", which is the honest way to compare a
simulation against a prototype measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

import numpy as np

from repro.core.module import ComputationalModule
from repro.core.skat import SKAT_WATER_FLOW_M3_S, SKAT_WATER_SUPPLY_C, skat


@dataclass(frozen=True)
class ParameterTolerance:
    """A calibration knob and its relative 1-sigma tolerance."""

    name: str
    sigma_rel: float

    def __post_init__(self) -> None:
        if not 0.0 < self.sigma_rel < 0.5:
            raise ValueError("relative sigma must be in (0, 0.5)")


#: The default tolerance set: every knob DESIGN.md lists as calibrated.
DEFAULT_TOLERANCES: List[ParameterTolerance] = [
    ParameterTolerance("turbulence_factor", 0.06),
    ParameterTolerance("tim_resistivity", 0.15),
    ParameterTolerance("pin_height", 0.05),
    ParameterTolerance("pump_shutoff", 0.08),
    ParameterTolerance("chip_power", 0.05),
    ParameterTolerance("hx_enhancement", 0.10),
]


@dataclass(frozen=True)
class UncertainValue:
    """A Monte Carlo summary of one output quantity."""

    name: str
    mean: float
    std: float
    p05: float
    p95: float

    def contains(self, value: float) -> bool:
        """Whether a reference value falls inside the 90 % interval."""
        return self.p05 <= value <= self.p95

    def __str__(self) -> str:
        return f"{self.name}: {self.mean:.1f} +/- {self.std:.1f} (90% [{self.p05:.1f}, {self.p95:.1f}])"


def perturbed_skat(scales: Dict[str, float]) -> ComputationalModule:
    """A SKAT module with its calibration knobs multiplied by ``scales``.

    Recognized knobs: ``turbulence_factor``, ``pin_height``,
    ``tim_resistivity``, ``chip_power``, ``pump_shutoff``,
    ``hx_enhancement`` (the :data:`DEFAULT_TOLERANCES` set). Missing keys
    default to 1.0, so a partial sample perturbs only what it names. The
    Monte Carlo layer (:mod:`repro.analysis.montecarlo`) builds its
    module- and facility-level evaluations on this.
    """

    def s(name: str) -> float:
        return float(scales.get(name, 1.0))

    module = skat()
    section = module.section

    sink = replace(
        section.sink,
        turbulence_factor=section.sink.turbulence_factor * s("turbulence_factor"),
        pin_height_m=section.sink.pin_height_m * s("pin_height"),
    )
    tim = replace(
        section.tim,
        resistivity_m2k_w=section.tim.resistivity_m2k_w * s("tim_resistivity"),
    )
    family = section.ccb.fpga.family
    family = replace(
        family,
        operating_power_w=family.operating_power_w * s("chip_power"),
        max_power_w=family.max_power_w * s("chip_power"),
    )
    fpga = replace(section.ccb.fpga, family=family)
    ccb = replace(section.ccb, fpga=fpga)
    section = replace(section, sink=sink, tim=tim, ccb=ccb)

    pump_curve = replace(
        module.pump.curve,
        shutoff_pressure_pa=module.pump.curve.shutoff_pressure_pa * s("pump_shutoff"),
    )
    pump = replace(module.pump, curve=pump_curve)
    hx = replace(
        module.hx,
        chevron_enhancement=max(
            module.hx.chevron_enhancement * s("hx_enhancement"), 1.0
        ),
    )
    return replace(module, section=section, pump=pump, hx=hx)


def _perturbed_module(rng: np.random.Generator, scales: Dict[str, float]) -> ComputationalModule:
    return perturbed_skat(scales)


def skat_uncertainty(
    n_samples: int = 50,
    tolerances: List[ParameterTolerance] = None,
    seed: int = 0,
) -> Dict[str, UncertainValue]:
    """Monte Carlo over the calibration knobs.

    Returns uncertain values for ``max_fpga_c``, ``bath_mean_c`` and
    ``chip_power_w``. Samples that fail to solve (rare extreme draws) are
    skipped and replaced.
    """
    if n_samples < 5:
        raise ValueError("need at least 5 samples")
    tolerances = tolerances or DEFAULT_TOLERANCES
    rng = np.random.default_rng(seed)

    junctions: List[float] = []
    baths: List[float] = []
    powers: List[float] = []
    attempts = 0
    while len(junctions) < n_samples and attempts < 4 * n_samples:
        attempts += 1
        scales = {
            t.name: float(rng.normal(1.0, t.sigma_rel)) for t in tolerances
        }
        if any(s <= 0.5 for s in scales.values()):
            continue
        try:
            module = _perturbed_module(rng, scales)
            report = module.solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
        except Exception:
            continue
        chips = report.immersion.chips_per_board
        junctions.append(report.max_fpga_c)
        baths.append(report.bath_mean_c)
        powers.append(sum(c.power_w for c in chips) / len(chips))

    if len(junctions) < n_samples:
        raise RuntimeError("too many failed Monte Carlo samples")

    def summarize(name: str, values: List[float]) -> UncertainValue:
        arr = np.asarray(values)
        return UncertainValue(
            name=name,
            mean=float(np.mean(arr)),
            std=float(np.std(arr)),
            p05=float(np.percentile(arr, 5)),
            p95=float(np.percentile(arr, 95)),
        )

    return {
        "max_fpga_c": summarize("max FPGA junction [C]", junctions),
        "bath_mean_c": summarize("bath temperature [C]", baths),
        "chip_power_w": summarize("per-chip power [W]", powers),
    }


__all__ = [
    "DEFAULT_TOLERANCES",
    "ParameterTolerance",
    "UncertainValue",
    "perturbed_skat",
    "skat_uncertainty",
]
