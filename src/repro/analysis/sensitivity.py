"""One-at-a-time sensitivity of the SKAT operating point.

Which knobs actually move the paper's 55 C number? Each parameter is
perturbed by a stated fraction around the design point and the resulting
junction-temperature shift recorded — the quantitative version of the
SKAT+ design agenda (surface, pump performance, interface technology).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List

from repro.core.module import ComputationalModule
from repro.core.skat import SKAT_WATER_FLOW_M3_S, SKAT_WATER_SUPPLY_C, skat
from repro.hydraulics.elements import PumpCurve


@dataclass(frozen=True)
class SensitivityResult:
    """Junction shift for one perturbed parameter."""

    parameter: str
    perturbation: str
    base_max_fpga_c: float
    perturbed_max_fpga_c: float

    @property
    def delta_k(self) -> float:
        """Junction shift, K (negative = improvement)."""
        return self.perturbed_max_fpga_c - self.base_max_fpga_c


def _solve(module: ComputationalModule, water_in: float, water_flow: float) -> float:
    return module.solve_steady(water_in, water_flow).max_fpga_c


def skat_sensitivity(
    water_in_c: float = SKAT_WATER_SUPPLY_C,
    water_flow_m3_s: float = SKAT_WATER_FLOW_M3_S,
) -> List[SensitivityResult]:
    """The standard SKAT sensitivity set.

    Perturbations (each one-at-a-time):

    - pump head +20 % (SKAT+ design item 2: pump performance);
    - pin height +30 % (design item 1: heat-exchange surface);
    - turbulence factor -> 1.0 (remove the solder-pin enhancement);
    - interface resistivity x2 (a degraded coating, design item 5);
    - chilled water +2 C (plant economy);
    - water flow -25 % (manifold imbalance exposure).
    """
    base_module = skat()
    base = _solve(base_module, water_in_c, water_flow_m3_s)
    results: List[SensitivityResult] = []

    def record(parameter: str, perturbation: str, build: Callable[[], ComputationalModule],
               water_in: float = water_in_c, water_flow: float = water_flow_m3_s) -> None:
        perturbed = _solve(build(), water_in, water_flow)
        results.append(
            SensitivityResult(
                parameter=parameter,
                perturbation=perturbation,
                base_max_fpga_c=base,
                perturbed_max_fpga_c=perturbed,
            )
        )

    def with_pump_head(factor: float) -> ComputationalModule:
        module = skat()
        curve = module.pump.curve
        new_curve = PumpCurve(
            shutoff_pressure_pa=curve.shutoff_pressure_pa * factor,
            max_flow_m3_s=curve.max_flow_m3_s,
        )
        return replace(module, pump=replace(module.pump, curve=new_curve))

    def with_pin_height(factor: float) -> ComputationalModule:
        module = skat()
        sink = replace(module.section.sink, pin_height_m=module.section.sink.pin_height_m * factor)
        return replace(module, section=replace(module.section, sink=sink))

    def with_turbulence(value: float) -> ComputationalModule:
        module = skat()
        sink = replace(module.section.sink, turbulence_factor=value)
        return replace(module, section=replace(module.section, sink=sink))

    def with_tim_factor(factor: float) -> ComputationalModule:
        module = skat()
        tim = replace(
            module.section.tim,
            resistivity_m2k_w=module.section.tim.resistivity_m2k_w * factor,
        )
        return replace(module, section=replace(module.section, tim=tim))

    record("pump head", "+20 %", lambda: with_pump_head(1.2))
    record("pin height", "+30 %", lambda: with_pin_height(1.3))
    record("solder-pin turbulence", "removed (1.0x)", lambda: with_turbulence(1.0))
    record("interface resistivity", "x2", lambda: with_tim_factor(2.0))
    record("chilled water", "+2 C", skat, water_in=water_in_c + 2.0)
    record("water flow", "-25 %", skat, water_flow=water_flow_m3_s * 0.75)
    return results


def coolant_sensitivity(
    water_in_c: float = SKAT_WATER_SUPPLY_C,
    water_flow_m3_s: float = SKAT_WATER_FLOW_M3_S,
) -> List[SensitivityResult]:
    """Section 2's coolant-improvement levers, quantified.

    "One more option to increase liquid cooling efficiency consists in
    improving the initial parameters of the heat-transfer agent:
    increasing velocity, decreasing temperature, creating turbulent flow,
    increasing heat capacity, reducing viscosity." Each lever is applied
    to the oil (or its delivery) one at a time and the junction shift
    recorded.
    """
    from dataclasses import replace as _replace

    from repro.fluids.properties import PropertyModel

    class _Scaled(PropertyModel):
        def __init__(self, base: PropertyModel, factor: float):
            self._base = base
            self._factor = factor

        def __call__(self, temperature_c: float) -> float:
            return self._factor * self._base(temperature_c)

    base_module = skat()
    base = _solve(base_module, water_in_c, water_flow_m3_s)
    results: List[SensitivityResult] = []

    def record(parameter: str, perturbation: str, module: ComputationalModule,
               water_in: float = water_in_c) -> None:
        perturbed = _solve(module, water_in, water_flow_m3_s)
        results.append(
            SensitivityResult(
                parameter=parameter,
                perturbation=perturbation,
                base_max_fpga_c=base,
                perturbed_max_fpga_c=perturbed,
            )
        )

    def with_oil(**scales) -> ComputationalModule:
        module = skat()
        oil = module.section.oil
        changes = {}
        if "viscosity" in scales:
            changes["viscosity_model"] = _Scaled(oil.viscosity_model, scales["viscosity"])
        if "cp" in scales:
            changes["specific_heat_model"] = _Scaled(
                oil.specific_heat_model, scales["cp"]
            )
        if "k" in scales:
            changes["conductivity_model"] = _Scaled(
                oil.conductivity_model, scales["k"]
            )
        oil = _replace(oil, name=oil.name + "_mod", **changes)
        section = _replace(module.section, oil=oil)
        return _replace(module, section=section)

    def with_velocity(factor: float) -> ComputationalModule:
        # "Increasing velocity": duct more of the flow across the boards.
        module = skat()
        section = _replace(
            module.section,
            board_channel_area_m2=module.section.board_channel_area_m2 / factor,
        )
        return _replace(module, section=section)

    record("coolant viscosity", "-20 %", with_oil(viscosity=0.8))
    record("coolant heat capacity", "+20 %", with_oil(cp=1.2))
    record("coolant conductivity", "+20 %", with_oil(k=1.2))
    record("board velocity", "+30 %", with_velocity(1.3))
    record("coolant temperature", "-3 C (colder water)", skat(), water_in=water_in_c - 3.0)
    return results


def render_sensitivity(results: List[SensitivityResult]) -> str:
    """Tornado-style text rendering, largest effect first."""
    ordered = sorted(results, key=lambda r: abs(r.delta_k), reverse=True)
    width = max(len(f"{r.parameter} {r.perturbation}") for r in ordered)
    lines = [f"base max FPGA: {ordered[0].base_max_fpga_c:.1f} C"]
    for r in ordered:
        label = f"{r.parameter} {r.perturbation}"
        bar = "#" * min(int(abs(r.delta_k) * 4) + 1, 40)
        lines.append(f"{label:<{width}}  {r.delta_k:+5.1f} K  {bar}")
    return "\n".join(lines)


__all__ = ["SensitivityResult", "coolant_sensitivity", "render_sensitivity", "skat_sensitivity"]
