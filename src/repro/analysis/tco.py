"""Total cost of ownership for the cooling architectures.

The paper argues costs qualitatively: immersion brings "high reliability
and low cost of the product", while the IMMERS-class competitors suffer
the "high cost of the cooling liquid, produced by only one manufacturer".
This model prices the pieces — coolant inventory, cooling hardware, energy
and downtime — over a service period so those claims become comparable
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.energy import DEFAULT_PRICE_USD_KWH, HOURS_PER_YEAR
from repro.fluids.library import MINERAL_OIL_MD45, SYNTHETIC_ESTER
from repro.fluids.properties import Fluid


@dataclass(frozen=True)
class CostAssumptions:
    """Shared economic assumptions."""

    electricity_usd_kwh: float = DEFAULT_PRICE_USD_KWH
    downtime_usd_per_hour: float = 500.0
    service_years: float = 7.0
    coolant_replacement_fraction_per_year: float = 0.05  # top-ups and filtration losses

    def __post_init__(self) -> None:
        if min(
            self.electricity_usd_kwh,
            self.downtime_usd_per_hour,
            self.service_years,
        ) <= 0:
            raise ValueError("economic assumptions must be positive")
        if not 0.0 <= self.coolant_replacement_fraction_per_year <= 1.0:
            raise ValueError("replacement fraction must be within [0, 1]")


@dataclass(frozen=True)
class CoolingTco:
    """Cost breakdown for one architecture over the service period."""

    name: str
    capex_hardware_usd: float
    capex_coolant_usd: float
    opex_energy_usd: float
    opex_coolant_usd: float
    downtime_usd: float

    @property
    def total_usd(self) -> float:
        """Grand total over the service period."""
        return (
            self.capex_hardware_usd
            + self.capex_coolant_usd
            + self.opex_energy_usd
            + self.opex_coolant_usd
            + self.downtime_usd
        )

    def breakdown(self) -> Dict[str, float]:
        """Named cost components."""
        return {
            "hardware capex": self.capex_hardware_usd,
            "coolant capex": self.capex_coolant_usd,
            "energy opex": self.opex_energy_usd,
            "coolant opex": self.opex_coolant_usd,
            "downtime": self.downtime_usd,
        }


def coolant_inventory_cost(fluid: Fluid, volume_litre: float) -> float:
    """Price of a coolant fill."""
    if volume_litre < 0:
        raise ValueError("volume must be non-negative")
    return fluid.cost_usd_per_litre * volume_litre


def cooling_tco(
    name: str,
    cooling_power_kw: float,
    hardware_capex_usd: float,
    coolant: Fluid = None,
    coolant_volume_litre: float = 0.0,
    downtime_hours_per_year: float = 0.0,
    assumptions: CostAssumptions = CostAssumptions(),
) -> CoolingTco:
    """Assemble the TCO for one architecture.

    Parameters
    ----------
    name:
        Architecture label.
    cooling_power_kw:
        Continuous cooling electrical draw (fans / pumps / chiller).
    hardware_capex_usd:
        Cooling hardware (fans, plates, pumps, exchangers, chiller share).
    coolant, coolant_volume_litre:
        The liquid inventory (None/0 for air).
    downtime_hours_per_year:
        Expected cooling-caused downtime (from the availability models).
    """
    if cooling_power_kw < 0 or hardware_capex_usd < 0 or downtime_hours_per_year < 0:
        raise ValueError("cost inputs must be non-negative")
    years = assumptions.service_years
    coolant_capex = (
        coolant_inventory_cost(coolant, coolant_volume_litre) if coolant else 0.0
    )
    coolant_opex = (
        coolant_capex * assumptions.coolant_replacement_fraction_per_year * years
    )
    energy = (
        cooling_power_kw * HOURS_PER_YEAR * years * assumptions.electricity_usd_kwh
    )
    downtime = downtime_hours_per_year * years * assumptions.downtime_usd_per_hour
    return CoolingTco(
        name=name,
        capex_hardware_usd=hardware_capex_usd,
        capex_coolant_usd=coolant_capex,
        opex_energy_usd=energy,
        opex_coolant_usd=coolant_opex,
        downtime_usd=downtime,
    )


def rack_tco_comparison(assumptions: CostAssumptions = CostAssumptions()) -> Dict[str, CoolingTco]:
    """TCO of the three rack-scale options plus the ester variant.

    Hardware capex values are catalog-class estimates; the *relative*
    picture (and especially the oil-vs-ester coolant line, the paper's
    explicit criticism of the IMMERS systems) is the point.
    """
    from repro.analysis.energy import air_rack_report, immersion_rack_report
    from repro.reliability.montecarlo import coldplate_cm_model, immersion_cm_model

    air = air_rack_report(assumptions.electricity_usd_kwh)
    immersion = immersion_rack_report(assumptions.electricity_usd_kwh)
    immersion_mc = immersion_cm_model().run(years=50.0)
    coldplate_mc = coldplate_cm_model().run(years=50.0)

    oil_volume = 12 * 30.0  # 12 CMs x ~30 L of oil each

    return {
        "air": cooling_tco(
            "air (fans + CRAC share)",
            cooling_power_kw=air.cooling_power_kw,
            hardware_capex_usd=9000.0,
            downtime_hours_per_year=0.5,
            assumptions=assumptions,
        ),
        "coldplate": cooling_tco(
            "closed-loop cold plates",
            cooling_power_kw=immersion.cooling_power_kw * 0.9,
            hardware_capex_usd=60000.0,  # per-chip plates, quick disconnects
            coolant=None,
            downtime_hours_per_year=coldplate_mc.downtime_hours_per_year,
            assumptions=assumptions,
        ),
        "immersion_oil": cooling_tco(
            "immersion, mineral oil MD-4.5",
            cooling_power_kw=immersion.cooling_power_kw,
            hardware_capex_usd=30000.0,
            coolant=MINERAL_OIL_MD45,
            coolant_volume_litre=oil_volume,
            downtime_hours_per_year=immersion_mc.downtime_hours_per_year,
            assumptions=assumptions,
        ),
        "immersion_ester": cooling_tco(
            "immersion, single-vendor ester",
            cooling_power_kw=immersion.cooling_power_kw,
            hardware_capex_usd=30000.0,
            coolant=SYNTHETIC_ESTER,
            coolant_volume_litre=oil_volume,
            downtime_hours_per_year=immersion_mc.downtime_hours_per_year,
            assumptions=assumptions,
        ),
    }


def render_tco(tcos: Dict[str, CoolingTco]) -> str:
    """Fixed-width TCO comparison."""
    lines = [
        f"{'architecture':34s} {'hw capex':>10s} {'coolant':>9s} "
        f"{'energy':>10s} {'cool opex':>10s} {'downtime':>10s} {'TOTAL':>11s}"
    ]
    for tco in tcos.values():
        lines.append(
            f"{tco.name:34s} {tco.capex_hardware_usd:>10,.0f} "
            f"{tco.capex_coolant_usd:>9,.0f} {tco.opex_energy_usd:>10,.0f} "
            f"{tco.opex_coolant_usd:>10,.0f} {tco.downtime_usd:>10,.0f} "
            f"{tco.total_usd:>11,.0f}"
        )
    return "\n".join(lines)


__all__ = [
    "CoolingTco",
    "CostAssumptions",
    "coolant_inventory_cost",
    "cooling_tco",
    "rack_tco_comparison",
    "render_tco",
]
