"""The three cooling architectures on one scorecard.

Section 2 of the paper is an extended qualitative comparison — air vs
closed-loop liquid vs open-loop immersion. This harness runs all three as
models over the *same* silicon (Kintex UltraScale fields) and scores the
axes the paper argues on: junction temperature, density, part count,
leak/condensation exposure, availability, and lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.coldplate import ColdPlateModule, PlateStyle
from repro.core.skat import (
    SKAT_WATER_FLOW_M3_S,
    SKAT_WATER_SUPPLY_C,
    skat,
    ultrascale_in_air,
)
from repro.devices.board import Ccb
from repro.devices.families import KINTEX_ULTRASCALE_KU095
from repro.devices.fpga import Fpga
from repro.devices.power import ThermalRunawayError
from repro.reliability.arrhenius import mtbf_ratio
from repro.reliability.montecarlo import coldplate_cm_model, immersion_cm_model


@dataclass(frozen=True)
class ArchitectureScore:
    """One architecture's scorecard row."""

    name: str
    max_junction_c: float
    fpgas_per_3u: float
    pressure_tight_connections: int
    leak_exposure: bool
    condensation_exposure: bool
    availability: float
    lifetime_vs_air: float
    feasible: bool
    notes: str = ""


def compare_architectures() -> List[ArchitectureScore]:
    """Score forced air, per-chip cold plates, and immersion.

    All three carry Kintex UltraScale silicon at 90 % utilization. The
    air row is the hypothetical UltraScale-in-air machine of Section 1's
    projection (it was never built, for the reasons the score shows).
    """
    scores: List[ArchitectureScore] = []

    # --- forced air -------------------------------------------------
    air_machine = ultrascale_in_air()
    try:
        air_report = air_machine.solve(25.0)
        air_junction = air_report.max_junction_c
        air_feasible = air_report.within_reliability_limit
        air_notes = "" if air_feasible else "past the 65...70 C ceiling"
    except ThermalRunawayError:
        air_junction = float("inf")
        air_feasible = False
        air_notes = "thermal runaway"
    # A 6U air cage carries 32 chips -> 16 per 3U.
    scores.append(
        ArchitectureScore(
            name="forced air",
            max_junction_c=air_junction,
            fpgas_per_3u=16.0,
            pressure_tight_connections=0,
            leak_exposure=False,
            condensation_exposure=False,
            availability=0.9998,  # fans fail too, but benignly
            lifetime_vs_air=1.0,
            feasible=air_feasible,
            notes=air_notes,
        )
    )

    # --- closed-loop cold plates -------------------------------------
    coldplate = ColdPlateModule(
        ccb=Ccb(Fpga(KINTEX_ULTRASCALE_KU095)),
        style=PlateStyle.PER_CHIP,
        supply_water_c=16.0,
        room_relative_humidity=0.6,
    )
    cp_report = coldplate.solve()
    cp_mc = coldplate_cm_model().run(years=20.0)
    scores.append(
        ArchitectureScore(
            name="closed-loop cold plates",
            max_junction_c=cp_report.max_junction_c,
            fpgas_per_3u=48.0,  # plumbing overhead halves immersion density
            pressure_tight_connections=cp_report.n_pressure_tight_connections,
            leak_exposure=True,
            condensation_exposure=cp_report.condensation_risk,
            availability=cp_mc.availability,
            lifetime_vs_air=mtbf_ratio(cp_report.max_junction_c, air_junction)
            if air_junction != float("inf")
            else float("inf"),
            feasible=True,
            notes="thermally excellent; risk ledger is the cost",
        )
    )

    # --- open-loop immersion ------------------------------------------
    skat_report = skat().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
    im_mc = immersion_cm_model().run(years=20.0)
    scores.append(
        ArchitectureScore(
            name="open-loop immersion (SKAT)",
            max_junction_c=skat_report.max_fpga_c,
            fpgas_per_3u=96.0,
            pressure_tight_connections=4,
            leak_exposure=False,  # dielectric bath: a leak is a mess, not a short
            condensation_exposure=False,
            availability=im_mc.availability,
            lifetime_vs_air=mtbf_ratio(skat_report.max_fpga_c, air_junction)
            if air_junction != float("inf")
            else float("inf"),
            feasible=True,
            notes="the paper's design point",
        )
    )
    return scores


def render_scorecard(scores: List[ArchitectureScore]) -> str:
    """Fixed-width scorecard rendering."""
    lines = [
        f"{'architecture':28s} {'maxTj':>7s} {'chips/3U':>9s} {'conns':>6s} "
        f"{'leak':>5s} {'dew':>4s} {'avail':>8s} {'life':>6s} {'ok':>3s}"
    ]
    for s in scores:
        tj = "runaway" if s.max_junction_c == float("inf") else f"{s.max_junction_c:5.1f}C"
        life = "-" if s.lifetime_vs_air in (1.0, float("inf")) else f"{s.lifetime_vs_air:.1f}x"
        lines.append(
            f"{s.name:28s} {tj:>7s} {s.fpgas_per_3u:>9.0f} "
            f"{s.pressure_tight_connections:>6d} "
            f"{'yes' if s.leak_exposure else 'no':>5s} "
            f"{'yes' if s.condensation_exposure else 'no':>4s} "
            f"{s.availability:>8.5f} {life:>6s} "
            f"{'yes' if s.feasible else 'NO':>3s}"
        )
    return "\n".join(lines)


__all__ = ["ArchitectureScore", "compare_architectures", "render_scorecard"]
