"""Facility-scale Monte Carlo uncertainty + Sobol sensitivity (ROADMAP 4).

Samples the calibration-knob tolerance distributions
(:mod:`repro.analysis.sampling`), dispatches the Saltelli A/B/AB design
as module/rack/facility evaluations through
:func:`repro.sweep.batched.run_sweep_batched` (so any of the
serial/thread/process backends and the fault-tolerant ``harness=``
checkpoint/resume path apply unchanged), and reduces the stacked outputs
with :mod:`repro.analysis.estimators` into quantile bands, overheat-margin
exceedance probabilities, and first-order + total Sobol indices.

Determinism contract (the property the goldens and the CI ``mc-smoke``
job byte-diff):

- the sample matrix is a pure function of ``(seed, n_base, knobs)``;
- every backend runs the *same* batch partition and the same batch code,
  so outcome values are identical floats everywhere;
- the report excludes wall-clock and backend identity, canonicalizes as
  sorted-key JSON, and carries a SHA-256 digest of the sample spec —
  same spec, same bytes, on any backend, resumed or not.

Evaluation levels:

``module``
    Per-sample perturbed SKAT steady solve
    (:func:`repro.analysis.uncertainty.perturbed_skat`); chunk-serial
    inside each batch because the knobs perturb the module *config*,
    which the structure-of-arrays steady engine shares across lanes.
``rack``
    Genuinely vectorized end to end: one
    :func:`repro.batch.manifold.solve_manifold_batch` over per-lane valve
    trims / pump speeds / temperatures, then one
    :func:`repro.batch.steady.solve_module_steady_batch` at each lane's
    starved-loop flow. This is the level the M1 benchmark rates.
``facility``
    Per-sample :class:`repro.facility.simulator.FacilitySimulator`
    transient (perturbed rack factory) plus the analytic immersion-CM
    availability block with sampled MTBF/MTTR scales.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.estimators import (
    exceedance_probability,
    quantile_bands,
    sobol_indices,
)
from repro.analysis.sampling import (
    SaltelliDesign,
    ToleranceDistribution,
    normal_offset,
    normal_scale,
    saltelli_design,
)
from repro.analysis.uncertainty import perturbed_skat
from repro.core.rack import Rack
from repro.core.skat import SKAT_WATER_FLOW_M3_S, SKAT_WATER_SUPPLY_C, skat
from repro.facility.simulator import FacilitySimulator
from repro.obs import get_registry
from repro.reliability.availability import Component
from repro.reliability.montecarlo import immersion_cm_model
from repro.sweep.batched import SERIAL_FALLBACK, BatchedSweepFn, run_sweep_batched
from repro.sweep.cases import SweepCase

__all__ = [
    "LEVELS",
    "MC_EVAL",
    "McReport",
    "McSpec",
    "make_spec",
    "run_montecarlo",
]


def _r(x: float) -> float:
    return round(float(x), 9)


# ---------------------------------------------------------------------------
# Level definitions: knobs, default configs, junction limits, outputs.
# ---------------------------------------------------------------------------

#: Per-level tolerance sets, generalizing ``DEFAULT_TOLERANCES`` with the
#: fluid-side knobs (supply temperature, flow) and, at facility level, the
#: reliability-block scales.
_MODULE_KNOBS: Tuple[ToleranceDistribution, ...] = (
    normal_scale("turbulence_factor", 0.06),
    normal_scale("tim_resistivity", 0.15),
    normal_scale("pin_height", 0.05),
    normal_scale("pump_shutoff", 0.08),
    normal_scale("chip_power", 0.05),
    normal_scale("hx_enhancement", 0.10),
    normal_offset("water_supply_c", 0.5),
    normal_scale("water_flow", 0.05),
)

_RACK_KNOBS: Tuple[ToleranceDistribution, ...] = (
    ToleranceDistribution("valve_trim", "normal", "scale", 0.08, 0.5, 1.0),
    ToleranceDistribution("pump_speed", "normal", "scale", 0.05, 0.7, 1.0),
    normal_offset("water_temp_c", 0.5),
    normal_scale("chip_power", 0.05),
)

_FACILITY_KNOBS: Tuple[ToleranceDistribution, ...] = (
    normal_scale("chip_power", 0.05),
    normal_scale("tim_resistivity", 0.15),
    normal_scale("turbulence_factor", 0.06),
    normal_scale("pump_shutoff", 0.08),
    normal_scale("hx_enhancement", 0.10),
    normal_scale("mtbf_scale", 0.15),
    normal_scale("mttr_scale", 0.20),
)

#: Level name -> (knobs, default config). Config values must be plain
#: data (they travel inside picklable sweep-case params and the spec
#: digest).
LEVELS: Dict[str, Tuple[Tuple[ToleranceDistribution, ...], Dict[str, Any]]] = {
    "module": (_MODULE_KNOBS, {}),
    "rack": (_RACK_KNOBS, {"loops": 4, "utilization": 0.9}),
    "facility": (
        _FACILITY_KNOBS,
        {"racks": 2, "modules": 2, "duration_s": 40.0, "dt_s": 20.0},
    ),
}


# ---------------------------------------------------------------------------
# Module level: chunk-serial perturbed steady solves.
# ---------------------------------------------------------------------------


def _module_limit_c() -> float:
    return float(skat().section.ccb.fpga.family.t_junction_max_c)


def _module_eval(sample: Mapping[str, float], config: Mapping[str, Any]) -> Dict[str, float]:
    module = perturbed_skat(dict(sample))
    water_in_c = SKAT_WATER_SUPPLY_C + float(sample.get("water_supply_c", 0.0))
    water_flow = SKAT_WATER_FLOW_M3_S * float(sample.get("water_flow", 1.0))
    report = module.solve_steady(water_in_c, water_flow)
    limit = _module_limit_c()
    return {
        "max_fpga_c": float(report.max_fpga_c),
        "overheat_margin_k": float(limit - report.max_fpga_c),
        "oil_hot_c": float(report.oil_hot_c),
        "pump_electrical_w": float(report.pump_electrical_w),
        "module_electrical_w": float(report.module_electrical_w),
    }


# ---------------------------------------------------------------------------
# Rack level: vectorized manifold balance + steady solve at starved flow.
# ---------------------------------------------------------------------------


def _rack_summary(
    loop_flows: Sequence[float], worst_module: Mapping[str, float]
) -> Dict[str, float]:
    """Shared between serial and batch paths so both compute the same
    derived floats from the same lane values."""
    flows = [float(f) for f in loop_flows]
    limit = _module_limit_c()
    return {
        "min_loop_flow_m3_s": min(flows),
        "total_flow_m3_s": sum(flows),
        "worst_module_max_fpga_c": float(worst_module["max_fpga_c"]),
        "overheat_margin_k": float(limit - worst_module["max_fpga_c"]),
        "worst_module_oil_hot_c": float(worst_module["oil_hot_c"]),
    }


def _rack_lane_params(
    sample: Mapping[str, float], config: Mapping[str, Any]
) -> Dict[str, float]:
    n_loops = int(config.get("loops", 4))
    base_util = float(config.get("utilization", 0.9))
    return {
        "n_loops": n_loops,
        "valve_trim": float(sample["valve_trim"]),
        "pump_speed": float(sample["pump_speed"]),
        "water_temp_c": SKAT_WATER_SUPPLY_C + float(sample["water_temp_c"]),
        "utilization": min(base_util * float(sample["chip_power"]), 1.0),
    }


def _rack_eval(sample: Mapping[str, float], config: Mapping[str, Any]) -> Dict[str, float]:
    from repro.core.balancing import RackManifoldSystem

    p = _rack_lane_params(sample, config)
    n_loops = int(p["n_loops"])
    system = RackManifoldSystem(
        n_loops=n_loops,
        balancing_valves=[p["valve_trim"]] * n_loops,
        temperature_c=p["water_temp_c"],
    )
    system.pump.speed_fraction = p["pump_speed"]
    report = system.solve()
    flows = [float(f) for f in report.loop_flows_m3_s]
    module = skat(utilization=p["utilization"])
    mod_report = module.solve_steady(
        water_in_c=p["water_temp_c"], water_flow_m3_s=min(flows)
    )
    worst = {
        "max_fpga_c": mod_report.max_fpga_c,
        "oil_hot_c": mod_report.oil_hot_c,
    }
    return _rack_summary(flows, worst)


def _rack_eval_batch(
    samples: List[Mapping[str, float]], config: Mapping[str, Any]
) -> List[Any]:
    from repro.batch.manifold import solve_manifold_batch
    from repro.batch.steady import solve_module_steady_batch
    from repro.core.balancing import RackManifoldSystem

    params = [_rack_lane_params(s, config) for s in samples]
    (n_loops,) = {int(p["n_loops"]) for p in params}
    template = RackManifoldSystem(n_loops=n_loops)
    balance = solve_manifold_batch(
        template,
        np.array([[p["valve_trim"]] * n_loops for p in params]),
        pump_speed_fraction=np.array([p["pump_speed"] for p in params]),
        temperature_c=np.array([p["water_temp_c"] for p in params]),
    )
    lane_flows: List[Optional[List[float]]] = []
    for i in range(len(params)):
        if balance.errors[i] is not None:
            lane_flows.append(None)
        else:
            lane_flows.append([float(f) for f in balance.loop_flows_m3_s[i]])

    solvable = [i for i, flows in enumerate(lane_flows) if flows is not None]
    results: List[Any] = [SERIAL_FALLBACK] * len(params)
    if solvable:
        module = skat()
        steady = solve_module_steady_batch(
            module,
            np.array([params[i]["water_temp_c"] for i in solvable]),
            np.array([min(lane_flows[i]) for i in solvable]),
            utilization=np.array([params[i]["utilization"] for i in solvable]),
        )
        for j, i in enumerate(solvable):
            if steady.errors[j] is not None:
                continue
            report = steady.report(j)
            worst = {
                "max_fpga_c": report.max_fpga_c,
                "oil_hot_c": report.oil_hot_c,
            }
            results[i] = _rack_summary(lane_flows[i], worst)
    return results


# ---------------------------------------------------------------------------
# Facility level: perturbed-rack transient + analytic availability block.
# ---------------------------------------------------------------------------


def _mc_module_factory(items: Tuple[Tuple[str, float], ...]):
    return perturbed_skat(dict(items))


def _mc_rack_factory(n_modules: int, items: Tuple[Tuple[str, float], ...]) -> Rack:
    return Rack(
        module_factory=partial(_mc_module_factory, items), n_modules=n_modules
    )


def _facility_availability(
    mtbf_scale: float, mttr_scale: float, n_cms: int
) -> float:
    """Series availability of every CM's immersion reliability block,
    with failure rates divided by ``mtbf_scale`` and repair times
    multiplied by ``mttr_scale``."""
    cm = 1.0
    for mc in immersion_cm_model().components:
        base = mc.component
        scaled = Component(
            name=base.name,
            failure_rate_per_hour=base.failure_rate_per_hour / mtbf_scale,
            repair_hours=base.repair_hours * mttr_scale,
            count=base.count,
        )
        cm *= scaled.series_availability
    return cm ** n_cms


def _facility_eval(
    sample: Mapping[str, float], config: Mapping[str, Any]
) -> Dict[str, float]:
    racks = int(config.get("racks", 2))
    modules = int(config.get("modules", 2))
    thermal_knobs = tuple(
        sorted(
            (name, float(value))
            for name, value in sample.items()
            if name not in ("mtbf_scale", "mttr_scale")
        )
    )
    simulator = FacilitySimulator(
        n_racks=racks,
        rack_factory=partial(_mc_rack_factory, modules, thermal_knobs),
        supervised=True,
    )
    result = simulator.run(
        duration_s=float(config.get("duration_s", 40.0)),
        events=[],
        dt_s=float(config.get("dt_s", 20.0)),
    )
    availability = _facility_availability(
        float(sample["mtbf_scale"]),
        float(sample["mttr_scale"]),
        racks * modules,
    )
    return {
        "max_fpga_c": float(result.max_fpga_c),
        "overheat_margin_k": float(simulator.junction_limit_c - result.max_fpga_c),
        "reuse_return_water_c": float(result.reuse_return_water_c),
        "availability": float(availability),
    }


_EVALUATORS = {
    "module": _module_eval,
    "rack": _rack_eval,
    "facility": _facility_eval,
}


# ---------------------------------------------------------------------------
# Picklable sweep-function pair.
# ---------------------------------------------------------------------------


def mc_case(case: SweepCase) -> Dict[str, float]:
    """Serial oracle: evaluate one Monte Carlo sample."""
    level = str(case.params["level"])
    return _EVALUATORS[level](case.params["sample"], case.params["config"])


def mc_batch(cases: List[SweepCase]) -> List[Any]:
    """Evaluate one batch of Monte Carlo samples.

    The rack level runs the genuinely vectorized path (one manifold
    balance + one steady solve for the whole batch); module and facility
    levels chunk-serially inside the batch, because their knobs perturb
    per-sample object *configuration*, which the structure-of-arrays
    engines share across lanes. Lanes that fail come back as
    :data:`SERIAL_FALLBACK`, so the per-case serial path re-raises the
    exact exception for error capture without disturbing neighbours.
    """
    (level,) = {str(case.params["level"]) for case in cases}
    config = cases[0].params["config"]
    if level == "rack":
        return _rack_eval_batch([case.params["sample"] for case in cases], config)
    evaluate = _EVALUATORS[level]
    results: List[Any] = []
    for case in cases:
        try:
            results.append(evaluate(case.params["sample"], config))
        except Exception:  # noqa: BLE001 - lane falls back to serial capture
            results.append(SERIAL_FALLBACK)
    return results


#: The Monte Carlo evaluation as a batched sweep spec (picklable).
MC_EVAL = BatchedSweepFn(serial=mc_case, batch=mc_batch)


# ---------------------------------------------------------------------------
# Spec and report.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class McSpec:
    """Everything that determines a Monte Carlo run's numbers.

    The canonical-JSON digest of this spec is stamped into the report, so
    two exports match only if they came from the same (level, seed,
    sample count, knob set, model config).
    """

    level: str
    n_base: int
    seed: int
    knobs: Tuple[ToleranceDistribution, ...]
    config: Tuple[Tuple[str, Any], ...]

    def __post_init__(self) -> None:
        if self.level not in LEVELS:
            raise ValueError(
                f"unknown level {self.level!r}; available: {sorted(LEVELS)}"
            )

    @property
    def config_dict(self) -> Dict[str, Any]:
        return dict(self.config)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "level": self.level,
            "n_base": self.n_base,
            "seed": self.seed,
            "knobs": [knob.to_dict() for knob in self.knobs],
            "config": self.config_dict,
        }

    def digest(self) -> str:
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def design(self) -> SaltelliDesign:
        return saltelli_design(self.knobs, self.n_base, self.seed)

    def cases(self) -> List[SweepCase]:
        """The design's evaluation points as sweep cases, in the one
        canonical order (A rows, B rows, AB_0 .. AB_{k-1} rows)."""
        config = self.config_dict
        return [
            SweepCase(
                name=f"mc_{tag}_{row}",
                params={"level": self.level, "sample": sample, "config": config},
            )
            for tag, row, sample in self.design().rows()
        ]


def make_spec(
    level: str,
    samples: int = 10_000,
    seed: int = 7,
    config: Optional[Mapping[str, Any]] = None,
    knobs: Optional[Sequence[ToleranceDistribution]] = None,
) -> McSpec:
    """A spec whose total evaluation count fits a ``samples`` budget.

    ``samples`` is the total number of model evaluations; the Saltelli
    base size becomes ``max(2, samples // (k + 2))``, so e.g.
    ``samples=10000`` at the facility level's k=7 knobs yields N=1111 and
    9999 actual evaluations.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown level {level!r}; available: {sorted(LEVELS)}")
    default_knobs, default_config = LEVELS[level]
    chosen_knobs = tuple(knobs) if knobs is not None else default_knobs
    merged = dict(default_config)
    if config:
        merged.update(config)
    n_base = max(2, int(samples) // (len(chosen_knobs) + 2))
    return McSpec(
        level=level,
        n_base=n_base,
        seed=int(seed),
        knobs=chosen_knobs,
        config=tuple(sorted(merged.items())),
    )


@dataclass(frozen=True)
class McReport:
    """The reduced Monte Carlo result, exportable as canonical JSON.

    ``backend`` and wall-clock are deliberately *not* part of
    :meth:`to_json` — the export must be byte-identical across the
    serial/thread/process backends and across a kill/resume cycle.
    """

    spec: McSpec
    backend: str
    n_evaluations: int
    n_failed: int
    n_failed_rows: int
    quantiles: Dict[str, Dict[str, float]]
    exceedance: Dict[str, float]
    sobol: Dict[str, Dict[str, Dict[str, float]]]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "spec_digest": self.spec.digest(),
            "n_evaluations": self.n_evaluations,
            "n_failed": self.n_failed,
            "n_failed_rows": self.n_failed_rows,
            "quantiles": self.quantiles,
            "exceedance": self.exceedance,
            "sobol": self.sobol,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


def _reduce(
    spec: McSpec, backend: str, values: List[Optional[Dict[str, float]]]
) -> McReport:
    """Stack per-case outputs back into A/B/AB blocks and run the
    estimators. A failed evaluation poisons only itself for quantiles and
    its whole sample row for Sobol (the estimators mask consistently)."""
    n = spec.n_base
    k = len(spec.knobs)
    names = sorted({key for value in values if value for key in value})
    if not names:
        raise RuntimeError("every Monte Carlo evaluation failed")

    stacked: Dict[str, np.ndarray] = {}
    for name in names:
        column = np.full(len(values), np.nan)
        for i, value in enumerate(values):
            if value is not None and name in value:
                column[i] = value[name]
        stacked[name] = column

    n_failed = sum(1 for value in values if value is None)
    row_mask = np.ones(n, dtype=bool)
    any_column = next(iter(stacked.values()))
    blocks = [any_column[:n], any_column[n : 2 * n]]
    blocks += [any_column[(2 + i) * n : (3 + i) * n] for i in range(k)]
    for block in blocks:
        row_mask &= np.isfinite(block)
    n_failed_rows = int(np.count_nonzero(~row_mask))

    quantiles: Dict[str, Dict[str, float]] = {}
    exceedance: Dict[str, float] = {}
    sobol: Dict[str, Dict[str, Dict[str, float]]] = {}
    knob_names = [knob.name for knob in spec.knobs]
    for name in names:
        column = stacked[name]
        marginal = column[: 2 * n]  # A and B rows only; AB rows reuse A
        quantiles[name] = quantile_bands(marginal)
        sobol[name] = sobol_indices(
            column[:n],
            column[n : 2 * n],
            [column[(2 + i) * n : (3 + i) * n] for i in range(k)],
            knob_names,
        )
        if name == "overheat_margin_k":
            exceedance["overheat"] = exceedance_probability(
                marginal, 0.0, direction="below"
            )

    return McReport(
        spec=spec,
        backend=backend,
        n_evaluations=len(values),
        n_failed=n_failed,
        n_failed_rows=n_failed_rows,
        quantiles=quantiles,
        exceedance=exceedance,
        sobol=sobol,
    )


def run_montecarlo(
    spec: McSpec,
    backend: str = "serial",
    max_workers: Optional[int] = None,
    batch_size: int = 64,
    harness: Optional[Any] = None,
) -> McReport:
    """Run the spec's full Saltelli design and reduce it to a report.

    Dispatch goes through :func:`run_sweep_batched`, so ``backend``
    selects serial/thread/process execution and ``harness`` (a
    :class:`repro.sweep.HarnessConfig`) adds checkpoint/resume, deadlines
    and quarantine at batch granularity. Failed evaluations are captured,
    not raised; the estimators mask them and the report counts them.

    The ``mc_*`` counters are incremented on the parent registry *after*
    the sweep completes, so an interrupted-and-resumed run exports the
    same metrics as an uninterrupted one.
    """
    obs = get_registry()
    cases = spec.cases()
    with obs.span("mc.run", level=spec.level, backend=backend), obs.profile(
        "mc.run"
    ):
        outcomes = run_sweep_batched(
            MC_EVAL,
            cases,
            batch_size=batch_size,
            max_workers=max_workers,
            on_error="capture",
            backend=backend,
            harness=harness,
        )
    values: List[Optional[Dict[str, float]]] = [
        outcome.value if outcome.error is None else None for outcome in outcomes
    ]
    report = _reduce(spec, backend, values)
    obs.inc("mc_runs_total")
    obs.inc("mc_samples_total", report.n_evaluations)
    obs.inc("mc_failed_samples_total", report.n_failed)
    obs.inc(f"mc_level_{spec.level}_runs_total")
    return report
