"""Tolerance-distribution sampling for facility-scale Monte Carlo.

The calibration knobs of the reproduced machines (sink geometry factors,
interface resistivities, pump curves, catalog powers, fluid properties)
are plausible values, not measured ones. :mod:`repro.analysis.uncertainty`
states 1-sigma tolerances for them; this module generalizes those
tolerances into full sampling distributions and lays them out as the
Saltelli A/B/AB design that the Sobol estimators of
:mod:`repro.analysis.estimators` consume.

Determinism contract: everything is a pure function of ``(seed, n_base,
knobs)``. The unit hypercube is drawn from one
``numpy.random.default_rng(seed)`` in a fixed order, every knob transform
is an elementwise closed form (no iteration, no data-dependent branching),
and the resulting sample values travel as plain floats inside sweep-case
params — so the canonical-JSON checkpoint digest of a Monte Carlo sweep,
and its exported report, depend on nothing but the spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np
from scipy.special import ndtri

__all__ = [
    "SaltelliDesign",
    "ToleranceDistribution",
    "normal_offset",
    "normal_scale",
    "saltelli_design",
    "uniform_offset",
    "uniform_scale",
]

#: Probability clamp keeping the inverse normal CDF finite on [0, 1) draws.
_PPF_EPS = 1.0e-12


@dataclass(frozen=True)
class ToleranceDistribution:
    """One uncertain knob: a named distribution over a scale or an offset.

    Parameters
    ----------
    name:
        Knob identifier; the evaluation layer maps it onto the physics
        (see ``repro.analysis.montecarlo``).
    kind:
        ``"normal"`` (``width`` is the 1-sigma) or ``"uniform"``
        (``width`` is the half-width).
    mode:
        ``"scale"`` draws multiply a base value (centred on 1.0);
        ``"offset"`` draws add to it (centred on 0.0).
    width:
        Distribution width (sigma or half-width), in scale fraction or
        offset units.
    clip_lo, clip_hi:
        Hard bounds on the drawn value. Normal draws are truncated here
        (by clipping, documented in ``docs/UNCERTAINTY.md``) so extreme
        tails cannot push a solve outside its validity region.
    """

    name: str
    kind: str = "normal"
    mode: str = "scale"
    width: float = 0.05
    clip_lo: float = float("-inf")
    clip_hi: float = float("inf")

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("knob name must be non-empty")
        if self.kind not in ("normal", "uniform"):
            raise ValueError(f"unknown distribution kind {self.kind!r}")
        if self.mode not in ("scale", "offset"):
            raise ValueError(f"unknown distribution mode {self.mode!r}")
        if self.width <= 0:
            raise ValueError("distribution width must be positive")
        if not self.clip_lo < self.clip_hi:
            raise ValueError("clip_lo must be below clip_hi")

    @property
    def center(self) -> float:
        """The distribution centre (1.0 for scales, 0.0 for offsets)."""
        return 1.0 if self.mode == "scale" else 0.0

    def apply(self, u: np.ndarray) -> np.ndarray:
        """Map unit-hypercube draws ``u`` in [0, 1) to knob values."""
        u = np.asarray(u, dtype=float)
        if self.kind == "normal":
            clipped = np.clip(u, _PPF_EPS, 1.0 - _PPF_EPS)
            values = self.center + self.width * ndtri(clipped)
        else:
            values = self.center + self.width * (2.0 * u - 1.0)
        return np.clip(values, self.clip_lo, self.clip_hi)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form; unbounded clips serialize as ``None`` (JSON
        has no infinity, and the spec digest must be canonical JSON)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "mode": self.mode,
            "width": self.width,
            "clip": [
                self.clip_lo if np.isfinite(self.clip_lo) else None,
                self.clip_hi if np.isfinite(self.clip_hi) else None,
            ],
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "ToleranceDistribution":
        clip = payload.get("clip", [None, None])
        lo = float("-inf") if clip[0] is None else float(clip[0])
        hi = float("inf") if clip[1] is None else float(clip[1])
        return ToleranceDistribution(
            name=str(payload["name"]),
            kind=str(payload.get("kind", "normal")),
            mode=str(payload.get("mode", "scale")),
            width=float(payload.get("width", 0.05)),
            clip_lo=lo,
            clip_hi=hi,
        )


def normal_scale(name: str, sigma: float, n_sigma: float = 3.0) -> ToleranceDistribution:
    """A multiplicative knob ``N(1, sigma)`` truncated at ``n_sigma``."""
    return ToleranceDistribution(
        name=name,
        kind="normal",
        mode="scale",
        width=sigma,
        clip_lo=1.0 - n_sigma * sigma,
        clip_hi=1.0 + n_sigma * sigma,
    )


def normal_offset(name: str, sigma: float, n_sigma: float = 3.0) -> ToleranceDistribution:
    """An additive knob ``N(0, sigma)`` truncated at ``n_sigma``."""
    return ToleranceDistribution(
        name=name,
        kind="normal",
        mode="offset",
        width=sigma,
        clip_lo=-n_sigma * sigma,
        clip_hi=n_sigma * sigma,
    )


def uniform_scale(name: str, half_width: float) -> ToleranceDistribution:
    """A multiplicative knob ``U(1 - w, 1 + w)``."""
    return ToleranceDistribution(
        name=name, kind="uniform", mode="scale", width=half_width
    )


def uniform_offset(name: str, half_width: float) -> ToleranceDistribution:
    """An additive knob ``U(-w, +w)``."""
    return ToleranceDistribution(
        name=name, kind="uniform", mode="offset", width=half_width
    )


@dataclass(frozen=True)
class SaltelliDesign:
    """The Saltelli radial design over ``k`` knobs at base size ``N``.

    ``a`` and ``b`` are two independent ``[N, k]`` sample matrices;
    ``ab[i]`` equals ``a`` with column ``i`` replaced from ``b`` — the
    classic ``N * (k + 2)`` evaluation layout behind the first-order and
    total Sobol estimators (Saltelli et al. 2010), as used by the ICV
    exemplar's N=10,000 Monte Carlo engine.
    """

    knobs: Tuple[ToleranceDistribution, ...]
    a: np.ndarray  # [N, k] knob values
    b: np.ndarray  # [N, k]
    ab: Tuple[np.ndarray, ...]  # k matrices, each [N, k]

    @property
    def n_base(self) -> int:
        return int(self.a.shape[0])

    @property
    def k(self) -> int:
        return len(self.knobs)

    @property
    def n_evaluations(self) -> int:
        """Total model evaluations the design requires: ``N * (k + 2)``."""
        return self.n_base * (self.k + 2)

    def rows(self) -> List[Tuple[str, int, Dict[str, float]]]:
        """Every evaluation point as ``(matrix_tag, row, {knob: value})``.

        Tags are ``"a"``, ``"b"``, ``"ab0"`` .. ``"ab{k-1}"``, emitted in
        that fixed order — the one canonical enumeration every backend,
        checkpoint and golden sees.
        """
        names = [knob.name for knob in self.knobs]

        def as_samples(matrix: np.ndarray, tag: str) -> List[Tuple[str, int, Dict[str, float]]]:
            return [
                (tag, row, {name: float(matrix[row, j]) for j, name in enumerate(names)})
                for row in range(matrix.shape[0])
            ]

        out = as_samples(self.a, "a") + as_samples(self.b, "b")
        for i, matrix in enumerate(self.ab):
            out += as_samples(matrix, f"ab{i}")
        return out


def saltelli_design(
    knobs: Sequence[ToleranceDistribution], n_base: int, seed: int
) -> SaltelliDesign:
    """Build the deterministic Saltelli design for ``knobs``.

    One ``default_rng(seed)`` draws the ``[N, 2k]`` unit hypercube in a
    single call; columns ``0..k-1`` become matrix A, columns ``k..2k-1``
    matrix B, and each knob's transform maps its own columns — so the
    design depends on nothing but ``(seed, n_base, knobs)``.
    """
    knobs = tuple(knobs)
    if not knobs:
        raise ValueError("need at least one knob")
    names = [knob.name for knob in knobs]
    if len(set(names)) != len(names):
        raise ValueError("knob names must be unique")
    if n_base < 2:
        raise ValueError("n_base must be at least 2")
    k = len(knobs)
    rng = np.random.default_rng(seed)
    unit = rng.random((n_base, 2 * k))
    unit_a, unit_b = unit[:, :k], unit[:, k:]
    a = np.column_stack([knobs[j].apply(unit_a[:, j]) for j in range(k)])
    b = np.column_stack([knobs[j].apply(unit_b[:, j]) for j in range(k)])
    ab = []
    for i in range(k):
        mixed = a.copy()
        mixed[:, i] = b[:, i]
        ab.append(mixed)
    return SaltelliDesign(knobs=knobs, a=a, b=b, ab=tuple(ab))
