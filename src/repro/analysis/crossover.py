"""The air-cooling viability frontier.

Section 1's historical claim — air cooling was fine for Virtex-6, marginal
for Virtex-7, and impossible for UltraScale — is a *crossover* statement:
somewhere between ~30 W and ~90 W per chip, forced air stops holding the
65...70 C reliability ceiling. This harness finds that frontier directly:
for a family of hypothetical chips spanning per-chip power, it solves the
air-cooled and immersion-cooled machines and locates the power where each
first violates the ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional

from scipy.optimize import brentq

from repro.core.aircooling import AirCooledModule
from repro.core.skat import skat
from repro.devices.board import Ccb
from repro.devices.families import FpgaFamily, VIRTEX7_X485T
from repro.devices.fpga import Fpga
from repro.devices.power import ThermalRunawayError


def hypothetical_family(operating_power_w: float) -> FpgaFamily:
    """A Virtex-7-geometry chip at an arbitrary power class.

    Holding the package/die geometry and clocks fixed isolates the power
    axis, which is what the paper's family argument is really about.
    """
    if operating_power_w <= 0:
        raise ValueError("power must be positive")
    return replace(
        VIRTEX7_X485T,
        name=f"hypothetical {operating_power_w:.0f} W",
        part="(synthetic)",
        operating_power_w=operating_power_w,
        max_power_w=operating_power_w * 1.2,
    )


def air_junction_at_power(operating_power_w: float) -> Optional[float]:
    """Max junction of the legacy air-cooled CM at a chip power class.

    Returns None when the leakage loop runs away (no equilibrium).
    """
    family = hypothetical_family(operating_power_w)
    module = AirCooledModule(ccb=Ccb(Fpga(family)))
    try:
        return module.solve(25.0).max_junction_c
    except ThermalRunawayError:
        return None


def immersion_junction_at_power(operating_power_w: float) -> Optional[float]:
    """Max junction of the SKAT cooling system at a chip power class."""
    family = hypothetical_family(operating_power_w)
    module = skat()
    fpga = replace(module.section.ccb.fpga, family=family)
    ccb = replace(module.section.ccb, fpga=fpga)
    section = replace(module.section, ccb=ccb)
    module = replace(module, section=section)
    try:
        report = module.solve_steady(20.0, 1.2e-3)
        return report.max_fpga_c
    except (ThermalRunawayError, ValueError):
        return None


def viability_frontier_w(
    junction_at_power: Callable[[float], Optional[float]],
    ceiling_c: float = 67.0,
    lo_w: float = 5.0,
    hi_w: float = 400.0,
) -> float:
    """Largest per-chip power the cooling holds below the ceiling.

    Bisects the junction-vs-power curve; treats runaway as "over the
    ceiling". Raises if even ``lo_w`` violates or ``hi_w`` still passes.
    """

    def excess(power: float) -> float:
        junction = junction_at_power(power)
        if junction is None:
            return 1.0e3  # runaway: far over
        return junction - ceiling_c

    if excess(lo_w) > 0:
        raise ValueError(f"even {lo_w:.0f} W violates the {ceiling_c:.0f} C ceiling")
    if excess(hi_w) < 0:
        raise ValueError(f"{hi_w:.0f} W still passes; raise the bracket")
    return brentq(excess, lo_w, hi_w, xtol=0.05)


@dataclass(frozen=True)
class FrontierPoint:
    """One sweep sample for the frontier plot."""

    power_w: float
    air_junction_c: Optional[float]
    immersion_junction_c: Optional[float]


def sweep_frontier(powers_w: List[float]) -> List[FrontierPoint]:
    """Junction-vs-power series for both cooling systems."""
    if not powers_w:
        raise ValueError("need at least one power point")
    return [
        FrontierPoint(
            power_w=p,
            air_junction_c=air_junction_at_power(p),
            immersion_junction_c=immersion_junction_at_power(p),
        )
        for p in powers_w
    ]


__all__ = [
    "FrontierPoint",
    "air_junction_at_power",
    "hypothetical_family",
    "immersion_junction_at_power",
    "sweep_frontier",
    "viability_frontier_w",
]
