"""Analysis harnesses over the machine models.

- :mod:`repro.analysis.compare` — the three cooling architectures (forced
  air, closed-loop cold plates, open-loop immersion) on one scorecard.
- :mod:`repro.analysis.energy` — energy and cost accounting: cooling
  overheads, PUE, annual energy, the economics behind the paper's
  "energy efficiency" keyword.
- :mod:`repro.analysis.sensitivity` — one-at-a-time parameter sensitivity
  of the SKAT operating point (what actually moves the 55 C number).
"""

from repro.analysis.compare import ArchitectureScore, compare_architectures, render_scorecard
from repro.analysis.crossover import sweep_frontier, viability_frontier_w
from repro.analysis.designspace import DesignPoint, pareto_frontier, sweep
from repro.analysis.tco import CoolingTco, CostAssumptions, rack_tco_comparison
from repro.analysis.energy import EnergyReport, annual_energy_report
from repro.analysis.uncertainty import UncertainValue, skat_uncertainty
from repro.analysis.sensitivity import SensitivityResult, coolant_sensitivity, skat_sensitivity

__all__ = [
    "ArchitectureScore",
    "CoolingTco",
    "CostAssumptions",
    "DesignPoint",
    "EnergyReport",
    "SensitivityResult",
    "UncertainValue",
    "annual_energy_report",
    "compare_architectures",
    "coolant_sensitivity",
    "pareto_frontier",
    "rack_tco_comparison",
    "render_scorecard",
    "skat_sensitivity",
    "skat_uncertainty",
    "sweep",
    "sweep_frontier",
    "viability_frontier_w",
]
