"""Analysis harnesses over the machine models.

- :mod:`repro.analysis.compare` — the three cooling architectures (forced
  air, closed-loop cold plates, open-loop immersion) on one scorecard.
- :mod:`repro.analysis.energy` — energy and cost accounting: cooling
  overheads, PUE, annual energy, the economics behind the paper's
  "energy efficiency" keyword.
- :mod:`repro.analysis.sensitivity` — one-at-a-time parameter sensitivity
  of the SKAT operating point (what actually moves the 55 C number).
- :mod:`repro.analysis.montecarlo` — facility-scale Monte Carlo with
  Saltelli sampling (:mod:`repro.analysis.sampling`) and quantile /
  exceedance / Sobol reducers (:mod:`repro.analysis.estimators`), run
  through the batched sweep backends with checkpoint/resume.
"""

from repro.analysis.compare import ArchitectureScore, compare_architectures, render_scorecard
from repro.analysis.crossover import sweep_frontier, viability_frontier_w
from repro.analysis.designspace import DesignPoint, pareto_frontier, sweep
from repro.analysis.tco import CoolingTco, CostAssumptions, rack_tco_comparison
from repro.analysis.energy import EnergyReport, annual_energy_report
from repro.analysis.uncertainty import UncertainValue, perturbed_skat, skat_uncertainty
from repro.analysis.sensitivity import SensitivityResult, coolant_sensitivity, skat_sensitivity
from repro.analysis.sampling import SaltelliDesign, ToleranceDistribution, saltelli_design
from repro.analysis.estimators import exceedance_probability, quantile_bands, sobol_indices
from repro.analysis.montecarlo import McReport, McSpec, make_spec, run_montecarlo

__all__ = [
    "ArchitectureScore",
    "CoolingTco",
    "CostAssumptions",
    "DesignPoint",
    "EnergyReport",
    "McReport",
    "McSpec",
    "SaltelliDesign",
    "SensitivityResult",
    "ToleranceDistribution",
    "UncertainValue",
    "annual_energy_report",
    "compare_architectures",
    "coolant_sensitivity",
    "exceedance_probability",
    "make_spec",
    "pareto_frontier",
    "perturbed_skat",
    "quantile_bands",
    "rack_tco_comparison",
    "render_scorecard",
    "run_montecarlo",
    "saltelli_design",
    "skat_sensitivity",
    "skat_uncertainty",
    "sobol_indices",
    "sweep",
    "sweep_frontier",
    "viability_frontier_w",
]
