"""Design-space exploration for the immersion CM.

The SKAT geometry in :mod:`repro.core.skat` is one point; a designer wants
the neighbourhood: how do board count (the paper allows 12-16), pin
geometry and pump size trade junction temperature against pump power and
module performance? This harness sweeps the space and extracts the Pareto
frontier on (max junction, pump electrical power).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.core.module import ComputationalModule
from repro.core.skat import SKAT_WATER_FLOW_M3_S, SKAT_WATER_SUPPLY_C, skat
from repro.hydraulics.elements import Pump, PumpCurve
from repro.performance.flops import peak_gflops


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated CM variant."""

    n_boards: int
    pin_height_m: float
    pin_pitch_m: float
    pump_shutoff_pa: float
    max_fpga_c: float
    bath_mean_c: float
    pump_power_w: float
    peak_gflops_total: float
    feasible: bool

    @property
    def label(self) -> str:
        """Compact variant label."""
        return (
            f"{self.n_boards}b/pin{self.pin_height_m * 1000:.0f}mm/"
            f"pitch{self.pin_pitch_m * 1000:.1f}mm/{self.pump_shutoff_pa / 1000:.0f}kPa"
        )


def _variant(
    n_boards: int, pin_height_m: float, pin_pitch_m: float, pump_shutoff_pa: float
) -> ComputationalModule:
    module = skat(n_boards=n_boards)
    sink = replace(
        module.section.sink, pin_height_m=pin_height_m, pin_pitch_m=pin_pitch_m
    )
    section = replace(module.section, sink=sink)
    pump = Pump(
        curve=PumpCurve(
            shutoff_pressure_pa=pump_shutoff_pa,
            max_flow_m3_s=module.pump.curve.max_flow_m3_s,
        ),
        efficiency=module.pump.efficiency,
        immersed=module.pump.immersed,
    )
    return replace(module, section=section, pump=pump)


def evaluate_point(
    n_boards: int,
    pin_height_m: float,
    pin_pitch_m: float,
    pump_shutoff_pa: float,
    junction_limit_c: float = 60.0,
    bath_limit_c: float = 30.5,
) -> DesignPoint:
    """Solve one variant and score it against the envelope."""
    module = _variant(n_boards, pin_height_m, pin_pitch_m, pump_shutoff_pa)
    try:
        report = module.solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
        max_fpga = report.max_fpga_c
        bath = report.bath_mean_c
        pump_power = report.pump_electrical_w
        feasible = max_fpga <= junction_limit_c and bath <= bath_limit_c
    except Exception:
        max_fpga, bath, pump_power, feasible = float("inf"), float("inf"), 0.0, False
    family = module.section.ccb.fpga.family
    chips = n_boards * module.section.ccb.n_fpgas
    return DesignPoint(
        n_boards=n_boards,
        pin_height_m=pin_height_m,
        pin_pitch_m=pin_pitch_m,
        pump_shutoff_pa=pump_shutoff_pa,
        max_fpga_c=max_fpga,
        bath_mean_c=bath,
        pump_power_w=pump_power,
        peak_gflops_total=chips * peak_gflops(family),
        feasible=feasible,
    )


def sweep(
    n_boards_options: Sequence[int] = (12, 14, 16),
    pin_heights_m: Sequence[float] = (0.005, 0.007, 0.009),
    pin_pitches_m: Sequence[float] = (0.0035, 0.004, 0.0045),
    pump_shutoffs_pa: Sequence[float] = (35.0e3, 45.0e3, 55.0e3),
    limit: Optional[int] = None,
) -> List[DesignPoint]:
    """Full-factorial sweep of the design space (81 points by default)."""
    points: List[DesignPoint] = []
    for n_boards in n_boards_options:
        for height in pin_heights_m:
            for pitch in pin_pitches_m:
                for shutoff in pump_shutoffs_pa:
                    points.append(evaluate_point(n_boards, height, pitch, shutoff))
                    if limit is not None and len(points) >= limit:
                        return points
    return points


def pareto_frontier(points: List[DesignPoint]) -> List[DesignPoint]:
    """Feasible points not dominated on (max junction, pump power).

    A point dominates another when it is no hotter *and* no thirstier,
    and strictly better on at least one axis.
    """
    feasible = [p for p in points if p.feasible]
    frontier: List[DesignPoint] = []
    for candidate in feasible:
        dominated = any(
            (other.max_fpga_c <= candidate.max_fpga_c)
            and (other.pump_power_w <= candidate.pump_power_w)
            and (
                other.max_fpga_c < candidate.max_fpga_c
                or other.pump_power_w < candidate.pump_power_w
            )
            for other in feasible
        )
        if not dominated:
            frontier.append(candidate)
    return sorted(frontier, key=lambda p: p.max_fpga_c)


__all__ = ["DesignPoint", "evaluate_point", "pareto_frontier", "sweep"]
