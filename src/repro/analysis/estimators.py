"""Statistical reducers for Monte Carlo sweeps: quantiles, exceedance, Sobol.

All estimators are pure numpy closed forms over the stacked outputs of a
Saltelli design (:mod:`repro.analysis.sampling`), so they are exactly
reproducible for a given input array. Reports round through
``round(x, 9)`` before export, matching the verify package's canonical
JSON convention.

Estimator choices:

* Quantile bands use ``numpy.percentile`` with linear interpolation over
  the A and B matrices only — AB rows reuse A's coordinates and would
  bias marginal statistics.
* The first-order index uses the Saltelli/Jansen 2010 form
  ``S_i = mean(f_B * (f_ABi - f_A)) / V`` over outputs centered on the
  pooled A∪B mean (unbiased either way, but the uncentered form's noise
  scales with ``(mean/std)^2``), and the total index
  ``ST_i = mean((f_A - f_ABi)^2) / (2 V)``, with
  ``V = var(concat(f_A, f_B))``. Estimates are reported raw — not
  clipped to [0, 1] — so tests can see estimator noise honestly.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = [
    "exceedance_probability",
    "quantile_bands",
    "sobol_indices",
]

#: The quantile levels every Monte Carlo report carries.
QUANTILE_LEVELS = (5.0, 50.0, 95.0)


def _finite(values: np.ndarray) -> np.ndarray:
    """Finite samples, sorted — summation order is fixed, so every
    reduced statistic is exactly permutation-invariant (float addition
    is not associative; without the sort, std/mean could differ in the
    last ulp between two orderings of the same samples)."""
    values = np.asarray(values, dtype=float).ravel()
    return np.sort(values[np.isfinite(values)])


def quantile_bands(values: np.ndarray) -> Dict[str, float]:
    """p05/p50/p95 band plus mean and std over finite samples.

    Permutation-invariant (sorting is internal to ``percentile``) and
    monotone: every reported quantile lies within ``[min, max]`` of the
    input, and p05 <= p50 <= p95.
    """
    finite = _finite(values)
    if finite.size == 0:
        raise ValueError("quantile_bands needs at least one finite sample")
    p05, p50, p95 = np.percentile(finite, QUANTILE_LEVELS)
    return {
        "p05": round(float(p05), 9),
        "p50": round(float(p50), 9),
        "p95": round(float(p95), 9),
        "mean": round(float(np.mean(finite)), 9),
        "std": round(float(np.std(finite)), 9),
        "min": round(float(np.min(finite)), 9),
        "max": round(float(np.max(finite)), 9),
    }


def exceedance_probability(
    values: np.ndarray, threshold: float, direction: str = "below"
) -> float:
    """Fraction of finite samples beyond ``threshold``.

    ``direction="below"`` counts ``value < threshold`` (e.g. overheat
    margin dropping under zero), ``"above"`` counts ``value > threshold``.
    """
    if direction not in ("below", "above"):
        raise ValueError(f"unknown exceedance direction {direction!r}")
    finite = _finite(values)
    if finite.size == 0:
        raise ValueError("exceedance_probability needs at least one finite sample")
    if direction == "below":
        hits = np.count_nonzero(finite < threshold)
    else:
        hits = np.count_nonzero(finite > threshold)
    return round(float(hits / finite.size), 9)


def sobol_indices(
    f_a: np.ndarray,
    f_b: np.ndarray,
    f_ab: Sequence[np.ndarray],
    names: Sequence[str],
) -> Dict[str, Dict[str, float]]:
    """First-order and total Sobol indices from Saltelli design outputs.

    Parameters
    ----------
    f_a, f_b:
        Model outputs over the A and B matrices, shape ``[N]``.
    f_ab:
        One output vector per knob, each over the matching AB_i matrix.
    names:
        Knob names, aligned with ``f_ab``.

    Returns ``{name: {"first_order": S_i, "total": ST_i}}``. Rows where
    any of ``f_a``/``f_b``/``f_ABi`` is non-finite are masked out of
    every estimator consistently, so a failed solve drops a whole sample
    row rather than skewing one term. If the output variance is (near)
    zero the indices are reported as 0.0 — nothing to attribute.
    """
    if len(f_ab) != len(names):
        raise ValueError("need one AB output vector per knob name")
    f_a = np.asarray(f_a, dtype=float).ravel()
    f_b = np.asarray(f_b, dtype=float).ravel()
    stacked_ab = [np.asarray(col, dtype=float).ravel() for col in f_ab]
    for col in stacked_ab:
        if col.shape != f_a.shape or f_b.shape != f_a.shape:
            raise ValueError("all output vectors must share the base length N")

    mask = np.isfinite(f_a) & np.isfinite(f_b)
    for col in stacked_ab:
        mask &= np.isfinite(col)
    if np.count_nonzero(mask) < 2:
        raise ValueError("sobol_indices needs at least two fully finite rows")
    f_a = f_a[mask]
    f_b = f_b[mask]
    stacked_ab = [col[mask] for col in stacked_ab]

    # Center on the pooled mean before estimating: the first-order form
    # is unbiased either way, but its sampling variance scales with
    # (mean/std)^2 uncentered — outputs like availability (~0.999 with a
    # ~2e-4 spread) would drown the signal in noise.
    pooled = np.concatenate([f_a, f_b])
    variance = float(np.var(pooled))
    center = float(np.mean(pooled))
    f_a = f_a - center
    f_b = f_b - center
    stacked_ab = [col - center for col in stacked_ab]
    out: Dict[str, Dict[str, float]] = {}
    for name, f_abi in zip(names, stacked_ab):
        if variance <= 1.0e-30:
            first, total = 0.0, 0.0
        else:
            first = float(np.mean(f_b * (f_abi - f_a)) / variance)
            total = float(0.5 * np.mean((f_a - f_abi) ** 2) / variance)
        out[str(name)] = {
            "first_order": round(first, 9),
            "total": round(total, 9),
        }
    return out
