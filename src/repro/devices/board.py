"""The computational circuit board (CCB).

"Each CCB must contain up to eight FPGAs, with a dissipating heat flow of
about 100 W from each FPGA" (Section 3). SKAT-generation boards also carry
a separate controller FPGA ("the CCB controller was always implemented as a
separate FPGA"); the SKAT+ redesign eliminates it because the 45 mm
UltraScale+ packages would otherwise not fit the 19-inch rack width
(Section 4) — a constraint this module checks arithmetically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.devices.fpga import Fpga

#: Usable board width inside a standard 19-inch rack, mm.
RACK_19_INTERNAL_WIDTH_MM = 450.0
#: Package-to-package clearance required for routing and heatsink hardware.
DEFAULT_CLEARANCE_MM = 7.0


class BoardLayoutError(ValueError):
    """Raised when a CCB layout cannot fit its mechanical envelope."""


@dataclass(frozen=True)
class Ccb:
    """A computational circuit board.

    Parameters
    ----------
    fpga:
        The (identical) computational FPGAs populating the board.
    n_fpgas:
        Computational field size (the paper's boards carry 8).
    separate_controller:
        True when a dedicated controller FPGA occupies an extra package
        site (SKAT); False when one field FPGA doubles as the controller
        (SKAT+), spending ``controller_overhead`` of its resource on
        access/programming/monitoring functions.
    controller_overhead:
        Fraction of one FPGA's logic spent on controller duties when the
        controller is folded into the field ("the resources required at
        present for the implementation of all the CCB controller functions
        amount to only some percent of the logic capacity").
    clearance_mm:
        Package-to-package clearance in the row layout.
    misc_power_w:
        Non-FPGA board power (memory, clocking, transceivers).
    """

    fpga: Fpga
    n_fpgas: int = 8
    separate_controller: bool = True
    controller_overhead: float = 0.04
    clearance_mm: float = DEFAULT_CLEARANCE_MM
    misc_power_w: float = 30.0

    def __post_init__(self) -> None:
        if not 1 <= self.n_fpgas <= 16:
            raise BoardLayoutError("a CCB carries between 1 and 16 FPGAs")
        if not 0.0 <= self.controller_overhead < 1.0:
            raise BoardLayoutError("controller overhead must be within [0, 1)")
        if self.clearance_mm < 0 or self.misc_power_w < 0:
            raise BoardLayoutError("clearance and misc power must be non-negative")

    @property
    def package_sites(self) -> int:
        """Packages on the board: the field plus any separate controller."""
        return self.n_fpgas + (1 if self.separate_controller else 0)

    @property
    def row_width_mm(self) -> float:
        """Width of the package row the board must accommodate."""
        pitch = self.fpga.family.package_size_mm + self.clearance_mm
        return self.package_sites * pitch

    def fits_19_inch_rack(self) -> bool:
        """Whether the package row fits the usable 19-inch width.

        This single check reproduces the paper's Section 4 argument: with
        42.5 mm packages nine sites fit; with 45 mm UltraScale+ packages
        they do not, so the separate controller must go.
        """
        return self.row_width_mm <= RACK_19_INTERNAL_WIDTH_MM

    def require_fit(self) -> None:
        """Raise :class:`BoardLayoutError` when the layout does not fit."""
        if not self.fits_19_inch_rack():
            raise BoardLayoutError(
                f"{self.package_sites} x {self.fpga.family.package_size_mm:.1f} mm packages "
                f"need {self.row_width_mm:.1f} mm, exceeding the "
                f"{RACK_19_INTERNAL_WIDTH_MM:.0f} mm usable 19-inch width"
            )

    def compute_fpgas(self) -> List[Fpga]:
        """The FPGAs available for computation, controller duty deducted.

        With a separate controller all ``n_fpgas`` field chips compute at
        full utilization; without one, a single field chip loses
        ``controller_overhead`` of its resource to controller functions.
        """
        chips = [self.fpga] * self.n_fpgas
        if self.separate_controller:
            return list(chips)
        reduced = Fpga(
            family=self.fpga.family,
            utilization=max(self.fpga.utilization - self.controller_overhead, 0.0),
            clock_mhz=self.fpga.clock_mhz,
        )
        return [reduced] + list(chips[1:])

    def heat_load_w(self, junction_c: float) -> float:
        """Total board dissipation with every chip at the given junction
        temperature (controller FPGA, when separate, idles at ~1/3 load)."""
        field_heat = sum(chip.power_w(junction_c) for chip in self.compute_fpgas())
        controller = self.fpga.power_w(junction_c) / 3.0 if self.separate_controller else 0.0
        return field_heat + controller + self.misc_power_w

    def nominal_heat_load_w(self) -> float:
        """Board dissipation at the family's reference junction temperature.

        For the SKAT board this is the paper's "power of up to 800 W each":
        8 x 91 W + controller + memory/clocking.
        """
        from repro.devices.power import REFERENCE_JUNCTION_C

        return self.heat_load_w(REFERENCE_JUNCTION_C)


__all__ = [
    "BoardLayoutError",
    "Ccb",
    "DEFAULT_CLEARANCE_MM",
    "RACK_19_INTERNAL_WIDTH_MM",
]
