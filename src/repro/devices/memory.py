"""Board memory subsystem.

The paper lists "RAM" among the immersed electronic components of the
computational section. Each CCB pairs its FPGA field with DDR memory for
streaming task data; memory is a modest but real heat source and — being
immersed — must tolerate the oil like everything else. The model covers
capacity planning and the power the bath must carry.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryModule:
    """One DDR memory device/module on a CCB.

    Parameters
    ----------
    name:
        Part label.
    capacity_gb:
        Capacity, GB.
    idle_power_w, active_power_w:
        Power at idle and at full streaming bandwidth.
    bandwidth_gb_s:
        Peak bandwidth, GB/s.
    """

    name: str
    capacity_gb: float
    idle_power_w: float
    active_power_w: float
    bandwidth_gb_s: float

    def __post_init__(self) -> None:
        if self.capacity_gb <= 0 or self.bandwidth_gb_s <= 0:
            raise ValueError("capacity and bandwidth must be positive")
        if not 0.0 <= self.idle_power_w <= self.active_power_w:
            raise ValueError("need 0 <= idle power <= active power")

    def power_w(self, activity: float) -> float:
        """Dissipation at a streaming activity factor in [0, 1]."""
        if not 0.0 <= activity <= 1.0:
            raise ValueError("activity must be within [0, 1]")
        return self.idle_power_w + activity * (self.active_power_w - self.idle_power_w)


#: DDR4-class component the SKAT-generation boards carry per FPGA.
DDR4_8GB = MemoryModule(
    name="DDR4 8GB",
    capacity_gb=8.0,
    idle_power_w=1.2,
    active_power_w=4.5,
    bandwidth_gb_s=19.2,
)


@dataclass(frozen=True)
class BoardMemory:
    """The memory complement of one CCB.

    Parameters
    ----------
    module:
        The memory device type.
    modules_per_fpga:
        Devices attached to each field FPGA (one bank per chip typical).
    n_fpgas:
        Field size.
    """

    module: MemoryModule = DDR4_8GB
    modules_per_fpga: int = 1
    n_fpgas: int = 8

    def __post_init__(self) -> None:
        if self.modules_per_fpga < 0 or self.n_fpgas < 1:
            raise ValueError("invalid memory complement")

    @property
    def n_modules(self) -> int:
        """Devices on the board."""
        return self.modules_per_fpga * self.n_fpgas

    @property
    def capacity_gb(self) -> float:
        """Board memory capacity, GB."""
        return self.n_modules * self.module.capacity_gb

    @property
    def total_bandwidth_gb_s(self) -> float:
        """Aggregate streaming bandwidth, GB/s."""
        return self.n_modules * self.module.bandwidth_gb_s

    def power_w(self, activity: float = 0.6) -> float:
        """Board memory dissipation at an activity factor.

        The default 0.6 reflects streaming pipelines that keep banks busy
        most cycles — and lands near the 30 W ``misc_power_w`` the board
        model budgets, which the test suite checks for consistency.
        """
        return self.n_modules * self.module.power_w(activity)

    def bandwidth_per_gflops(self, board_gflops: float) -> float:
        """Bytes available per floating-point operation (balance metric).

        RCS pipelines are streaming machines; below ~0.1 B/Flop most task
        graphs starve. Used by the capacity-planning checks.
        """
        if board_gflops <= 0:
            raise ValueError("board performance must be positive")
        return self.total_bandwidth_gb_s / board_gflops


__all__ = ["BoardMemory", "DDR4_8GB", "MemoryModule"]
