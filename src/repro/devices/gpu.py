"""GPU-class devices for the AI-factory workload catalog.

The paper's device roadmap stops at UltraScale+ FPGAs; the ROADMAP's
north-star asks for "as many scenarios as you can imagine". This module
opens the GPU era: H100/H200/B200-style accelerators expressed in the
same :class:`~repro.devices.families.FpgaFamily` grammar the rest of the
stack consumes (electro-thermal power model, board layout, reliability
limits), plus the deterministic *training-workload power traces* that
drive them — warmup, optimizer steps and all-reduce dips rendered as
``power_step`` events on the existing failure-event grammar, so
``ModuleSimulator``/``RackSimulator``/``FacilitySimulator`` and the
batched open-loop core run GPU workloads unchanged.

Catalog values are nominal datasheet-class numbers (TDP envelopes,
die/package geometry, boost clocks); ``logic_cells``/``dsp_slices`` carry
shader and tensor-core counts so the performance model keeps scaling
with the compute resource.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.devices.families import FpgaFamily
from repro.reliability.failures import FailureEvent, power_step_event

#: Event-grammar target that addresses the computational load itself
#: (every chip in scope) rather than a cooling component.
COMPUTE_TARGET = "compute"

#: An H100 SXM-class accelerator in the catalog grammar. 700 W TDP
#: envelope; ``operating_power_w`` is the sustained training draw at the
#: reference 90 % utilization and reference junction temperature.
H100_SXM = FpgaFamily(
    name="H100 SXM (GPU-class)",
    part="H100-SXM5-80GB",
    process_nm=4.0,
    logic_cells=16_896,
    dsp_slices=528,
    bram_mb=50.0,
    nominal_clock_mhz=1830.0,
    operating_power_w=630.0,
    max_power_w=700.0,
    static_fraction=0.18,
    package_size_mm=48.0,
    die_size_mm=28.5,
    t_junction_max_c=90.0,
    t_reliable_max_c=83.0,
    theta_jc_k_w=0.022,
    year=2022,
)

#: H200 SXM: the same compute silicon with the HBM3e stack — identical
#: thermals, slightly higher sustained board draw.
H200_SXM = FpgaFamily(
    name="H200 SXM (GPU-class)",
    part="H200-SXM5-141GB",
    process_nm=4.0,
    logic_cells=16_896,
    dsp_slices=528,
    bram_mb=50.0,
    nominal_clock_mhz=1830.0,
    operating_power_w=640.0,
    max_power_w=700.0,
    static_fraction=0.18,
    package_size_mm=48.0,
    die_size_mm=28.5,
    t_junction_max_c=90.0,
    t_reliable_max_c=83.0,
    theta_jc_k_w=0.022,
    year=2023,
)

#: B200 SXM: dual-die Blackwell-class part, 1 kW TDP envelope. The larger
#: heat-source footprint spreads the flux, so the junction-to-case path
#: is shorter than Hopper's despite the higher power.
B200_SXM = FpgaFamily(
    name="B200 SXM (GPU-class)",
    part="B200-SXM6-192GB",
    process_nm=4.0,
    logic_cells=33_792,
    dsp_slices=1_056,
    bram_mb=126.0,
    nominal_clock_mhz=1965.0,
    operating_power_w=890.0,
    max_power_w=1000.0,
    static_fraction=0.18,
    package_size_mm=48.0,
    die_size_mm=38.5,
    t_junction_max_c=90.0,
    t_reliable_max_c=83.0,
    theta_jc_k_w=0.015,
    year=2024,
)


def gpu_catalog() -> List[FpgaFamily]:
    """The GPU-class devices in chronological order."""
    return [H100_SXM, H200_SXM, B200_SXM]


@dataclass(frozen=True)
class TrainingTraceSpec:
    """A deterministic training-workload power trace.

    Renders the canonical shape of a large-model training run — a
    reduced-power *warmup* (data loading, graph capture), then optimizer
    steps that alternate between full-power compute and a lower-power
    *all-reduce dip* while the interconnect is busy — as a piecewise-
    constant workload fraction of the device's commanded utilization.

    Parameters
    ----------
    warmup_s:
        Duration of the warmup phase from t = 0.
    warmup_fraction:
        Workload fraction during warmup.
    step_period_s:
        Optimizer step period (compute phase + all-reduce dip).
    allreduce_fraction:
        Share of each step spent in the all-reduce dip.
    peak_fraction:
        Workload fraction in the compute phase.
    dip_fraction:
        Workload fraction during the all-reduce dip.
    jitter:
        Half-width of the uniform per-step jitter applied to the compute-
        phase fraction (step-time variation between optimizer steps).
    seed:
        Seed of the jitter stream; the same spec always renders the same
        event list.
    """

    warmup_s: float = 60.0
    warmup_fraction: float = 0.35
    step_period_s: float = 30.0
    allreduce_fraction: float = 0.25
    peak_fraction: float = 1.0
    dip_fraction: float = 0.78
    jitter: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        if self.warmup_s < 0:
            raise ValueError("warmup must be non-negative")
        if self.step_period_s <= 0:
            raise ValueError("step period must be positive")
        if not 0.0 < self.allreduce_fraction < 1.0:
            raise ValueError("all-reduce share must be within (0, 1)")
        for label, value in (
            ("warmup", self.warmup_fraction),
            ("peak", self.peak_fraction),
            ("dip", self.dip_fraction),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} fraction must be within [0, 1]")
        if self.dip_fraction > self.peak_fraction:
            raise ValueError("dip cannot exceed the compute-phase fraction")
        if not 0.0 <= self.jitter <= 0.1:
            raise ValueError("jitter must be within [0, 0.1]")


def _snap_to_grid(time_s: float, dt_s: float, duration_s: float) -> float:
    """Align a phase boundary to the simulation grid."""
    snapped = round(time_s / dt_s) * dt_s
    return min(max(snapped, 0.0), duration_s)


def training_power_events(
    spec: TrainingTraceSpec,
    duration_s: float,
    dt_s: float,
    target: str = COMPUTE_TARGET,
) -> List[FailureEvent]:
    """Render a training trace as grid-aligned ``power_step`` events.

    Phase boundaries are snapped to the ``dt_s`` grid and deduplicated
    (one event per instant — the later phase wins, matching the
    latest-due-event-wins fold of the simulators), magnitudes are rounded
    to 3 decimals, and the list comes back sorted on the canonical
    ``(time_s, kind, target)`` event order.
    """
    if duration_s <= 0 or dt_s <= 0:
        raise ValueError("duration and timestep must be positive")
    rng = random.Random(spec.seed)
    phases: List[Tuple[float, float]] = [(0.0, spec.warmup_fraction)]
    t = spec.warmup_s
    while t < duration_s:
        peak = spec.peak_fraction + rng.uniform(-spec.jitter, spec.jitter)
        phases.append((t, peak))
        dip_at = t + spec.step_period_s * (1.0 - spec.allreduce_fraction)
        if dip_at < duration_s:
            phases.append((dip_at, spec.dip_fraction))
        t += spec.step_period_s

    events: List[FailureEvent] = []
    by_time = {}
    for time_s, fraction in phases:
        snapped = _snap_to_grid(time_s, dt_s, duration_s)
        magnitude = round(min(max(fraction, 0.0), 1.0), 3)
        by_time[snapped] = magnitude  # later phase wins a shared instant
    for time_s in sorted(by_time):
        events.append(power_step_event(time_s, by_time[time_s], target=target))
    return events


__all__ = [
    "B200_SXM",
    "COMPUTE_TARGET",
    "H100_SXM",
    "H200_SXM",
    "TrainingTraceSpec",
    "gpu_catalog",
    "training_power_events",
]
