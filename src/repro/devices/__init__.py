"""Electronics substrate: FPGAs, computational circuit boards, power supplies.

The machines of the paper are built from an "FPGA computational field" —
six to eight large FPGAs per printed circuit board, 12-16 boards per
computational module. This package provides the device catalog (every FPGA
family the paper names, from Virtex-6 to the projected "UltraScale 2"), the
electro-thermal power model that couples utilization and junction
temperature to dissipated heat, and the board/PSU assemblies.
"""

from repro.devices.families import (
    FpgaFamily,
    KINTEX_ULTRASCALE_KU095,
    ULTRASCALE_2_PROJECTED,
    ULTRASCALE_PLUS_VU9P,
    VIRTEX6_LX240T,
    VIRTEX7_X485T,
    family_roadmap,
)
from repro.devices.power import FpgaPowerModel, ThermalRunawayError
from repro.devices.fpga import Fpga, OperatingPoint
from repro.devices.board import Ccb, BoardLayoutError, RACK_19_INTERNAL_WIDTH_MM
from repro.devices.gpu import (
    B200_SXM,
    H100_SXM,
    H200_SXM,
    TrainingTraceSpec,
    gpu_catalog,
    training_power_events,
)
from repro.devices.memory import BoardMemory, DDR4_8GB, MemoryModule
from repro.devices.psu import ImmersionPsu

__all__ = [
    "B200_SXM",
    "BoardLayoutError",
    "BoardMemory",
    "Ccb",
    "DDR4_8GB",
    "Fpga",
    "FpgaFamily",
    "FpgaPowerModel",
    "H100_SXM",
    "H200_SXM",
    "ImmersionPsu",
    "KINTEX_ULTRASCALE_KU095",
    "MemoryModule",
    "OperatingPoint",
    "RACK_19_INTERNAL_WIDTH_MM",
    "ThermalRunawayError",
    "TrainingTraceSpec",
    "ULTRASCALE_2_PROJECTED",
    "ULTRASCALE_PLUS_VU9P",
    "VIRTEX6_LX240T",
    "VIRTEX7_X485T",
    "family_roadmap",
    "gpu_catalog",
    "training_power_events",
]
