"""Immersion power supply unit.

"We have designed an immersion power supply unit providing DC/DC 380/12 V
transducing with the power up to 4 kW for four CCBs" (Section 3). The PSU
sits in the oil alongside the boards, so its conversion losses join the
bath heat load — the model exposes exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ImmersionPsu:
    """A DC/DC converter brick immersed in the coolant.

    Parameters
    ----------
    rated_output_w:
        Maximum continuous output power (the paper's unit: 4 kW).
    input_voltage_v, output_voltage_v:
        Bus voltages (380 V DC in, 12 V out).
    peak_efficiency:
        Efficiency at the optimum load fraction.
    boards_served:
        CCBs fed by one unit (the paper's unit feeds four).
    """

    rated_output_w: float = 4000.0
    input_voltage_v: float = 380.0
    output_voltage_v: float = 12.0
    peak_efficiency: float = 0.955
    boards_served: int = 4

    def __post_init__(self) -> None:
        if self.rated_output_w <= 0:
            raise ValueError("rated output must be positive")
        if not 0.5 < self.peak_efficiency < 1.0:
            raise ValueError("peak efficiency must be within (0.5, 1)")
        if self.boards_served < 1:
            raise ValueError("a PSU serves at least one board")

    def efficiency(self, output_w: float) -> float:
        """Load-dependent efficiency.

        A gentle parabola peaking at 50 % load — the standard converter
        shape: light loads pay fixed losses, full load pays conduction
        losses.
        """
        if not 0.0 <= output_w <= self.rated_output_w:
            raise ValueError(
                f"output {output_w:.0f} W outside [0, {self.rated_output_w:.0f}] W rating"
            )
        if output_w == 0.0:
            return 0.0
        load = output_w / self.rated_output_w
        droop = 0.025 * (load - 0.5) ** 2 / 0.25
        return self.peak_efficiency - droop

    def dissipation_w(self, output_w: float) -> float:
        """Heat released into the oil while delivering ``output_w``."""
        if output_w == 0.0:
            return 0.0
        eta = self.efficiency(output_w)
        return output_w * (1.0 / eta - 1.0)

    def input_power_w(self, output_w: float) -> float:
        """Power drawn from the 380 V bus."""
        return output_w + self.dissipation_w(output_w)


__all__ = ["ImmersionPsu"]
