"""Electro-thermal FPGA power model.

Power has a dynamic part (switching: proportional to utilization and clock)
and a static part (leakage: exponential in junction temperature). The
exponential coupling is why the paper's air-cooling numbers degrade so
quickly from family to family — a hotter junction leaks more, which heats
the junction further. The model exposes this loop explicitly via
:meth:`FpgaPowerModel.solve_junction`, which either converges to the
self-consistent operating point or raises :class:`ThermalRunawayError`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.optimize import brentq

from repro.devices.families import FpgaFamily

#: Junction temperature at which the catalog operating power is defined.
REFERENCE_JUNCTION_C = 60.0
#: Utilization at which the catalog operating power is defined (the middle
#: of the paper's "85-95 % of the available hardware resource").
REFERENCE_UTILIZATION = 0.9
#: Leakage e-folding temperature, K (leakage doubles per ~31 C).
LEAKAGE_EFOLD_K = 45.0
#: Upper bracket for junction solves; silicon is destroyed long before.
_JUNCTION_CEILING_C = 400.0


class ThermalRunawayError(RuntimeError):
    """Raised when no self-consistent junction temperature exists below the
    physical ceiling — the leakage/temperature loop diverges."""


@dataclass(frozen=True)
class FpgaPowerModel:
    """Power model for one FPGA family.

    Calibrated so that at the reference utilization, nominal clock and
    reference junction temperature the chip dissipates exactly the family's
    catalog ``operating_power_w``.
    """

    family: FpgaFamily

    @property
    def static_reference_w(self) -> float:
        """Leakage power at the reference junction temperature."""
        return self.family.static_fraction * self.family.operating_power_w

    @property
    def dynamic_reference_w(self) -> float:
        """Switching power at reference utilization and nominal clock."""
        return (1.0 - self.family.static_fraction) * self.family.operating_power_w

    def static_power_w(self, junction_c: float) -> float:
        """Leakage power at a junction temperature."""
        return self.static_reference_w * math.exp(
            (junction_c - REFERENCE_JUNCTION_C) / LEAKAGE_EFOLD_K
        )

    def dynamic_power_w(self, utilization: float, clock_mhz: float) -> float:
        """Switching power at a utilization and clock."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be within [0, 1]")
        if clock_mhz < 0:
            raise ValueError("clock must be non-negative")
        return (
            self.dynamic_reference_w
            * (utilization / REFERENCE_UTILIZATION)
            * (clock_mhz / self.family.nominal_clock_mhz)
        )

    def total_power_w(self, utilization: float, clock_mhz: float, junction_c: float) -> float:
        """Total dissipation at an operating point."""
        return self.dynamic_power_w(utilization, clock_mhz) + self.static_power_w(junction_c)

    def solve_junction(
        self,
        resistance_junction_to_coolant_k_w: float,
        coolant_c: float,
        utilization: float = REFERENCE_UTILIZATION,
        clock_mhz: float = None,
    ) -> float:
        """Self-consistent junction temperature against a coolant.

        Solves ``T_j = T_coolant + R * P(T_j)`` where the static part of P
        rises exponentially with ``T_j``.

        Raises
        ------
        ThermalRunawayError
            When the balance has no solution below the physical ceiling
            (cooling too weak for the leakage feedback).
        """
        if resistance_junction_to_coolant_k_w <= 0:
            raise ValueError("thermal resistance must be positive")
        if clock_mhz is None:
            clock_mhz = self.family.nominal_clock_mhz
        r = resistance_junction_to_coolant_k_w

        def imbalance(t_j: float) -> float:
            return t_j - coolant_c - r * self.total_power_w(utilization, clock_mhz, t_j)

        # The balance is negative at the coolant temperature (heat with no
        # rise) and, when equilibrium exists, crosses zero at the stable
        # operating point before the exponential leakage turns it negative
        # again at the unstable high-temperature root. Scan upward for the
        # first sign change, then refine.
        lower = coolant_c
        upper = None
        step = 2.0
        t = coolant_c + step
        while t <= _JUNCTION_CEILING_C:
            if imbalance(t) >= 0.0:
                upper = t
                break
            lower = t
            t += step
        if upper is None:
            raise ThermalRunawayError(
                f"{self.family.name}: no thermal equilibrium below "
                f"{_JUNCTION_CEILING_C:.0f} C with R={r:.3f} K/W at "
                f"coolant {coolant_c:.1f} C"
            )
        return brentq(imbalance, lower, upper, xtol=1e-10)


__all__ = [
    "FpgaPowerModel",
    "LEAKAGE_EFOLD_K",
    "REFERENCE_JUNCTION_C",
    "REFERENCE_UTILIZATION",
    "ThermalRunawayError",
]
