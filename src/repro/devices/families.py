"""The FPGA family catalog.

Every family the paper names, with the attributes the simulation needs:
logic capacity and clock (performance model), operating/maximum power
(thermal model), package geometry (board layout — the UltraScale+ move from
42.5 mm to 45 mm packages is what forces the SKAT+ CCB redesign), and
junction limits (reliability model).

Catalog values are nominal datasheet-class numbers; the two quantities the
paper itself fixes — 91 W measured per Kintex UltraScale chip in operating
mode and "up to 100 W" maximum — are wired in exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class FpgaFamily:
    """An FPGA family/part as the simulation sees it.

    Parameters
    ----------
    name:
        Marketing family name.
    part:
        Representative part number used in the paper's machines.
    process_nm:
        Silicon process node.
    logic_cells:
        System logic cells — the paper's "logic capacity", the resource
        the performance model scales with.
    dsp_slices:
        Hardened multiply-accumulate blocks.
    bram_mb:
        On-chip block RAM, MB.
    nominal_clock_mhz:
        Achievable pipeline clock for the RCS computational circuits.
    operating_power_w:
        Per-chip power in the machines' "operating mode" (85-95 %
        utilization of the hardware resource, per Section 1).
    max_power_w:
        Worst-case power the cooling system must be designed for.
    static_fraction:
        Share of operating power that is leakage at the reference junction
        temperature (the temperature-dependent part).
    package_size_mm:
        Square flip-chip package edge length.
    die_size_mm:
        Heat-source (die) edge length under the lid.
    t_junction_max_c:
        Absolute junction limit (commercial grade).
    t_reliable_max_c:
        The paper's long-service reliability ceiling: "the permissible
        temperature of an FPGA functioning, providing high reliability of
        the equipment during a long operation period, is 65...70 C".
    theta_jc_k_w:
        Junction-to-case (lid) thermal resistance.
    year:
        Introduction year, for the roadmap plots.
    """

    name: str
    part: str
    process_nm: float
    logic_cells: int
    dsp_slices: int
    bram_mb: float
    nominal_clock_mhz: float
    operating_power_w: float
    max_power_w: float
    static_fraction: float
    package_size_mm: float
    die_size_mm: float
    t_junction_max_c: float
    t_reliable_max_c: float
    theta_jc_k_w: float
    year: int

    def __post_init__(self) -> None:
        if self.logic_cells <= 0 or self.nominal_clock_mhz <= 0:
            raise ValueError("logic capacity and clock must be positive")
        if not 0.0 < self.operating_power_w <= self.max_power_w:
            raise ValueError("need 0 < operating power <= max power")
        if not 0.0 <= self.static_fraction < 1.0:
            raise ValueError("static fraction must be within [0, 1)")
        if self.die_size_mm > self.package_size_mm:
            raise ValueError("die cannot exceed the package")

    @property
    def package_area_m2(self) -> float:
        """Package footprint, m^2."""
        return (self.package_size_mm * 1.0e-3) ** 2

    @property
    def die_area_m2(self) -> float:
        """Die (heat source) footprint, m^2."""
        return (self.die_size_mm * 1.0e-3) ** 2


#: Virtex-6 of the CM Rigel-2 (Section 1). 40 nm.
VIRTEX6_LX240T = FpgaFamily(
    name="Virtex-6",
    part="XC6VLX240T-1FFG1759C",
    process_nm=40.0,
    logic_cells=241_152,
    dsp_slices=768,
    bram_mb=1.8,
    nominal_clock_mhz=250.0,
    operating_power_w=30.0,
    max_power_w=38.0,
    static_fraction=0.30,
    package_size_mm=42.5,
    die_size_mm=20.0,
    t_junction_max_c=85.0,
    t_reliable_max_c=67.0,
    theta_jc_k_w=0.12,
    year=2009,
)

#: Virtex-7 of the CM Taygeta (Section 1). 28 nm; +11...15 C overheat vs
#: Virtex-6 under the same air cooling.
VIRTEX7_X485T = FpgaFamily(
    name="Virtex-7",
    part="XC7VX485T-1FFG1761C",
    process_nm=28.0,
    logic_cells=485_760,
    dsp_slices=2_800,
    bram_mb=4.6,
    nominal_clock_mhz=400.0,
    operating_power_w=40.0,
    max_power_w=50.0,
    static_fraction=0.32,
    package_size_mm=42.5,
    die_size_mm=22.0,
    t_junction_max_c=85.0,
    t_reliable_max_c=67.0,
    theta_jc_k_w=0.10,
    year=2012,
)

#: Kintex UltraScale of the SKAT CCB (Section 3). 20 nm. The paper measures
#: 91 W per chip in operating mode and quotes "up to 100 W" as the family
#: ceiling.
KINTEX_ULTRASCALE_KU095 = FpgaFamily(
    name="Kintex UltraScale",
    part="XCKU095",
    process_nm=20.0,
    logic_cells=1_176_000,
    dsp_slices=768,
    bram_mb=8.2,
    nominal_clock_mhz=480.0,
    operating_power_w=96.0,
    max_power_w=105.0,
    static_fraction=0.35,
    package_size_mm=42.5,
    die_size_mm=26.0,
    t_junction_max_c=100.0,
    t_reliable_max_c=67.0,
    theta_jc_k_w=0.08,
    year=2015,
)

#: UltraScale+ of the planned SKAT+ (Section 4). 16FinFET Plus, "three time
#: increase in computational performance", 45 x 45 mm package.
ULTRASCALE_PLUS_VU9P = FpgaFamily(
    name="Virtex UltraScale+",
    part="XCVU9P",
    process_nm=16.0,
    logic_cells=2_586_000,
    dsp_slices=6_840,
    bram_mb=43.3,
    nominal_clock_mhz=650.0,
    operating_power_w=100.0,
    max_power_w=115.0,
    static_fraction=0.30,
    package_size_mm=45.0,
    die_size_mm=30.0,
    t_junction_max_c=100.0,
    t_reliable_max_c=67.0,
    theta_jc_k_w=0.07,
    year=2017,
)

#: The "UltraScale 2" the conclusions reserve cooling headroom for — a
#: projected next node continuing the capacity/clock/power trend.
ULTRASCALE_2_PROJECTED = FpgaFamily(
    name="UltraScale 2 (projected)",
    part="(projection)",
    process_nm=7.0,
    logic_cells=5_200_000,
    dsp_slices=12_000,
    bram_mb=90.0,
    nominal_clock_mhz=750.0,
    operating_power_w=110.0,
    max_power_w=130.0,
    static_fraction=0.28,
    package_size_mm=45.0,
    die_size_mm=32.0,
    t_junction_max_c=100.0,
    t_reliable_max_c=67.0,
    theta_jc_k_w=0.06,
    year=2020,
)


def family_roadmap() -> List[FpgaFamily]:
    """The FPGA families in chronological order (the paper's trajectory)."""
    return [
        VIRTEX6_LX240T,
        VIRTEX7_X485T,
        KINTEX_ULTRASCALE_KU095,
        ULTRASCALE_PLUS_VU9P,
        ULTRASCALE_2_PROJECTED,
    ]


__all__ = [
    "FpgaFamily",
    "KINTEX_ULTRASCALE_KU095",
    "ULTRASCALE_2_PROJECTED",
    "ULTRASCALE_PLUS_VU9P",
    "VIRTEX6_LX240T",
    "VIRTEX7_X485T",
    "family_roadmap",
]
