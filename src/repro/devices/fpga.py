"""An FPGA instance: a family configured at an operating point.

Separates the immutable family catalog (:mod:`repro.devices.families`) from
how a particular machine drives the chip: utilization (the paper's machines
run at "85-95 % of the available hardware resource") and pipeline clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.devices.families import FpgaFamily
from repro.devices.power import FpgaPowerModel, REFERENCE_UTILIZATION


@dataclass(frozen=True)
class OperatingPoint:
    """A resolved electro-thermal operating point for one FPGA."""

    junction_c: float
    power_w: float
    coolant_c: float
    resistance_k_w: float
    utilization: float
    clock_mhz: float

    @property
    def overheat_k(self) -> float:
        """Junction rise above the coolant — the quantity the paper reports
        ("the maximum overheat of the FPGAs relative to an environment
        temperature")."""
        return self.junction_c - self.coolant_c


@dataclass(frozen=True)
class Fpga:
    """A configured FPGA.

    Parameters
    ----------
    family:
        The device family from the catalog.
    utilization:
        Fraction of hardware resource carrying the computational circuit.
    clock_mhz:
        Pipeline clock; defaults to the family's nominal clock.
    """

    family: FpgaFamily
    utilization: float = REFERENCE_UTILIZATION
    clock_mhz: Optional[float] = None
    _power_model: FpgaPowerModel = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if not 0.0 <= self.utilization <= 1.0:
            raise ValueError("utilization must be within [0, 1]")
        clock = self.clock_mhz if self.clock_mhz is not None else self.family.nominal_clock_mhz
        if clock <= 0:
            raise ValueError("clock must be positive")
        object.__setattr__(self, "clock_mhz", clock)
        object.__setattr__(self, "_power_model", FpgaPowerModel(self.family))

    @property
    def power_model(self) -> FpgaPowerModel:
        """The family's electro-thermal power model."""
        return self._power_model

    def power_w(self, junction_c: float) -> float:
        """Dissipation at a given junction temperature."""
        return self._power_model.total_power_w(self.utilization, self.clock_mhz, junction_c)

    def operate(
        self, resistance_junction_to_coolant_k_w: float, coolant_c: float
    ) -> OperatingPoint:
        """Resolve the self-consistent operating point against a coolant.

        This is the single-chip building block of every machine model: the
        cooling design supplies the junction-to-coolant resistance, the
        power model supplies the heat, and the fixed point is the chip's
        steady temperature.
        """
        junction = self._power_model.solve_junction(
            resistance_junction_to_coolant_k_w,
            coolant_c,
            utilization=self.utilization,
            clock_mhz=self.clock_mhz,
        )
        return OperatingPoint(
            junction_c=junction,
            power_w=self.power_w(junction),
            coolant_c=coolant_c,
            resistance_k_w=resistance_junction_to_coolant_k_w,
            utilization=self.utilization,
            clock_mhz=self.clock_mhz,
        )

    def within_reliability_limit(self, junction_c: float) -> bool:
        """Whether the junction stays below the long-service ceiling the
        paper uses (65...70 C; we test against the family's value)."""
        return junction_c <= self.family.t_reliable_max_c


__all__ = ["Fpga", "OperatingPoint"]
