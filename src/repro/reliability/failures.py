"""Failure-injection events for the system simulator.

Each factory returns a :class:`FailureEvent` describing *what* degrades,
*when*, and *how* the coupled simulation should apply it. The events mirror
the failure modes the paper discusses: pump stoppage, a circulation loop
shut for servicing (the Fig. 5 scenario), coolant leaks in closed-loop
systems, thermal-paste washout in immersion baths, and sensor faults in the
control subsystem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

#: Largest credible leak, m^3/s — a full hose blow-off is ~1 L/s; beyond
#: 10 L/s the number is a unit mistake, not a scenario.
MAX_LEAK_RATE_M3_S = 1.0e-2
#: Largest credible TIM degradation multiplier; a fully washed-out
#: interface is ~an order of magnitude, two orders is a modeling error.
MAX_TIM_MULTIPLIER = 100.0
#: Largest credible sensor offset magnitude, Celsius (the transmitters
#: rail at their range ends well inside this).
MAX_SENSOR_OFFSET_C = 100.0


@dataclass(frozen=True)
class FailureEvent:
    """A timed degradation applied during a simulation run.

    Parameters
    ----------
    kind:
        Machine-readable failure class (``pump_stop``, ``loop_blockage``,
        ``leak``, ``tim_washout``, ``sensor_fault``).
    time_s:
        Simulation time at which the failure takes effect.
    target:
        Name of the affected component (pump id, loop branch name, sensor
        name, FPGA site).
    magnitude:
        Failure-specific severity: remaining speed fraction for a pump,
        remaining opening for a blockage, leak rate for a leak, resistance
        multiplier for TIM washout, offset in Celsius for a sensor fault.
    description:
        Human-readable account for reports.
    """

    kind: str
    time_s: float
    target: str
    magnitude: float
    description: str = ""

    def __post_init__(self) -> None:
        if not math.isfinite(self.time_s) or self.time_s < 0:
            raise ValueError("event time must be finite and non-negative")
        if not math.isfinite(self.magnitude):
            raise ValueError("event magnitude must be finite")
        if not self.kind:
            raise ValueError("event kind must be non-empty")
        if not self.target:
            raise ValueError("event target must be non-empty")


def pump_stop_event(time_s: float, pump_name: str, remaining_speed: float = 0.0) -> FailureEvent:
    """A circulation pump stops (or degrades to a fraction of speed)."""
    if not 0.0 <= remaining_speed < 1.0:
        raise ValueError("remaining speed must be within [0, 1)")
    return FailureEvent(
        kind="pump_stop",
        time_s=time_s,
        target=pump_name,
        magnitude=remaining_speed,
        description=f"pump {pump_name} drops to {remaining_speed:.0%} speed",
    )


def loop_blockage_event(time_s: float, loop_name: str, remaining_opening: float = 0.0) -> FailureEvent:
    """A rack circulation loop is valved off (serviced) or fouled.

    ``remaining_opening = 0`` is the paper's servicing scenario: "if a
    circulation loop in any computational module fails, then the
    heat-transfer agent flow is evenly changed in the rest of modules".
    """
    if not 0.0 <= remaining_opening < 1.0:
        raise ValueError("remaining opening must be within [0, 1)")
    return FailureEvent(
        kind="loop_blockage",
        time_s=time_s,
        target=loop_name,
        magnitude=remaining_opening,
        description=f"loop {loop_name} throttled to {remaining_opening:.0%} opening",
    )


def leak_event(time_s: float, location: str, leak_rate_m3_s: float) -> FailureEvent:
    """A heat-transfer-agent leak (the closed-loop nightmare scenario)."""
    if not math.isfinite(leak_rate_m3_s) or leak_rate_m3_s <= 0:
        raise ValueError("leak rate must be finite and positive")
    if leak_rate_m3_s > MAX_LEAK_RATE_M3_S:
        raise ValueError(
            f"leak rate {leak_rate_m3_s:g} m^3/s exceeds the credible maximum "
            f"{MAX_LEAK_RATE_M3_S:g} (check units: m^3/s, not L/s)"
        )
    return FailureEvent(
        kind="leak",
        time_s=time_s,
        target=location,
        magnitude=leak_rate_m3_s,
        description=f"leak at {location}: {leak_rate_m3_s * 1000.0:.2f} L/s",
    )


def tim_washout_drift(
    time_s: float, fpga_site: str, resistance_multiplier: float
) -> FailureEvent:
    """Thermal-paste degradation in the bath ("the thermal paste between
    FPGA chips and heat-sinks is washed out during long-term maintenance").

    ``resistance_multiplier`` > 1 scales the interface resistance.
    """
    if not math.isfinite(resistance_multiplier) or resistance_multiplier < 1.0:
        raise ValueError("washout multiplier must be finite and >= 1")
    if resistance_multiplier > MAX_TIM_MULTIPLIER:
        raise ValueError(
            f"washout multiplier {resistance_multiplier:g} exceeds the credible "
            f"maximum {MAX_TIM_MULTIPLIER:g}"
        )
    return FailureEvent(
        kind="tim_washout",
        time_s=time_s,
        target=fpga_site,
        magnitude=resistance_multiplier,
        description=f"TIM at {fpga_site} degraded to {resistance_multiplier:.1f}x resistance",
    )


def power_step_event(
    time_s: float, workload_fraction: float, target: str = "compute"
) -> FailureEvent:
    """The computational load steps to a fraction of its commanded level.

    Not a failure but the same grammar: training workloads (warmup,
    optimizer steps, all-reduce dips) are piecewise-constant power levels,
    and rendering them as timed events lets every simulator and the
    batched open-loop core run them unchanged. The fraction multiplies
    the commanded FPGA/GPU utilization; the *latest* due event wins (a
    step function, unlike the cumulative min/max folds of the failure
    kinds), and the fraction before the first event is 1.
    """
    if not math.isfinite(workload_fraction) or not 0.0 <= workload_fraction <= 1.0:
        raise ValueError("workload fraction must be finite and within [0, 1]")
    return FailureEvent(
        kind="power_step",
        time_s=time_s,
        target=target,
        magnitude=workload_fraction,
        description=f"workload on {target} steps to {workload_fraction:.0%} power",
    )


def sensor_fault_event(
    time_s: float, sensor_name: str, offset_c: float, description: Optional[str] = None
) -> FailureEvent:
    """A temperature sensor develops a constant offset (stuck/biased)."""
    if not math.isfinite(offset_c):
        raise ValueError("sensor offset must be finite")
    if abs(offset_c) > MAX_SENSOR_OFFSET_C:
        raise ValueError(
            f"sensor offset {offset_c:g} C exceeds the credible magnitude "
            f"{MAX_SENSOR_OFFSET_C:g} C"
        )
    return FailureEvent(
        kind="sensor_fault",
        time_s=time_s,
        target=sensor_name,
        magnitude=offset_c,
        description=description or f"sensor {sensor_name} biased by {offset_c:+.1f} C",
    )


__all__ = [
    "FailureEvent",
    "MAX_LEAK_RATE_M3_S",
    "MAX_SENSOR_OFFSET_C",
    "MAX_TIM_MULTIPLIER",
    "leak_event",
    "loop_blockage_event",
    "power_step_event",
    "pump_stop_event",
    "sensor_fault_event",
    "tim_washout_drift",
]
