"""Reliability substrate.

The paper's case for immersion cooling is ultimately a reliability case:
high junction temperatures "have a negative influence on [FPGA] reliability
when the workload on the chips reaches up to 85-95 % of the available
hardware resource" (Section 1), closed-loop leaks "can be fatal for both
separate electronic components and the whole computer system" (Section 2),
and the SKAT+ redesign argues "a considerable reliability increase of the
CM due to a reduction of the number of components" (Section 4). This
package quantifies all three arguments.

- :mod:`repro.reliability.arrhenius` — temperature-accelerated failure
  rates and MTBF.
- :mod:`repro.reliability.availability` — series/parallel reliability block
  diagrams for cooling-system architectures.
- :mod:`repro.reliability.failures` — failure-injection event definitions
  for the transient simulator.
"""

from repro.reliability.arrhenius import (
    acceleration_factor,
    arrhenius_failure_rate,
    mtbf_hours,
    mtbf_ratio,
)
from repro.reliability.availability import (
    Component,
    SystemReliability,
    parallel_availability,
    series_availability,
)
from repro.reliability.montecarlo import (
    AvailabilitySimulator,
    McComponent,
    McResult,
    coldplate_cm_model,
    immersion_cm_model,
)
from repro.reliability.failures import (
    FailureEvent,
    leak_event,
    loop_blockage_event,
    pump_stop_event,
    sensor_fault_event,
    tim_washout_drift,
)

__all__ = [
    "AvailabilitySimulator",
    "Component",
    "FailureEvent",
    "McComponent",
    "McResult",
    "SystemReliability",
    "acceleration_factor",
    "arrhenius_failure_rate",
    "coldplate_cm_model",
    "immersion_cm_model",
    "leak_event",
    "loop_blockage_event",
    "mtbf_hours",
    "mtbf_ratio",
    "parallel_availability",
    "pump_stop_event",
    "sensor_fault_event",
    "series_availability",
    "tim_washout_drift",
]
