"""Arrhenius temperature acceleration of semiconductor failure rates.

The standard JEDEC model: the failure rate scales as
``exp(-Ea / (k_B T))`` with absolute junction temperature, so every
additional degree of overheat shortens life exponentially. This is the
quantitative content of the paper's reliability argument for keeping FPGAs
at 55 C instead of 73+ C.
"""

from __future__ import annotations

import math

from repro.fluids.properties import CELSIUS_TO_KELVIN

#: Boltzmann constant, eV/K.
BOLTZMANN_EV_K = 8.617333262e-5
#: Typical activation energy for silicon wear-out mechanisms, eV.
DEFAULT_ACTIVATION_ENERGY_EV = 0.7


def acceleration_factor(
    t_use_c: float,
    t_stress_c: float,
    activation_energy_ev: float = DEFAULT_ACTIVATION_ENERGY_EV,
) -> float:
    """JEDEC acceleration factor between two junction temperatures.

    Values above 1 mean the stress temperature fails faster than the use
    temperature. With the default 0.7 eV, the 55 C (SKAT) vs 72.9 C
    (Taygeta) comparison yields roughly a 3.5x life advantage for
    immersion.
    """
    if activation_energy_ev <= 0:
        raise ValueError("activation energy must be positive")
    t_use_k = t_use_c + CELSIUS_TO_KELVIN
    t_stress_k = t_stress_c + CELSIUS_TO_KELVIN
    if t_use_k <= 0 or t_stress_k <= 0:
        raise ValueError("temperatures must be above absolute zero")
    return math.exp(
        (activation_energy_ev / BOLTZMANN_EV_K) * (1.0 / t_use_k - 1.0 / t_stress_k)
    )


def arrhenius_failure_rate(
    base_rate_per_hour: float,
    base_temperature_c: float,
    junction_c: float,
    activation_energy_ev: float = DEFAULT_ACTIVATION_ENERGY_EV,
) -> float:
    """Failure rate at a junction temperature, scaled from a base rating.

    Parameters
    ----------
    base_rate_per_hour:
        Rated failure rate at ``base_temperature_c`` (e.g. from FIT data:
        100 FIT = 1e-7 per hour).
    base_temperature_c:
        Temperature of the base rating.
    junction_c:
        Actual junction temperature.
    """
    if base_rate_per_hour < 0:
        raise ValueError("base failure rate must be non-negative")
    return base_rate_per_hour * acceleration_factor(
        base_temperature_c, junction_c, activation_energy_ev
    )


def mtbf_hours(failure_rate_per_hour: float) -> float:
    """Mean time between failures for an exponential failure law."""
    if failure_rate_per_hour <= 0:
        raise ValueError("failure rate must be positive for a finite MTBF")
    return 1.0 / failure_rate_per_hour


def mtbf_ratio(
    junction_a_c: float,
    junction_b_c: float,
    activation_energy_ev: float = DEFAULT_ACTIVATION_ENERGY_EV,
) -> float:
    """MTBF(a) / MTBF(b) for two junction temperatures of the same part.

    Convenience for the benchmark tables: the lifetime multiple that the
    immersion system's cooler junctions buy.
    """
    return acceleration_factor(junction_a_c, junction_b_c, activation_energy_ev)


__all__ = [
    "BOLTZMANN_EV_K",
    "DEFAULT_ACTIVATION_ENERGY_EV",
    "acceleration_factor",
    "arrhenius_failure_rate",
    "mtbf_hours",
    "mtbf_ratio",
]
