"""Monte Carlo availability simulation.

The analytic reliability block diagrams in
:mod:`repro.reliability.availability` assume steady state and independent
repairs. This module validates and extends them by direct simulation:
exponential failure and repair processes per component, a limited repair
crew, and (the immersion-vs-closed-loop differentiator the paper stresses)
*maintenance stoppages* — closed-loop systems must be "stopped, and the
power supply system ... tested and dried up" after a leak, which the model
charges as extra downtime on leak-class failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.reliability.availability import Component


@dataclass(frozen=True)
class McComponent:
    """A component in the Monte Carlo model.

    Parameters
    ----------
    component:
        The analytic component (rates, repair time, count).
    stoppage_hours:
        Extra whole-system downtime charged when this component fails
        (the "complex maintenance stoppages" of leak-class failures);
        0 for failures repaired without draining the machine.
    """

    component: Component
    stoppage_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.stoppage_hours < 0:
            raise ValueError("stoppage hours must be non-negative")


@dataclass(frozen=True)
class McResult:
    """Aggregate of a Monte Carlo availability run."""

    years_simulated: float
    availability: float
    failures: int
    downtime_hours: float
    downtime_hours_per_year: float
    mtbf_hours: Optional[float]


@dataclass
class AvailabilitySimulator:
    """Event-driven availability simulation of a series system.

    Every instance of every component fails independently with its
    exponential law; any failure takes the system down for the component's
    repair time plus its stoppage charge. Repairs of overlapping failures
    are serialized (one crew), which is the pessimistic-but-realistic
    assumption for a machine room.
    """

    components: List[McComponent]
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("need at least one component")
        self._rng = np.random.default_rng(self.seed)

    def run(self, years: float = 10.0) -> McResult:
        """Simulate ``years`` of operation; returns the aggregate."""
        if years <= 0:
            raise ValueError("years must be positive")
        horizon_h = years * 8760.0

        # Draw every failure epoch for every instance up front.
        events = []  # (time_h, repair_h)
        for mc in self.components:
            comp = mc.component
            rate = comp.failure_rate_per_hour
            if rate <= 0:
                continue
            for _ in range(comp.count):
                t = 0.0
                while True:
                    t += float(self._rng.exponential(1.0 / rate))
                    if t >= horizon_h:
                        break
                    events.append((t, comp.repair_hours + mc.stoppage_hours))
        events.sort()

        downtime = 0.0
        crew_free_at = 0.0
        failures = 0
        for time_h, repair_h in events:
            failures += 1
            start = max(time_h, crew_free_at)
            end = start + repair_h
            # System is down from the failure until its repair completes.
            downtime += end - time_h
            crew_free_at = end
        downtime = min(downtime, horizon_h)

        availability = 1.0 - downtime / horizon_h
        return McResult(
            years_simulated=years,
            availability=availability,
            failures=failures,
            downtime_hours=downtime,
            downtime_hours_per_year=downtime / years,
            mtbf_hours=(horizon_h / failures) if failures else None,
        )


def immersion_cm_model() -> AvailabilitySimulator:
    """The SKAT-class CM: pump, exchanger, four hose connections; no
    leak-class stoppages (the bath is the containment)."""
    return AvailabilitySimulator(
        components=[
            McComponent(Component("pump", 2.0e-5, 8.0)),
            McComponent(Component("plate HX", 1.0e-6, 24.0)),
            McComponent(Component("hose connection", 5.0e-7, 4.0, count=4)),
            McComponent(Component("level/temp sensors", 1.0e-6, 2.0, count=4)),
        ],
        seed=42,
    )


def coldplate_cm_model() -> AvailabilitySimulator:
    """The per-chip cold-plate CM: hundreds of pressure-tight connections,
    each leak forcing a dry-out stoppage (Section 2's failure story)."""
    return AvailabilitySimulator(
        components=[
            McComponent(Component("pump", 2.0e-5, 8.0)),
            McComponent(Component("plate HX", 1.0e-6, 24.0)),
            McComponent(
                Component("hose connection", 5.0e-7, 4.0, count=242),
                stoppage_hours=48.0,  # stop, test, dry the power system
            ),
            McComponent(Component("leak/humidity sensors", 2.0e-6, 2.0, count=13)),
        ],
        seed=42,
    )


__all__ = [
    "AvailabilitySimulator",
    "McComponent",
    "McResult",
    "coldplate_cm_model",
    "immersion_cm_model",
]
