"""Reliability block diagrams for cooling-system architectures.

Used to quantify the paper's architecture comparisons:

- closed-loop cold plates need "a rather complex piping system and a large
  number of pressure-tight connections" plus leak/humidity sensors — every
  connection is a series element;
- the SKAT open bath has "simple design ... simplicity of manifolds and
  liquid connectors ... high reliability";
- SKAT+ replaces the external pump with immersed pumps, "a considerable
  reliability increase of the CM due to a reduction of the number of
  components".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass(frozen=True)
class Component:
    """A repairable component with an exponential failure law.

    Parameters
    ----------
    name:
        Component label.
    failure_rate_per_hour:
        Constant hazard rate.
    repair_hours:
        Mean time to repair, hours.
    count:
        Number of identical instances in series (e.g. 24 hose connections).
    """

    name: str
    failure_rate_per_hour: float
    repair_hours: float
    count: int = 1

    def __post_init__(self) -> None:
        if self.failure_rate_per_hour < 0:
            raise ValueError("failure rate must be non-negative")
        if self.repair_hours <= 0:
            raise ValueError("repair time must be positive")
        if self.count < 1:
            raise ValueError("count must be at least 1")

    @property
    def availability(self) -> float:
        """Steady-state availability of one instance, MTBF/(MTBF+MTTR)."""
        if self.failure_rate_per_hour == 0:
            return 1.0
        mtbf = 1.0 / self.failure_rate_per_hour
        return mtbf / (mtbf + self.repair_hours)

    @property
    def series_availability(self) -> float:
        """Availability of all ``count`` instances in series."""
        return self.availability ** self.count

    @property
    def total_failure_rate_per_hour(self) -> float:
        """Combined hazard of all instances (series system)."""
        return self.failure_rate_per_hour * self.count


def series_availability(availabilities: Sequence[float]) -> float:
    """Availability of components in series (all must work)."""
    _check(availabilities)
    result = 1.0
    for a in availabilities:
        result *= a
    return result


def parallel_availability(availabilities: Sequence[float]) -> float:
    """Availability of redundant components (any one suffices)."""
    _check(availabilities)
    unavailable = 1.0
    for a in availabilities:
        unavailable *= 1.0 - a
    return 1.0 - unavailable


def _check(availabilities: Sequence[float]) -> None:
    if not availabilities:
        raise ValueError("need at least one availability")
    if any(not 0.0 <= a <= 1.0 for a in availabilities):
        raise ValueError("availabilities must be within [0, 1]")


@dataclass
class SystemReliability:
    """A flat series system of components with optional redundant groups.

    Sufficient for the CM-level comparisons: the architectures differ in
    *which* components exist and *how many*, not in deep RBD structure.
    """

    name: str
    _series: List[Component] = field(default_factory=list)
    _redundant_groups: List[List[Component]] = field(default_factory=list)

    def add(self, component: Component) -> None:
        """Add a series (single-point-of-failure) component."""
        self._series.append(component)

    def add_redundant(self, components: List[Component]) -> None:
        """Add a group where any one surviving member keeps the system up."""
        if len(components) < 2:
            raise ValueError("a redundant group needs at least 2 members")
        self._redundant_groups.append(list(components))

    @property
    def components(self) -> List[Component]:
        """Every component, series and redundant alike."""
        out = list(self._series)
        for group in self._redundant_groups:
            out.extend(group)
        return out

    @property
    def component_count(self) -> int:
        """Total part count (instances), the paper's simplicity metric."""
        return sum(c.count for c in self._series) + sum(
            c.count for group in self._redundant_groups for c in group
        )

    def availability(self) -> float:
        """Steady-state system availability."""
        if not self._series and not self._redundant_groups:
            raise ValueError(f"{self.name}: empty system")
        parts = [c.series_availability for c in self._series]
        for group in self._redundant_groups:
            parts.append(parallel_availability([c.series_availability for c in group]))
        return series_availability(parts)

    def series_failure_rate_per_hour(self) -> float:
        """Combined hazard of the single-point-of-failure components."""
        return sum(c.total_failure_rate_per_hour for c in self._series)

    def mtbf_hours(self) -> float:
        """System MTBF counting only single-point-of-failure components
        (redundant groups contribute negligibly at these rates)."""
        rate = self.series_failure_rate_per_hour()
        if rate <= 0:
            raise ValueError(f"{self.name}: no failing components")
        return 1.0 / rate

    def expected_downtime_hours_per_year(self) -> float:
        """Expected annual downtime, hours."""
        return (1.0 - self.availability()) * 8760.0


__all__ = [
    "Component",
    "SystemReliability",
    "parallel_availability",
    "series_availability",
]
