"""Generation-over-generation scaling trends of the RCS line.

Section 5 closes with the growth claim: "FPGAs, as principal components of
reconfigurable supercomputers, provide a stable, practically linear growth
of the RCS performance". This module fits the catalog's trajectory and
tests that claim quantitatively: per-chip performance vs year, specific
performance (GFlops/W) vs year, and the machine-generation multiples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.devices.families import FpgaFamily, family_roadmap
from repro.performance.flops import peak_gflops


@dataclass(frozen=True)
class TrendFit:
    """An exponential growth fit ``y = a exp(b (year - year0))``."""

    year0: int
    a: float
    b: float
    r_squared: float

    @property
    def doubling_time_years(self) -> float:
        """Years per doubling along the fitted trend."""
        if self.b <= 0:
            return math.inf
        return math.log(2.0) / self.b

    def predict(self, year: int) -> float:
        """Trend value at a year."""
        return self.a * math.exp(self.b * (year - self.year0))


def _fit_exponential(points: List[Tuple[int, float]]) -> TrendFit:
    if len(points) < 2:
        raise ValueError("need at least two points to fit a trend")
    years = np.asarray([p[0] for p in points], dtype=float)
    values = np.asarray([p[1] for p in points], dtype=float)
    if np.any(values <= 0):
        raise ValueError("trend values must be positive")
    year0 = int(years[0])
    x = years - year0
    y = np.log(values)
    b, log_a = np.polyfit(x, y, 1)
    predicted = log_a + b * x
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return TrendFit(year0=year0, a=float(np.exp(log_a)), b=float(b), r_squared=r2)


def performance_trend(families: List[FpgaFamily] = None) -> TrendFit:
    """Per-chip peak performance vs introduction year."""
    families = families or family_roadmap()
    return _fit_exponential([(f.year, peak_gflops(f)) for f in families])


def efficiency_trend(families: List[FpgaFamily] = None) -> TrendFit:
    """Specific performance (GFlops/W) vs introduction year."""
    families = families or family_roadmap()
    return _fit_exponential(
        [(f.year, peak_gflops(f) / f.operating_power_w) for f in families]
    )


def power_trend(families: List[FpgaFamily] = None) -> TrendFit:
    """Per-chip operating power vs introduction year — the curve that
    killed air cooling."""
    families = families or family_roadmap()
    return _fit_exponential([(f.year, f.operating_power_w) for f in families])


def stable_growth_check(families: List[FpgaFamily] = None) -> dict:
    """The Section 5 claim, quantified.

    "Practically linear growth" on a log axis means a steady exponential:
    we report the per-chip performance doubling time, the fit quality, and
    whether every generation actually improved (monotone growth).
    """
    families = families or family_roadmap()
    perf = performance_trend(families)
    values = [peak_gflops(f) for f in families]
    monotone = all(a < b for a, b in zip(values, values[1:]))
    return {
        "doubling_time_years": perf.doubling_time_years,
        "r_squared": perf.r_squared,
        "monotone_growth": monotone,
        "per_generation_multiples": [
            round(b / a, 2) for a, b in zip(values, values[1:])
        ],
    }


__all__ = [
    "TrendFit",
    "efficiency_trend",
    "performance_trend",
    "power_trend",
    "stable_growth_check",
]
