"""Information-graph workloads mapped onto FPGA computational fields.

The paper's framing: an RCS adapts its architecture to "the information
graph of the task", creating a special-purpose pipeline in hardware. We
model a task as a directed acyclic graph of arithmetic operations; mapping
it onto a field of FPGAs yields the hardware utilization (which drives the
power model) and the pipeline throughput (which drives the performance
numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.devices.families import FpgaFamily

#: Logic cells consumed by one hardware operation of each kind — nominal
#: synthesis costs for single-precision pipelines.
OPERATION_COSTS_CELLS: Dict[str, int] = {
    "add": 550,
    "sub": 550,
    "mul": 700,
    "div": 2600,
    "sqrt": 2800,
    "cmp": 250,
    "mac": 1100,
}


class MappingError(ValueError):
    """Raised when a task graph cannot be mapped to the given field."""


@dataclass(frozen=True)
class Operation:
    """One node of an information graph.

    Parameters
    ----------
    name:
        Unique node name.
    kind:
        Operation kind; must be a key of :data:`OPERATION_COSTS_CELLS`.
    inputs:
        Names of predecessor operations (empty for graph inputs).
    """

    name: str
    kind: str
    inputs: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise MappingError("operation name must be non-empty")
        if self.kind not in OPERATION_COSTS_CELLS:
            raise MappingError(
                f"unknown operation kind {self.kind!r}; known: "
                + ", ".join(sorted(OPERATION_COSTS_CELLS))
            )

    @property
    def cost_cells(self) -> int:
        """Logic cells this operation consumes when hardwired."""
        return OPERATION_COSTS_CELLS[self.kind]


@dataclass
class InformationGraph:
    """A DAG of operations — the paper's "information graph of the task"."""

    name: str
    _operations: Dict[str, Operation] = field(default_factory=dict)

    def add(self, operation: Operation) -> None:
        """Add an operation; inputs must already exist (DAG by construction)."""
        if operation.name in self._operations:
            raise MappingError(f"duplicate operation {operation.name!r}")
        for dep in operation.inputs:
            if dep not in self._operations:
                raise MappingError(
                    f"operation {operation.name!r} depends on unknown {dep!r}"
                )
        self._operations[operation.name] = operation

    def add_chain(self, prefix: str, kinds: Sequence[str], fan_in: str = None) -> str:
        """Convenience: append a linear chain of operations, returning the
        final node name. ``fan_in`` optionally feeds the first node."""
        previous = fan_in
        name = prefix
        for i, kind in enumerate(kinds):
            name = f"{prefix}_{i}"
            inputs = (previous,) if previous else ()
            self.add(Operation(name=name, kind=kind, inputs=inputs))
            previous = name
        return name

    @property
    def operations(self) -> List[Operation]:
        """All operations in insertion order."""
        return list(self._operations.values())

    def __len__(self) -> int:
        return len(self._operations)

    @property
    def total_cost_cells(self) -> int:
        """Logic cells the full hardwired pipeline needs."""
        return sum(op.cost_cells for op in self._operations.values())

    def depth(self) -> int:
        """Longest dependency chain (pipeline latency in stages)."""
        memo: Dict[str, int] = {}

        def depth_of(name: str) -> int:
            if name not in memo:
                op = self._operations[name]
                memo[name] = 1 + max((depth_of(d) for d in op.inputs), default=0)
            return memo[name]

        return max((depth_of(name) for name in self._operations), default=0)


@dataclass(frozen=True)
class Mapping:
    """Result of mapping an information graph onto an FPGA field."""

    graph_name: str
    n_fpgas_used: int
    replicas: int
    utilization: float
    clock_mhz: float
    throughput_gflops: float
    pipeline_depth: int

    @property
    def latency_us(self) -> float:
        """Pipeline fill latency, microseconds."""
        return self.pipeline_depth / self.clock_mhz


def map_graph_to_field(
    graph: InformationGraph,
    family: FpgaFamily,
    n_fpgas: int,
    target_utilization: float = 0.9,
    clock_derate: float = 1.0,
) -> Mapping:
    """Map an information graph onto a field of identical FPGAs.

    The RCS style of execution: the graph is hardwired as one pipeline and
    replicated until the field reaches the target utilization ("combining
    the creation of a special-purpose computer device with a wide range of
    solvable tasks"). Every operation then completes once per clock, so
    throughput is ``replicas x ops x clock``.

    Raises
    ------
    MappingError
        If even a single pipeline copy does not fit the field at the target
        utilization.
    """
    if len(graph) == 0:
        raise MappingError(f"graph {graph.name!r} is empty")
    if n_fpgas < 1:
        raise MappingError("field needs at least one FPGA")
    if not 0.0 < target_utilization <= 1.0:
        raise MappingError("target utilization must be in (0, 1]")
    if not 0.0 < clock_derate <= 1.0:
        raise MappingError("clock derate must be in (0, 1]")

    budget_cells = int(family.logic_cells * n_fpgas * target_utilization)
    pipeline_cells = graph.total_cost_cells
    if pipeline_cells > budget_cells:
        raise MappingError(
            f"graph {graph.name!r} needs {pipeline_cells} cells; field offers "
            f"{budget_cells} at {target_utilization:.0%} utilization"
        )
    replicas = budget_cells // pipeline_cells
    used_cells = replicas * pipeline_cells
    utilization = used_cells / (family.logic_cells * n_fpgas)
    clock = family.nominal_clock_mhz * clock_derate
    ops_per_cycle = replicas * len(graph)
    throughput_gflops = ops_per_cycle * clock * 1.0e6 / 1.0e9
    return Mapping(
        graph_name=graph.name,
        n_fpgas_used=n_fpgas,
        replicas=replicas,
        utilization=utilization,
        clock_mhz=clock,
        throughput_gflops=throughput_gflops,
        pipeline_depth=graph.depth(),
    )


__all__ = [
    "InformationGraph",
    "Mapping",
    "MappingError",
    "OPERATION_COSTS_CELLS",
    "Operation",
    "map_graph_to_field",
]
