"""RCS performance model.

Reconfigurable computer systems derive performance from the FPGA field's
logic capacity and pipeline clock: "an RCS provides adaptation of its
architecture to the structure of any task ... a special-purpose computer
device is created [that] hardwarily implements all the computational
operations of the information graph of the task with the minimum delays"
(Section 1). This package turns that into numbers:

- :mod:`repro.performance.flops` — peak/sustained performance, specific
  performance (per watt, per litre), calibrated so the SKAT/Taygeta ratio
  reproduces the paper's 8.7x.
- :mod:`repro.performance.tasks` — information-graph workloads mapped onto
  FPGA fields as hardware pipelines.
"""

from repro.performance.flops import (
    FLOPS_PER_LOGIC_CELL_PER_CYCLE,
    peak_gflops,
    performance_per_litre,
    performance_per_watt,
    sustained_gflops,
)
from repro.performance.kernels import (
    fft_butterfly_stage,
    fir_filter,
    kernel_suite,
    matrix_tile,
    md_force_pipeline,
    spin_glass_update,
)
from repro.performance.scaling import (
    efficiency_trend,
    performance_trend,
    power_trend,
    stable_growth_check,
)
from repro.performance.tasks import (
    InformationGraph,
    Mapping,
    MappingError,
    Operation,
    map_graph_to_field,
)

__all__ = [
    "FLOPS_PER_LOGIC_CELL_PER_CYCLE",
    "InformationGraph",
    "Mapping",
    "MappingError",
    "Operation",
    "fft_butterfly_stage",
    "fir_filter",
    "kernel_suite",
    "map_graph_to_field",
    "matrix_tile",
    "md_force_pipeline",
    "peak_gflops",
    "performance_trend",
    "power_trend",
    "efficiency_trend",
    "stable_growth_check",
    "spin_glass_update",
    "performance_per_litre",
    "performance_per_watt",
    "sustained_gflops",
]
