"""A library of canonical RCS workloads as information graphs.

The paper motivates RCS with "computationally laborious tasks from various
domains of science and technique", and its references name the classic
FPGA-field applications: spin-glass Monte Carlo (the JANUS machines),
molecular dynamics (Anton), signal processing. Each builder below returns
an :class:`~repro.performance.tasks.InformationGraph` shaped like the
inner loop of one such application, ready to map onto a machine's FPGA
field.
"""

from __future__ import annotations

from repro.performance.tasks import InformationGraph, Operation


def fir_filter(taps: int = 16) -> InformationGraph:
    """A direct-form FIR filter: ``taps`` multipliers into an adder tree.

    The bread-and-butter DSP pipeline of reconfigurable computing.
    """
    if taps < 2:
        raise ValueError("an FIR filter needs at least 2 taps")
    graph = InformationGraph(f"fir{taps}")
    for i in range(taps):
        graph.add(Operation(f"mul{i}", "mul"))
    # Balanced adder tree.
    level = [f"mul{i}" for i in range(taps)]
    stage = 0
    while len(level) > 1:
        next_level = []
        for j in range(0, len(level) - 1, 2):
            name = f"add{stage}_{j // 2}"
            graph.add(Operation(name, "add", inputs=(level[j], level[j + 1])))
            next_level.append(name)
        if len(level) % 2 == 1:
            next_level.append(level[-1])
        level = next_level
        stage += 1
    return graph


def fft_butterfly_stage(butterflies: int = 8) -> InformationGraph:
    """One radix-2 FFT stage: complex multiply + add/sub per butterfly."""
    if butterflies < 1:
        raise ValueError("need at least one butterfly")
    graph = InformationGraph(f"fft_stage{butterflies}")
    for b in range(butterflies):
        # Complex twiddle multiply: 4 real muls, 2 adds.
        for i in range(4):
            graph.add(Operation(f"b{b}_tm{i}", "mul"))
        graph.add(Operation(f"b{b}_tr", "sub", inputs=(f"b{b}_tm0", f"b{b}_tm1")))
        graph.add(Operation(f"b{b}_ti", "add", inputs=(f"b{b}_tm2", f"b{b}_tm3")))
        # Butterfly add/sub on both components.
        graph.add(Operation(f"b{b}_or", "add", inputs=(f"b{b}_tr",)))
        graph.add(Operation(f"b{b}_oi", "add", inputs=(f"b{b}_ti",)))
        graph.add(Operation(f"b{b}_xr", "sub", inputs=(f"b{b}_tr",)))
        graph.add(Operation(f"b{b}_xi", "sub", inputs=(f"b{b}_ti",)))
    return graph


def matrix_tile(size: int = 4) -> InformationGraph:
    """A ``size x size`` matrix-multiply tile: one MAC per element pair.

    Dense linear algebra as an RCS pipeline: ``size^2`` dot-product lanes
    of ``size`` MACs each.
    """
    if size < 2:
        raise ValueError("tile size must be at least 2")
    graph = InformationGraph(f"gemm{size}x{size}")
    for r in range(size):
        for c in range(size):
            previous = None
            for k in range(size):
                name = f"mac_{r}_{c}_{k}"
                inputs = (previous,) if previous else ()
                graph.add(Operation(name, "mac", inputs=inputs))
                previous = name
    return graph


def md_force_pipeline(pairs: int = 4) -> InformationGraph:
    """A Lennard-Jones pair-force pipeline (the Anton workload family).

    Per pair: squared distance (3 muls + 2 adds), inverse powers (div +
    muls), force scale and accumulation.
    """
    if pairs < 1:
        raise ValueError("need at least one pair lane")
    graph = InformationGraph(f"md_forces{pairs}")
    for p in range(pairs):
        for axis in "xyz":
            graph.add(Operation(f"p{p}_d{axis}2", "mul"))
        graph.add(
            Operation(f"p{p}_r2a", "add", inputs=(f"p{p}_dx2", f"p{p}_dy2"))
        )
        graph.add(Operation(f"p{p}_r2", "add", inputs=(f"p{p}_r2a", f"p{p}_dz2")))
        graph.add(Operation(f"p{p}_inv", "div", inputs=(f"p{p}_r2",)))
        graph.add(Operation(f"p{p}_inv3", "mul", inputs=(f"p{p}_inv",)))
        graph.add(Operation(f"p{p}_inv6", "mul", inputs=(f"p{p}_inv3",)))
        graph.add(Operation(f"p{p}_scale", "sub", inputs=(f"p{p}_inv6", f"p{p}_inv3")))
        graph.add(Operation(f"p{p}_force", "mul", inputs=(f"p{p}_scale",)))
        graph.add(Operation(f"p{p}_acc", "add", inputs=(f"p{p}_force",)))
    return graph


def spin_glass_update(spins: int = 8) -> InformationGraph:
    """An Edwards-Anderson spin-flip update lane (the JANUS workload).

    Per spin: neighbour couplings (6 MACs on a 3D lattice), local field
    compare, flip decision.
    """
    if spins < 1:
        raise ValueError("need at least one spin lane")
    graph = InformationGraph(f"spin_glass{spins}")
    for s in range(spins):
        previous = None
        for n in range(6):
            name = f"s{s}_j{n}"
            inputs = (previous,) if previous else ()
            graph.add(Operation(name, "mac", inputs=inputs))
            previous = name
        graph.add(Operation(f"s{s}_cmp", "cmp", inputs=(previous,)))
    return graph


def kernel_suite() -> dict:
    """All kernels at default sizes, keyed by name."""
    kernels = [
        fir_filter(),
        fft_butterfly_stage(),
        matrix_tile(),
        md_force_pipeline(),
        spin_glass_update(),
    ]
    return {k.name: k for k in kernels}


__all__ = [
    "fft_butterfly_stage",
    "fir_filter",
    "kernel_suite",
    "matrix_tile",
    "md_force_pipeline",
    "spin_glass_update",
]
