"""Peak and specific performance of FPGA computational fields.

The model: an RCS pipeline synthesized on an FPGA delivers floating-point
operations proportional to (logic capacity) x (pipeline clock). The
proportionality constant is calibrated once so the catalog reproduces the
paper's machine-level ratio — SKAT is "increased in 8.7 times in comparison
with the Taygeta CM" with 3x the chips, i.e. ~2.9x per chip — and the
rack-level ">1 PFlops" claim then follows from the same constant.
"""

from __future__ import annotations

from typing import Optional

from repro.devices.families import FpgaFamily

#: Sustained floating-point operations per logic cell per clock cycle for a
#: well-pipelined RCS computational circuit. Calibrated so a fully utilized
#: Kintex UltraScale XCKU095 at its nominal clock delivers ~0.86 TFlops,
#: which reproduces both the 8.7x SKAT/Taygeta ratio and the >1 PFlops
#: 12-CM rack of the conclusions.
FLOPS_PER_LOGIC_CELL_PER_CYCLE = 1.56e-3


def peak_gflops(family: FpgaFamily, clock_mhz: Optional[float] = None) -> float:
    """Peak performance of one fully utilized FPGA, GFlops."""
    clock = family.nominal_clock_mhz if clock_mhz is None else clock_mhz
    if clock <= 0:
        raise ValueError("clock must be positive")
    flops = FLOPS_PER_LOGIC_CELL_PER_CYCLE * family.logic_cells * clock * 1.0e6
    return flops / 1.0e9


def sustained_gflops(
    family: FpgaFamily, utilization: float, clock_mhz: Optional[float] = None
) -> float:
    """Sustained performance at a hardware utilization, GFlops.

    The paper's machines run at 85-95 % utilization; sustained performance
    scales linearly with the fraction of the field carrying pipelines.
    """
    if not 0.0 <= utilization <= 1.0:
        raise ValueError("utilization must be within [0, 1]")
    return peak_gflops(family, clock_mhz) * utilization


def performance_per_watt(gflops: float, power_w: float) -> float:
    """Specific performance, GFlops/W — the paper's energy-efficiency axis."""
    if power_w <= 0:
        raise ValueError("power must be positive")
    if gflops < 0:
        raise ValueError("performance must be non-negative")
    return gflops / power_w


def performance_per_litre(gflops: float, volume_litre: float) -> float:
    """Packing-density performance, GFlops/L — the paper's "more than
    triple increasing of the system packing density" axis."""
    if volume_litre <= 0:
        raise ValueError("volume must be positive")
    if gflops < 0:
        raise ValueError("performance must be non-negative")
    return gflops / volume_litre


__all__ = [
    "FLOPS_PER_LOGIC_CELL_PER_CYCLE",
    "peak_gflops",
    "performance_per_litre",
    "performance_per_watt",
    "sustained_gflops",
]
