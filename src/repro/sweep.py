"""Deterministic parallel parameter sweeps.

The cooling studies live on cheap sweeps: regenerate Fig. 5 for a range of
loop counts, scan valve trims, rerun a failure drill across scenarios.
This module runs such sweeps over a thread pool with three guarantees the
ad-hoc loops they replace did not have:

- **deterministic ordering** — results come back in case order, never in
  completion order;
- **chunked dispatch** — cases are grouped into contiguous chunks so tiny
  cases do not drown in executor overhead;
- **isolation by construction** — the helpers build one fresh model object
  per case, so stateful solvers (warm starts, solution caches) are never
  shared across concurrent workers.

Evaluation functions should be pure CPU work; the heavy lifting inside
scipy/numpy releases the GIL often enough for thread-level parallelism to
pay off on the network solves, and threads keep every model object
picklability-free.
"""

from __future__ import annotations

import itertools
import os
import traceback as _traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import get_registry

#: Ceiling on the default worker count (sweeps are short; oversubscribing
#: a laptop-class host buys nothing).
_DEFAULT_MAX_WORKERS = 8


@dataclass(frozen=True)
class SweepCase:
    """One point of a parameter sweep."""

    name: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("sweep case name must be non-empty")


@dataclass(frozen=True)
class SweepOutcome:
    """The result of evaluating one sweep case.

    ``value`` holds the evaluation result; ``error`` the repr of the
    exception when the case failed and errors are being captured, with
    ``error_traceback`` carrying the full formatted traceback for
    diagnosis (see :func:`summarize_failures`).
    """

    case: SweepCase
    index: int
    value: Any = None
    error: Optional[str] = None
    error_traceback: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the case evaluated without error."""
        return self.error is None


def sweep_cases(**axes: Sequence[Any]) -> List[SweepCase]:
    """Build the cartesian product of named parameter axes.

    ``sweep_cases(n_loops=[4, 6], opening=[0.5, 1.0])`` yields four cases
    named ``"n_loops=4,opening=0.5"`` etc., in row-major (first axis
    slowest) order.
    """
    if not axes:
        raise ValueError("at least one axis required")
    names = list(axes)
    cases = []
    for values in itertools.product(*(axes[name] for name in names)):
        params = dict(zip(names, values))
        label = ",".join(f"{k}={v}" for k, v in params.items())
        cases.append(SweepCase(name=label, params=params))
    return cases


def _resolve_workers(n_cases: int, max_workers: Optional[int]) -> int:
    if max_workers is not None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        return min(max_workers, n_cases) or 1
    cpus = os.cpu_count() or 1
    return max(1, min(_DEFAULT_MAX_WORKERS, cpus, n_cases))


def _chunks(
    items: List[Tuple[int, SweepCase]], chunk_size: int
) -> List[List[Tuple[int, SweepCase]]]:
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


def run_sweep(
    fn: Callable[[SweepCase], Any],
    cases: Sequence[SweepCase],
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    on_error: str = "raise",
) -> List[SweepOutcome]:
    """Evaluate ``fn`` over every case, in parallel, in case order.

    Parameters
    ----------
    fn:
        The evaluation; called with one :class:`SweepCase`. Must not share
        mutable state (stateful solvers, simulators) across cases — build
        fresh objects inside the call.
    cases:
        The sweep points, in the order results are wanted.
    max_workers:
        Thread count (default: min(8, cpu count, len(cases))). ``1`` runs
        serially with no executor at all — bit-identical to a plain loop.
    chunk_size:
        Cases per dispatched task (default: balanced so each worker gets a
        few chunks).
    on_error:
        ``"raise"`` re-raises the first failing case's exception (cases
        are still all evaluated); ``"capture"`` records the error on the
        outcome and keeps going.
    """
    if on_error not in ("raise", "capture"):
        raise ValueError("on_error must be 'raise' or 'capture'")
    cases = list(cases)
    if not cases:
        return []
    obs = get_registry()
    obs.inc("sweep_runs_total")
    obs.inc("sweep_cases_total", len(cases))

    def evaluate(index: int, case: SweepCase) -> SweepOutcome:
        # Each case is timed as a span (grouped per worker thread, so
        # concurrent workers never interleave traces) and as a hot path.
        try:
            with obs.span("sweep.case", case=case.name), obs.profile("sweep.case"):
                return SweepOutcome(case=case, index=index, value=fn(case))
        except Exception as exc:  # noqa: BLE001 - reported per-case
            obs.inc("sweep_case_errors_total")
            if on_error == "raise":
                raise
            return SweepOutcome(
                case=case,
                index=index,
                error=repr(exc),
                error_traceback=_traceback.format_exc(),
            )

    workers = _resolve_workers(len(cases), max_workers)
    indexed = list(enumerate(cases))
    if workers == 1:
        return [evaluate(i, c) for i, c in indexed]

    if chunk_size is None:
        chunk_size = max(1, -(-len(cases) // (workers * 4)))
    elif chunk_size <= 0:
        raise ValueError("chunk_size must be positive")

    def run_chunk(chunk: List[Tuple[int, SweepCase]]) -> List[SweepOutcome]:
        return [evaluate(i, c) for i, c in chunk]

    with ThreadPoolExecutor(max_workers=workers) as pool:
        chunk_results = list(pool.map(run_chunk, _chunks(indexed, chunk_size)))
    return [outcome for chunk in chunk_results for outcome in chunk]


def summarize_failures(outcomes: Sequence[SweepOutcome]) -> List[Dict[str, Any]]:
    """Condense a sweep's captured failures into diagnosable records.

    A campaign that quietly reports ``ok=False`` for a third of its cases
    is undebuggable; this helper turns each failed outcome into

    ``{"case": name, "params": axes, "kind": exception class,
    "error": repr, "where": innermost traceback frame}``

    where ``where`` is the deepest ``File "...", line N, in fn`` frame of
    the captured traceback — the raise site, not the executor plumbing.
    Outcomes that succeeded are skipped; an all-ok sweep yields ``[]``.
    """
    records: List[Dict[str, Any]] = []
    for outcome in outcomes:
        if outcome.ok:
            continue
        kind = (outcome.error or "").split("(", 1)[0]
        where = ""
        if outcome.error_traceback:
            frames = [
                line.strip()
                for line in outcome.error_traceback.splitlines()
                if line.lstrip().startswith("File \"")
            ]
            where = frames[-1] if frames else ""
        records.append(
            {
                "case": outcome.case.name,
                "params": dict(outcome.case.params),
                "kind": kind,
                "error": outcome.error,
                "where": where,
            }
        )
    return records


def sweep_values(
    fn: Callable[[SweepCase], Any],
    cases: Sequence[SweepCase],
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """:func:`run_sweep` returning just the values (errors re-raised)."""
    return [
        outcome.value
        for outcome in run_sweep(
            fn, cases, max_workers=max_workers, chunk_size=chunk_size
        )
    ]


def sweep_simulations(
    simulator_factory: Callable[[], Any],
    scenarios: Mapping[str, Optional[List[Any]]],
    duration_s: float,
    dt_s: float = 5.0,
    max_workers: Optional[int] = None,
) -> Dict[str, Any]:
    """Run one :class:`~repro.core.simulation.ModuleSimulator` per scenario.

    ``scenarios`` maps scenario name to its failure-event list (None for a
    nominal run). A **fresh simulator** comes from ``simulator_factory``
    for every scenario, so controller latches, PID memory and solver
    caches cannot leak between concurrent cases. Returns
    ``{name: SimulationResult}`` with deterministic (input) ordering.
    """
    names = list(scenarios)
    cases = [
        SweepCase(name=name, params={"events": scenarios[name]}) for name in names
    ]

    def evaluate(case: SweepCase) -> Any:
        simulator = simulator_factory()
        return simulator.run(
            duration_s=duration_s, events=case.params["events"], dt_s=dt_s
        )

    outcomes = run_sweep(evaluate, cases, max_workers=max_workers)
    return {outcome.case.name: outcome.value for outcome in outcomes}


__all__ = [
    "SweepCase",
    "SweepOutcome",
    "run_sweep",
    "summarize_failures",
    "sweep_cases",
    "sweep_simulations",
    "sweep_values",
]
