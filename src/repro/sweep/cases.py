"""Sweep case/outcome types and the per-case evaluation wrapper.

These are the pieces every execution backend shares: the immutable case
description, the outcome record results come back in, and the one
function that turns ``(fn, case)`` into an outcome under observability
instrumentation. They live apart from the runner so the process backend's
worker entrypoint (which must be importable by a fresh interpreter) can
reuse them without pulling in executor machinery.
"""

from __future__ import annotations

import itertools
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SweepCase:
    """One point of a parameter sweep."""

    name: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("sweep case name must be non-empty")


@dataclass(frozen=True)
class SweepOutcome:
    """The result of evaluating one sweep case.

    ``value`` holds the evaluation result; ``error`` the repr of the
    exception when the case failed and errors are being captured, with
    ``error_traceback`` carrying the full formatted traceback for
    diagnosis (see :func:`repro.sweep.runner.summarize_failures`).
    """

    case: SweepCase
    index: int
    value: Any = None
    error: Optional[str] = None
    error_traceback: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the case evaluated without error."""
        return self.error is None


def sweep_cases(**axes: Sequence[Any]) -> List[SweepCase]:
    """Build the cartesian product of named parameter axes.

    ``sweep_cases(n_loops=[4, 6], opening=[0.5, 1.0])`` yields four cases
    named ``"n_loops=4,opening=0.5"`` etc., in row-major (first axis
    slowest) order.
    """
    if not axes:
        raise ValueError("at least one axis required")
    names = list(axes)
    cases = []
    for values in itertools.product(*(axes[name] for name in names)):
        params = dict(zip(names, values))
        label = ",".join(f"{k}={v}" for k, v in params.items())
        cases.append(SweepCase(name=label, params=params))
    return cases


def evaluate_case(
    obs: Any,
    fn: Callable[[SweepCase], Any],
    index: int,
    case: SweepCase,
    reraise: bool,
) -> Tuple[SweepOutcome, Optional[BaseException]]:
    """Evaluate one case under span/profile instrumentation.

    Returns ``(outcome, exception)``; the exception is None on success.
    With ``reraise`` the failure propagates instead (the serial/thread
    ``on_error="raise"`` path); without it the failure is captured on the
    outcome *and* returned, so the process backend can ship the original
    exception object back to the parent for deferred re-raising.
    """
    try:
        with obs.span("sweep.case", case=case.name), obs.profile("sweep.case"):
            return SweepOutcome(case=case, index=index, value=fn(case)), None
    except Exception as exc:  # noqa: BLE001 - reported per-case
        obs.inc("sweep_case_errors_total")
        if reraise:
            raise
        return (
            SweepOutcome(
                case=case,
                index=index,
                error=repr(exc),
                error_traceback=_traceback.format_exc(),
            ),
            exc,
        )


__all__ = ["SweepCase", "SweepOutcome", "evaluate_case", "sweep_cases"]
