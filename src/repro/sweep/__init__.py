"""Deterministic parameter sweeps over pluggable execution backends.

The public surface is unchanged from the original single-module runner —
``from repro.sweep import run_sweep, SweepCase, ...`` keeps working — plus
the backend layer: :func:`run_sweep` takes ``backend="serial" | "thread" |
"process"`` and :mod:`repro.sweep.backends` exposes the implementations.
See ``docs/FACILITY.md`` for the backend-selection and determinism guide,
and ``docs/RESILIENCE.md`` for the fault-tolerant execution harness
(:mod:`repro.sweep.harness`): checkpoint/resume, per-case deadlines with
worker-crash recovery, retry + quarantine, and backend demotion.
"""

from repro.sweep.backends import (
    DEFAULT_MAX_WORKERS,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    get_backend,
)
from repro.sweep.batched import (
    SERIAL_FALLBACK,
    BatchedSweepFn,
    run_sweep_batched,
)
from repro.sweep.harness import (
    CaseDeadlineError,
    CheckpointMismatchError,
    HarnessConfig,
    HarnessError,
    HarnessResult,
    QuarantineRecord,
    WorkerCrashError,
    classify_failure,
    load_quarantine,
    replay_quarantined,
    run_sweep_resilient,
    sweep_digest,
)
from repro.sweep.runner import (
    SweepCase,
    SweepOutcome,
    run_sweep,
    summarize_failures,
    sweep_cases,
    sweep_simulations,
    sweep_values,
)

__all__ = [
    "DEFAULT_MAX_WORKERS",
    "SERIAL_FALLBACK",
    "BatchedSweepFn",
    "CaseDeadlineError",
    "CheckpointMismatchError",
    "HarnessConfig",
    "HarnessError",
    "HarnessResult",
    "ProcessBackend",
    "QuarantineRecord",
    "SerialBackend",
    "SweepCase",
    "SweepOutcome",
    "ThreadBackend",
    "WorkerCrashError",
    "available_backends",
    "classify_failure",
    "get_backend",
    "load_quarantine",
    "replay_quarantined",
    "run_sweep",
    "run_sweep_batched",
    "run_sweep_resilient",
    "summarize_failures",
    "sweep_cases",
    "sweep_digest",
    "sweep_simulations",
    "sweep_values",
]
