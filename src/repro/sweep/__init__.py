"""Deterministic parameter sweeps over pluggable execution backends.

The public surface is unchanged from the original single-module runner —
``from repro.sweep import run_sweep, SweepCase, ...`` keeps working — plus
the backend layer: :func:`run_sweep` takes ``backend="serial" | "thread" |
"process"`` and :mod:`repro.sweep.backends` exposes the implementations.
See ``docs/FACILITY.md`` for the backend-selection and determinism guide.
"""

from repro.sweep.backends import (
    DEFAULT_MAX_WORKERS,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    get_backend,
)
from repro.sweep.batched import (
    SERIAL_FALLBACK,
    BatchedSweepFn,
    run_sweep_batched,
)
from repro.sweep.runner import (
    SweepCase,
    SweepOutcome,
    run_sweep,
    summarize_failures,
    sweep_cases,
    sweep_simulations,
    sweep_values,
)

__all__ = [
    "DEFAULT_MAX_WORKERS",
    "SERIAL_FALLBACK",
    "BatchedSweepFn",
    "ProcessBackend",
    "SerialBackend",
    "SweepCase",
    "SweepOutcome",
    "ThreadBackend",
    "available_backends",
    "get_backend",
    "run_sweep",
    "run_sweep_batched",
    "summarize_failures",
    "sweep_cases",
    "sweep_simulations",
    "sweep_values",
]
