"""Pluggable execution backends for the sweep runner.

Three interchangeable ways to evaluate a case list, all returning
outcomes in case order:

- ``serial`` — a plain loop in the calling thread. The oracle: zero
  scheduling, bit-identical to iterating the cases yourself.
- ``thread`` — the historical default: a chunked
  :class:`~concurrent.futures.ThreadPoolExecutor`. Right for evaluation
  functions whose heavy lifting releases the GIL (scipy/numpy network
  solves) and for model objects that cannot be pickled.
- ``process`` — a sharded :class:`~concurrent.futures.ProcessPoolExecutor`
  for facility-scale sweeps that need real cores. The evaluation function
  and every case's params must be picklable (module-level functions,
  plain-data params). Each worker runs its shard under a **fresh seeded
  metrics registry** and ships the outcome list plus the registry
  snapshot back; the parent merges the snapshots in shard order
  (:meth:`repro.obs.MetricsRegistry.merge_snapshot`), so counter totals,
  gauge values and histograms — and therefore the canonical metric
  exports — are identical to a serial run of the same cases.

Determinism contract, regardless of backend: outcomes come back in case
order, and a sweep whose evaluation is deterministic produces an
identical ``SweepOutcome`` sequence and identical metric exports on all
three backends. The differential suite
(``tests/test_facility_differential.py``) enforces this.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import get_registry
from repro.sweep.cases import SweepCase, SweepOutcome, evaluate_case

#: Ceiling on the default worker count (sweeps are short; oversubscribing
#: a laptop-class host buys nothing).
DEFAULT_MAX_WORKERS = 8

IndexedCase = Tuple[int, SweepCase]


def resolve_workers(n_cases: int, max_workers: Optional[int]) -> int:
    """Worker count for a sweep: explicit, else min(8, cpus, cases)."""
    import os

    if max_workers is not None and max_workers <= 0:
        raise ValueError("max_workers must be positive")
    if n_cases <= 0:
        # Empty sweep: one (idle) worker, regardless of how it was asked
        # for. Explicit — the old `min(max_workers, n_cases) or 1` relied
        # on 0 being falsy, which read as a capping bug.
        return 1
    if max_workers is not None:
        return min(max_workers, n_cases)
    cpus = os.cpu_count() or 1
    return max(1, min(DEFAULT_MAX_WORKERS, cpus, n_cases))


def chunk_items(items: List[IndexedCase], chunk_size: int) -> List[List[IndexedCase]]:
    """Split into contiguous chunks preserving case order."""
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


class SerialBackend:
    """The oracle: evaluate in a plain loop, raising at the failing case."""

    name = "serial"

    def run(
        self,
        fn: Callable[[SweepCase], Any],
        indexed: List[IndexedCase],
        workers: int,
        chunk_size: Optional[int],
        on_error: str,
    ) -> List[SweepOutcome]:
        obs = get_registry()
        reraise = on_error == "raise"
        return [
            evaluate_case(obs, fn, i, case, reraise=reraise)[0]
            for i, case in indexed
        ]


class ThreadBackend:
    """Chunked thread-pool evaluation (shared-memory, GIL-releasing work)."""

    name = "thread"

    def run(
        self,
        fn: Callable[[SweepCase], Any],
        indexed: List[IndexedCase],
        workers: int,
        chunk_size: Optional[int],
        on_error: str,
    ) -> List[SweepOutcome]:
        if workers <= 1:
            # Bit-identical to a plain loop — no executor at all.
            return SerialBackend().run(fn, indexed, workers, chunk_size, on_error)
        if chunk_size is None:
            chunk_size = max(1, -(-len(indexed) // (workers * 4)))
        obs = get_registry()
        reraise = on_error == "raise"

        def run_chunk(chunk: List[IndexedCase]) -> List[SweepOutcome]:
            return [
                evaluate_case(obs, fn, i, case, reraise=reraise)[0]
                for i, case in chunk
            ]

        with ThreadPoolExecutor(max_workers=workers) as pool:
            chunk_results = list(pool.map(run_chunk, chunk_items(indexed, chunk_size)))
        return [outcome for chunk in chunk_results for outcome in chunk]


def _picklable_exception(exc: BaseException) -> BaseException:
    """The exception itself when it pickles, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - any pickling failure downgrades
        return RuntimeError(f"unpicklable sweep-case exception: {exc!r}")


def run_shard(
    payload: Tuple[Callable[[SweepCase], Any], List[IndexedCase]],
) -> Tuple[List[SweepOutcome], Dict[str, Any], Optional[BaseException]]:
    """Worker entrypoint: evaluate one shard under a fresh registry.

    Module-level (importable) so every process start method can pickle
    it. Failures are always captured into the outcomes; the shard's first
    exception also travels back as an object so the parent can honour
    ``on_error="raise"`` with the original exception type.
    """
    from repro.obs import MetricsRegistry, use_registry

    fn, shard = payload
    outcomes: List[SweepOutcome] = []
    first_exc: Optional[BaseException] = None
    with use_registry(MetricsRegistry()) as obs:
        for index, case in shard:
            outcome, exc = evaluate_case(obs, fn, index, case, reraise=False)
            outcomes.append(outcome)
            if exc is not None and first_exc is None:
                first_exc = _picklable_exception(exc)
        snapshot = obs.as_dict()
    return outcomes, snapshot, first_exc


class ProcessBackend:
    """Sharded process-pool evaluation with deterministic metric merge.

    Cases are split into contiguous shards (default: one per worker);
    each shard evaluates in a worker process under a fresh registry. On
    join the parent flattens the outcome lists in shard order (= case
    order) and folds every shard's registry snapshot into the installed
    process registry, also in shard order.
    """

    name = "process"

    def run(
        self,
        fn: Callable[[SweepCase], Any],
        indexed: List[IndexedCase],
        workers: int,
        chunk_size: Optional[int],
        on_error: str,
    ) -> List[SweepOutcome]:
        if chunk_size is None:
            chunk_size = max(1, -(-len(indexed) // workers))
        shards = chunk_items(indexed, chunk_size)
        payloads = [(fn, shard) for shard in shards]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(run_shard, payloads))
        obs = get_registry()
        outcomes: List[SweepOutcome] = []
        first_exc: Optional[BaseException] = None
        for shard_outcomes, snapshot, shard_exc in results:
            outcomes.extend(shard_outcomes)
            obs.merge_snapshot(snapshot)
            if first_exc is None and shard_exc is not None:
                first_exc = shard_exc
        if on_error == "raise" and first_exc is not None:
            raise first_exc
        return outcomes


_BACKENDS = {
    backend.name: backend
    for backend in (SerialBackend(), ThreadBackend(), ProcessBackend())
}


def available_backends() -> List[str]:
    """The registered backend names, sorted."""
    return sorted(_BACKENDS)


def get_backend(name: str) -> Any:
    """Look a backend up by name (``serial``, ``thread``, ``process``)."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown sweep backend {name!r}; available: {available_backends()}"
        ) from None


__all__ = [
    "DEFAULT_MAX_WORKERS",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "available_backends",
    "chunk_items",
    "get_backend",
    "resolve_workers",
    "run_shard",
]
