"""Batched sweep execution: chunk cases into structure-of-arrays solves.

:func:`run_sweep_batched` is :func:`repro.sweep.runner.run_sweep` for
evaluations that also exist in a batched (structure-of-arrays) form, such
as the :mod:`repro.batch` engines. Cases are grouped into contiguous
batches of ``batch_size``; each batch is evaluated in **one** call of the
spec's ``batch`` function, and the per-case results are unpacked back into
ordinary :class:`~repro.sweep.cases.SweepOutcome` records — same ordering,
same error-capture semantics, same metric determinism across the serial,
thread and process backends as the per-case runner.

Fallback ladder, mirroring the hydraulic solver's fast-path contract:

- a batch function may return :data:`SERIAL_FALLBACK` for individual
  lanes (a scenario its vectorized path cannot finish — e.g. a lane the
  batched manifold engine already re-solved serially raises on, or a
  steady lane with no equilibrium). Only those lanes are re-evaluated
  through the spec's per-case ``serial`` function; their neighbours keep
  their batched values untouched.
- a batch function that *raises* demotes its entire batch to per-case
  serial evaluation.

Counters (merged deterministically across backends): ``sweep_batches_total``,
``sweep_batched_cases_total``, ``sweep_batch_fallbacks_total`` (lanes
re-run serially), ``sweep_batch_errors_total`` (whole-batch demotions).
Note the inner dispatch counts *batches* as its sweep cases, so
``sweep_cases_total`` advances by the batch count, while the batched
counters account for the real scenario count.
"""

from __future__ import annotations

import traceback as _traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

from repro.obs import get_registry
from repro.sweep.backends import _picklable_exception
from repro.sweep.cases import SweepCase, SweepOutcome
from repro.sweep.runner import run_sweep

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sweep.harness import HarnessConfig

__all__ = [
    "SERIAL_FALLBACK",
    "BatchedSweepFn",
    "run_sweep_batched",
]


class _SerialFallback:
    """Sentinel a batch function returns for lanes needing serial re-runs."""

    _instance: Optional["_SerialFallback"] = None

    def __new__(cls) -> "_SerialFallback":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "SERIAL_FALLBACK"


#: Lane marker: "evaluate this case through the serial path instead".
SERIAL_FALLBACK = _SerialFallback()


@dataclass(frozen=True)
class BatchedSweepFn:
    """A sweep evaluation available in per-case and batched form.

    ``serial`` evaluates one case (the oracle; also the fallback path);
    ``batch`` evaluates a whole case list in one call and returns one
    value per case, in case order, using :data:`SERIAL_FALLBACK` for
    lanes it could not finish. Both must be picklable (module-level
    functions) for the process backend. The differential suite pins
    ``batch`` == ``serial`` per case.
    """

    serial: Callable[[SweepCase], Any]
    batch: Callable[[List[SweepCase]], Sequence[Any]]


@dataclass(frozen=True)
class _Cell:
    """One case's result inside a batch outcome (picklable)."""

    value: Any = None
    exception: Optional[BaseException] = None
    error: Optional[str] = None
    error_traceback: Optional[str] = None


def _evaluate_batch(batch_case: SweepCase) -> List[_Cell]:
    """Worker-side evaluation of one batch of cases.

    Never raises: per-case failures are captured into cells so the outer
    dispatch stays error-free on every backend and ``on_error`` can be
    honoured uniformly by the parent after flattening.
    """
    spec: BatchedSweepFn = batch_case.params["spec"]
    cases: List[SweepCase] = batch_case.params["cases"]
    obs = get_registry()
    obs.inc("sweep_batches_total")
    obs.inc("sweep_batched_cases_total", len(cases))
    try:
        values = list(spec.batch(cases))
        if len(values) != len(cases):
            raise ValueError(
                f"batch function returned {len(values)} values "
                f"for {len(cases)} cases"
            )
    except Exception:  # noqa: BLE001 - demote the whole batch to serial
        obs.inc("sweep_batch_errors_total")
        values = [SERIAL_FALLBACK] * len(cases)
    cells: List[_Cell] = []
    for case, value in zip(cases, values):
        if value is SERIAL_FALLBACK:
            obs.inc("sweep_batch_fallbacks_total")
            try:
                with obs.span("sweep.case", case=case.name), obs.profile(
                    "sweep.case"
                ):
                    value = spec.serial(case)
            except Exception as exc:  # noqa: BLE001 - captured per case
                obs.inc("sweep_case_errors_total")
                cells.append(
                    _Cell(
                        exception=_picklable_exception(exc),
                        error=repr(exc),
                        error_traceback=_traceback.format_exc(),
                    )
                )
                continue
        cells.append(_Cell(value=value))
    return cells


def run_sweep_batched(
    fn: BatchedSweepFn,
    cases: Sequence[SweepCase],
    batch_size: int = 64,
    max_workers: Optional[int] = None,
    on_error: str = "raise",
    backend: Optional[str] = None,
    harness: Optional["HarnessConfig"] = None,
) -> List[SweepOutcome]:
    """Evaluate a sweep in structure-of-arrays batches, in case order.

    Parameters
    ----------
    fn:
        The paired serial/batched evaluation.
    cases:
        Sweep points, in the order results are wanted.
    batch_size:
        Scenarios per batched solve. A batch size beyond ``len(cases)``
        simply produces one ragged batch; the final batch of any sweep is
        ragged whenever ``len(cases) % batch_size != 0``.
    max_workers, backend:
        As :func:`~repro.sweep.runner.run_sweep`; parallelism is over
        *batches* (each worker solves whole batches).
    on_error:
        ``"raise"`` re-raises the first failing case's exception after
        the sweep's batches complete; ``"capture"`` records failures on
        the outcomes.
    harness:
        A :class:`~repro.sweep.harness.HarnessConfig` routes the batch
        dispatch through the fault-tolerant harness. The harness sees
        *batches* as its cases: checkpoints persist whole completed
        batches, the per-case deadline budgets one batched solve, and a
        batch whose worker dies or hangs is quarantined at batch
        granularity — the flatten below then fails every case of that
        batch with the batch-level error.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if on_error not in ("raise", "capture"):
        raise ValueError("on_error must be 'raise' or 'capture'")
    if not isinstance(fn, BatchedSweepFn):
        raise TypeError("fn must be a BatchedSweepFn")
    cases = list(cases)
    if not cases:
        return []
    batches = [
        cases[i : i + batch_size] for i in range(0, len(cases), batch_size)
    ]
    starts = list(range(0, len(cases), batch_size))
    batch_cases = [
        SweepCase(
            name=f"batch_{k}",
            params={"spec": fn, "cases": batch, "start": start},
        )
        for k, (batch, start) in enumerate(zip(batches, starts))
    ]
    if harness is not None:
        from repro.sweep.harness import run_sweep_resilient

        engine_name = backend if backend is not None else "thread"
        # Run-level counters (the ones the plain path increments on the
        # parent registry) ride the harness's first wave snapshot so an
        # interrupted-and-resumed run counts them exactly once.
        result = run_sweep_resilient(
            _evaluate_batch,
            batch_cases,
            backend=engine_name,
            max_workers=max_workers,
            chunk_size=1,
            config=harness,
            run_counters={
                "sweep_batched_runs_total": 1,
                "sweep_runs_total": 1,
                "sweep_cases_total": len(batch_cases),
                f"sweep_backend_{engine_name}_runs_total": 1,
            },
        )
        batch_outcomes = list(result.outcomes)
    else:
        obs = get_registry()
        obs.inc("sweep_batched_runs_total")
        batch_outcomes = run_sweep(
            _evaluate_batch,
            batch_cases,
            max_workers=max_workers,
            chunk_size=1,
            on_error="raise",  # _evaluate_batch never raises
            backend=backend,
        )
    outcomes: List[SweepOutcome] = []
    first_exc: Optional[BaseException] = None
    for outcome, (batch, start) in zip(batch_outcomes, zip(batches, starts)):
        if outcome.error is not None:
            # Only possible under the harness: the whole batch hit a
            # deadline or killed its worker and stayed failed after
            # supervision. Attribute the batch-level error to every case.
            for offset, case in enumerate(batch):
                if first_exc is None:
                    first_exc = RuntimeError(outcome.error)
                outcomes.append(
                    SweepOutcome(
                        case=case,
                        index=start + offset,
                        error=outcome.error,
                        error_traceback=outcome.error_traceback,
                    )
                )
            continue
        cells: List[_Cell] = outcome.value
        for offset, cell in enumerate(cells):
            case = cases[start + offset]
            if cell.error is None:
                outcomes.append(
                    SweepOutcome(case=case, index=start + offset, value=cell.value)
                )
            else:
                if first_exc is None:
                    first_exc = cell.exception or RuntimeError(cell.error)
                outcomes.append(
                    SweepOutcome(
                        case=case,
                        index=start + offset,
                        error=cell.error,
                        error_traceback=cell.error_traceback,
                    )
                )
    if on_error == "raise" and first_exc is not None:
        raise first_exc
    return outcomes
