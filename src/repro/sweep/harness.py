"""Fault-tolerant sweep execution: checkpoint/resume, deadlines, recovery.

The sweep backends (:mod:`repro.sweep.backends`) are deterministic but
brittle in exactly the ways long campaigns are not allowed to be: a hung
manifold solve stalls a process shard forever, a SIGKILLed worker aborts
the whole sweep with a bare ``BrokenProcessPool``, and a 10k-case run
that dies at case 9,999 restarts from zero. This module wraps those
backends in an execution *harness* with four pillars:

- **checkpoint/resume** — completed cases are persisted wave-by-wave as
  canonical JSON keyed by a SHA-256 digest of (evaluation function, case
  list, backend, wave size). An interrupted run resumes exactly where it
  stopped; a checkpoint whose digest does not match the requested sweep
  is refused (:class:`CheckpointMismatchError`), never silently reused.
- **per-case deadlines and worker-crash recovery** — on the process
  backend shards run under a supervised pool. A shard that exceeds its
  deadline or kills its worker has the pool torn down and respawned, and
  is narrowed by bisection until the poison case is isolated and
  recorded as a structured failure; its shard-mates are re-evaluated and
  keep the run alive.
- **retry + quarantine** — failed cases re-run in the parent through
  :func:`repro.resilience.retry.retry_with_backoff` (the attempt index
  is exposed as a ``harness_attempt`` case param so evaluations can walk
  a relaxation schedule). Persistent failures are quarantined into a
  replayable canonical-JSON artifact tagged with an exception taxonomy
  (``non-finite`` / ``non-convergence`` / ``timeout`` / ``worker-death``
  / ``error``), in the spirit of the fuzzer's shrunk repro artifacts.
- **graceful backend degradation** — a ``process -> thread -> serial``
  demotion ladder mirroring the batched engine's ``SERIAL_FALLBACK``:
  when the process pool keeps collapsing the remaining cases demote to
  the thread backend, and an executor-level thread failure demotes to a
  plain serial loop.

Determinism contract: outcomes come back in case order, and the merged
metric export of an interrupted-and-resumed run is byte-identical to an
uninterrupted run of the same sweep. Every harness counter
(``harness_checkpoints_total``, ``harness_retries_total``,
``harness_quarantined_total``, ``harness_demotions_total``,
``harness_pool_respawns_total``, ``harness_bisections_total``) and every
standard sweep counter is accumulated in a per-wave child registry whose
snapshot is both merged into the live registry and persisted in the
checkpoint — so resuming merges exactly the snapshots the interrupted
run already earned instead of re-counting them.

Deadlines are enforced only on the process backend (threads cannot be
killed); on ``thread``/``serial`` a configured timeout is recorded but
not enforced.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import math
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs import MetricsRegistry, get_registry, use_registry
from repro.sweep.backends import (
    chunk_items,
    get_backend,
    resolve_workers,
    run_shard,
)
from repro.sweep.cases import SweepCase, SweepOutcome

__all__ = [
    "CaseDeadlineError",
    "CheckpointMismatchError",
    "FAILURE_TAXONOMY",
    "HarnessConfig",
    "HarnessError",
    "HarnessResult",
    "QuarantineRecord",
    "WorkerCrashError",
    "classify_failure",
    "load_quarantine",
    "replay_quarantined",
    "run_sweep_resilient",
    "sweep_digest",
]

#: Checkpoint file format version; bumped on any incompatible change.
CHECKPOINT_VERSION = 1

#: The demotion ladder, most capable first.
BACKEND_LADDER: Tuple[str, ...] = ("process", "thread", "serial")

#: Exception taxonomy buckets a quarantined failure is classified into.
FAILURE_TAXONOMY: Tuple[str, ...] = (
    "non-finite",
    "non-convergence",
    "timeout",
    "worker-death",
    "error",
)


class HarnessError(RuntimeError):
    """Base class for harness-level failures."""


class CheckpointMismatchError(HarnessError):
    """A checkpoint was written for a different sweep than the one resuming."""


class CaseDeadlineError(HarnessError):
    """A case exceeded its per-case deadline and its worker was killed."""


class WorkerCrashError(HarnessError):
    """A case's worker process died (SIGKILL, segfault, OOM) mid-evaluation."""


@dataclass(frozen=True)
class HarnessConfig:
    """Knobs of one fault-tolerant sweep execution.

    Attributes
    ----------
    checkpoint:
        Path of the canonical-JSON checkpoint file. ``None`` disables
        persistence (supervision, retry and quarantine still apply).
    resume:
        Resume from ``checkpoint`` if it exists. A digest mismatch
        raises :class:`CheckpointMismatchError`; a missing file starts
        fresh.
    checkpoint_every:
        Cases per wave. The sweep is partitioned into contiguous waves
        of this size; a checkpoint is written after every completed
        wave, and resume restarts at the first incomplete wave. Part of
        the digest — resuming with a different wave size is refused.
    timeout_s:
        Per-case deadline, seconds. A process shard's budget is
        ``timeout_s * len(shard)``; enforcement narrows to the single
        poison case by bisection. Unenforced on thread/serial backends.
    retries:
        Extra in-parent attempts for a failed case (0 disables). Each
        attempt re-evaluates the case with ``harness_attempt`` set to
        the 1-based attempt index in its params, so evaluations can
        relax tolerances along a deterministic backoff schedule.
        Timeout and worker-death failures are never retried in-parent
        (a hung or killing case must not take the parent down).
    quarantine:
        Path the replayable quarantine artifact is written to (canonical
        JSON). ``None`` keeps quarantined records only on the result.
    max_pool_respawns:
        Pool respawns tolerated per wave before the remaining cases
        demote to the thread backend. Bisection of one poison case in a
        shard of ``n`` costs about ``log2(n)`` respawns, so the budget
        is generous by default.
    demote:
        Whether the ``process -> thread -> serial`` ladder is armed.
        ``False`` re-raises infrastructure failures once the respawn
        budget is spent.
    """

    checkpoint: Optional[Union[str, Path]] = None
    resume: bool = False
    checkpoint_every: int = 64
    timeout_s: Optional[float] = None
    retries: int = 1
    quarantine: Optional[Union[str, Path]] = None
    max_pool_respawns: int = 24
    demote: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.max_pool_respawns < 0:
            raise ValueError("max_pool_respawns must be non-negative")


@dataclass(frozen=True)
class QuarantineRecord:
    """One persistently failing case, replayable from its artifact."""

    digest: str
    index: int
    name: str
    taxonomy: str
    error: str
    error_types: Tuple[str, ...]
    attempts: int
    params: Any
    traceback: Optional[str]
    case_pickle: str

    def rebuild_case(self) -> SweepCase:
        """The exact :class:`SweepCase` that failed, unpickled."""
        return pickle.loads(base64.b64decode(self.case_pickle.encode("ascii")))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "digest": self.digest,
            "index": self.index,
            "name": self.name,
            "taxonomy": self.taxonomy,
            "error": self.error,
            "error_types": list(self.error_types),
            "attempts": self.attempts,
            "params": self.params,
            "traceback": self.traceback,
            "case_pickle": self.case_pickle,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "QuarantineRecord":
        return QuarantineRecord(
            digest=str(payload["digest"]),
            index=int(payload["index"]),
            name=str(payload["name"]),
            taxonomy=str(payload["taxonomy"]),
            error=str(payload["error"]),
            error_types=tuple(payload.get("error_types", ())),
            attempts=int(payload["attempts"]),
            params=payload.get("params"),
            traceback=payload.get("traceback"),
            case_pickle=str(payload["case_pickle"]),
        )


@dataclass(frozen=True)
class HarnessResult:
    """Outcome of one :func:`run_sweep_resilient` run."""

    outcomes: Tuple[SweepOutcome, ...]
    digest: str
    backend: str
    quarantined: Tuple[QuarantineRecord, ...] = ()
    demotions: Tuple[str, ...] = ()
    resumed_cases: int = 0

    @property
    def ok(self) -> bool:
        """Whether every case ultimately succeeded."""
        return all(outcome.ok for outcome in self.outcomes)


# -- digest ------------------------------------------------------------


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _fn_label(fn: Any) -> str:
    module = getattr(fn, "__module__", None) or "?"
    qualname = getattr(fn, "__qualname__", None) or repr(fn)
    return f"{module}.{qualname}"


def _jsonable(value: Any) -> Any:
    """A canonical-JSON-encodable stand-in for an arbitrary param value.

    Plain data passes through; callables become their qualified name;
    dataclasses recurse field-by-field (a ``FaultScenario`` digests by
    its events, not its memory address); anything else falls back to
    ``repr``. The encoding only needs to be *stable* across runs — it is
    the digest input and the human-readable half of the quarantine
    artifact, not a round-trippable serialization (the pickle field is).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [_jsonable(v) for v in items]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        encoded = {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        encoded["__type__"] = type(value).__qualname__
        return encoded
    if callable(value):
        return _fn_label(value)
    return repr(value)


def sweep_digest(
    fn: Callable[[SweepCase], Any],
    cases: Sequence[SweepCase],
    backend: str,
    checkpoint_every: int,
) -> str:
    """SHA-256 over (fn qualname, case params, backend config).

    This is the checkpoint compatibility key: a resume against a
    checkpoint whose digest differs — a different evaluation function, a
    changed case list, another backend, or another wave size (which
    would shift every checkpoint boundary and its metric accounting) —
    is refused rather than silently blended.
    """
    payload = {
        "fn": _fn_label(fn),
        "backend": backend,
        "checkpoint_every": checkpoint_every,
        "cases": [
            {"name": case.name, "params": _jsonable(case.params)}
            for case in cases
        ],
    }
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


# -- failure taxonomy --------------------------------------------------

_NON_FINITE_TYPES = frozenset(
    {
        "FloatingPointError",
        "OverflowError",
        "ZeroDivisionError",
        "ThermalRunawayError",
    }
)
_NON_FINITE_MARKERS = ("nan", "not finite", "non-finite", "infinite", "inf ")


def classify_failure(error_types: Sequence[str], error: Optional[str]) -> str:
    """Map a failure's exception types + repr onto the taxonomy.

    Types dominate (that is why :class:`~repro.resilience.retry.
    RetryOutcome` carries them); the repr is only consulted for the
    non-finite / non-convergence split of generic exception classes.
    """
    names = {t.rsplit(".", 1)[-1] for t in error_types}
    if "CaseDeadlineError" in names:
        return "timeout"
    if names & {"WorkerCrashError", "BrokenProcessPool"}:
        return "worker-death"
    text = (error or "").lower()
    if names & _NON_FINITE_TYPES or any(m in text for m in _NON_FINITE_MARKERS):
        return "non-finite"
    if "converge" in text or any("convergence" in n.lower() for n in names):
        return "non-convergence"
    return "error"


# -- checkpoint persistence --------------------------------------------


def _json_safe(value: Any) -> bool:
    """Whether ``value`` round-trips through JSON without changing type."""
    if value is None or isinstance(value, (bool, int, str)):
        return True
    if isinstance(value, float):
        return math.isfinite(value)
    if isinstance(value, dict):
        return all(
            isinstance(k, str) and _json_safe(v) for k, v in value.items()
        )
    if isinstance(value, list):
        return all(_json_safe(v) for v in value)
    return False


def _encode_value(value: Any) -> Dict[str, Any]:
    if _json_safe(value):
        return {"kind": "json", "data": value}
    return {
        "kind": "pickle",
        "data": base64.b64encode(pickle.dumps(value)).decode("ascii"),
    }


def _decode_value(payload: Mapping[str, Any]) -> Any:
    if payload["kind"] == "json":
        return payload["data"]
    return pickle.loads(base64.b64decode(payload["data"].encode("ascii")))


def _encode_outcome(outcome: SweepOutcome) -> Dict[str, Any]:
    record: Dict[str, Any] = {"index": outcome.index, "name": outcome.case.name}
    if outcome.error is None:
        record["value"] = _encode_value(outcome.value)
    else:
        record["error"] = outcome.error
        record["error_traceback"] = outcome.error_traceback
    return record


def _decode_outcome(
    record: Mapping[str, Any], cases: Sequence[SweepCase]
) -> SweepOutcome:
    index = int(record["index"])
    case = cases[index]
    if case.name != record["name"]:
        raise CheckpointMismatchError(
            f"checkpointed case {record['name']!r} at index {index} does not "
            f"match current case {case.name!r}"
        )
    if "error" in record:
        return SweepOutcome(
            case=case,
            index=index,
            error=record["error"],
            error_traceback=record.get("error_traceback"),
        )
    return SweepOutcome(case=case, index=index, value=_decode_value(record["value"]))


def _atomic_write(path: Path, text: str) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class _Checkpoint:
    """In-memory mirror of the checkpoint file, written wave-by-wave."""

    def __init__(self, digest: str, n_cases: int, checkpoint_every: int) -> None:
        self.digest = digest
        self.n_cases = n_cases
        self.checkpoint_every = checkpoint_every
        self.waves: Dict[int, Dict[str, Any]] = {}

    def to_json(self) -> str:
        payload = {
            "version": CHECKPOINT_VERSION,
            "digest": self.digest,
            "n_cases": self.n_cases,
            "checkpoint_every": self.checkpoint_every,
            "waves": [
                {"wave": wave, **record}
                for wave, record in sorted(self.waves.items())
            ],
        }
        return _canonical(payload)

    @staticmethod
    def load(path: Path) -> "_Checkpoint":
        payload = json.loads(Path(path).read_text())
        if payload.get("version") != CHECKPOINT_VERSION:
            raise CheckpointMismatchError(
                f"checkpoint {path} has version {payload.get('version')!r}; "
                f"this harness writes version {CHECKPOINT_VERSION}"
            )
        state = _Checkpoint(
            digest=str(payload["digest"]),
            n_cases=int(payload["n_cases"]),
            checkpoint_every=int(payload["checkpoint_every"]),
        )
        for record in payload.get("waves", []):
            record = dict(record)
            wave = int(record.pop("wave"))
            state.waves[wave] = record
        return state


# -- supervised process execution --------------------------------------

IndexedCase = Tuple[int, SweepCase]
_Shard = List[IndexedCase]


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard: SIGKILL every worker, never wait on work.

    A hung worker ignores a cooperative shutdown forever, so the
    supervised path kills the processes first and only then releases the
    executor's bookkeeping threads.
    """
    processes = dict(getattr(pool, "_processes", None) or {})
    for proc in processes.values():
        try:
            proc.kill()
        except Exception:  # noqa: BLE001 - already-dead workers are fine
            pass
    for proc in processes.values():
        try:
            proc.join(timeout=5.0)
        except Exception:  # noqa: BLE001
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # noqa: BLE001 - a broken pool may refuse politely
        pass


def _poison_outcome(
    index: int, case: SweepCase, kind: str, detail: str
) -> Tuple[SweepOutcome, BaseException]:
    exc: HarnessError
    if kind == "timeout":
        exc = CaseDeadlineError(detail)
    else:
        exc = WorkerCrashError(detail)
    outcome = SweepOutcome(
        case=case,
        index=index,
        error=repr(exc),
        error_traceback=f"{type(exc).__name__}: {detail}\n",
    )
    return outcome, exc


class _ProcessSupervisor:
    """Run one wave's shards under a respawnable, deadline-enforcing pool."""

    def __init__(
        self,
        fn: Callable[[SweepCase], Any],
        workers: int,
        timeout_s: Optional[float],
        respawn_budget: int,
        obs: Any,
    ) -> None:
        self.fn = fn
        self.workers = workers
        self.timeout_s = timeout_s
        self.respawn_budget = respawn_budget
        self.obs = obs
        self.respawns = 0
        #: (shard start index) -> (outcomes, registry snapshot)
        self.done: Dict[int, Tuple[List[SweepOutcome], Dict[str, Any]]] = {}
        #: index -> structured poison failure
        self.failures: Dict[int, Tuple[SweepOutcome, str]] = {}

    def _shard_budget(self, shard: _Shard) -> Optional[float]:
        if self.timeout_s is None:
            return None
        return self.timeout_s * len(shard)

    def run(self, shards: List[_Shard]) -> List[_Shard]:
        """Drive shards to completion; returns leftover shards on demotion.

        An empty return list means every case either completed or was
        recorded as a structured failure. A non-empty list means the
        respawn budget is spent — the caller demotes those shards down
        the backend ladder.
        """
        pending: List[_Shard] = list(shards)
        while pending:
            pending = self._one_pool_round(pending)
            if pending and self.respawns > self.respawn_budget:
                return pending
        return []

    def _one_pool_round(self, pending: List[_Shard]) -> List[_Shard]:
        pool = ProcessPoolExecutor(max_workers=min(self.workers, len(pending)))
        broken = False
        suspects: List[Tuple[_Shard, str, str]] = []
        leftover: List[_Shard] = []
        try:
            futures = [
                (shard, pool.submit(run_shard, (self.fn, shard)))
                for shard in pending
            ]
            for shard, future in futures:
                if broken:
                    # The pool is already condemned: harvest what finished,
                    # requeue everything else wholesale.
                    if future.done() and not future.cancelled():
                        try:
                            self._harvest(shard, future.result(timeout=0))
                        except BaseException:  # noqa: BLE001 - requeue instead
                            leftover.append(shard)
                    else:
                        leftover.append(shard)
                    continue
                try:
                    self._harvest(
                        shard, future.result(timeout=self._shard_budget(shard))
                    )
                except _FutureTimeout:
                    suspects.append(
                        (
                            shard,
                            "timeout",
                            f"shard [{shard[0][0]}..{shard[-1][0]}] exceeded "
                            f"its {self._shard_budget(shard):.3f}s deadline",
                        )
                    )
                    broken = True
                except BrokenProcessPool:
                    suspects.append(
                        (
                            shard,
                            "worker-death",
                            f"worker died evaluating shard "
                            f"[{shard[0][0]}..{shard[-1][0]}]",
                        )
                    )
                    broken = True
                except Exception as exc:  # noqa: BLE001 - infrastructure error
                    suspects.append(
                        (
                            shard,
                            "worker-death",
                            f"shard [{shard[0][0]}..{shard[-1][0]}] failed "
                            f"in the executor: {exc!r}",
                        )
                    )
                    broken = True
        finally:
            if broken:
                _kill_pool(pool)
                self.respawns += 1
                self.obs.inc("harness_pool_respawns_total")
            else:
                pool.shutdown(wait=True)
        for shard, kind, detail in suspects:
            if len(shard) == 1:
                index, case = shard[0]
                self.obs.inc("sweep_case_errors_total")
                if kind == "timeout":
                    self.obs.inc("harness_deadline_kills_total")
                outcome, _ = _poison_outcome(
                    index,
                    case,
                    kind,
                    f"case {case.name!r} (index {index}): {detail}",
                )
                self.failures[index] = (outcome, kind)
            else:
                # Narrow the poison case: both halves go back to a fresh
                # pool; the healthy half completes, the sick one splits
                # again. log2(n) rounds isolate a single poison case.
                mid = len(shard) // 2
                leftover.append(shard[:mid])
                leftover.append(shard[mid:])
                self.obs.inc("harness_bisections_total")
        return leftover

    def _harvest(self, shard: _Shard, result: Any) -> None:
        outcomes, snapshot, _first_exc = result
        self.done[shard[0][0]] = (outcomes, snapshot)

    def collect(self) -> List[SweepOutcome]:
        """All outcomes in case order; merges snapshots in shard order."""
        for _start, (_outcomes, snapshot) in sorted(self.done.items()):
            self.obs.merge_snapshot(snapshot)
        outcomes = [
            outcome
            for _start, (shard_outcomes, _snap) in sorted(self.done.items())
            for outcome in shard_outcomes
        ]
        outcomes.extend(outcome for outcome, _kind in self.failures.values())
        outcomes.sort(key=lambda o: o.index)
        return outcomes


# -- the harness -------------------------------------------------------


@dataclass
class _WaveResult:
    outcomes: List[SweepOutcome]
    #: index -> taxonomy for structured (non-retryable) failures
    structured: Dict[int, str] = field(default_factory=dict)


def _run_wave_backend(
    fn: Callable[[SweepCase], Any],
    indexed: List[IndexedCase],
    backend: str,
    workers: int,
    chunk_size: Optional[int],
    config: HarnessConfig,
    obs: Any,
    demotions: List[str],
) -> _WaveResult:
    """Evaluate one wave on ``backend``, walking the demotion ladder."""
    if backend == "process":
        shard_size = chunk_size or max(1, -(-len(indexed) // workers))
        supervisor = _ProcessSupervisor(
            fn,
            workers,
            config.timeout_s,
            config.max_pool_respawns,
            obs,
        )
        leftover = supervisor.run(chunk_items(indexed, shard_size))
        outcomes = supervisor.collect()
        structured = {
            index: kind for index, (_o, kind) in supervisor.failures.items()
        }
        if leftover:
            if not config.demote:
                raise HarnessError(
                    f"process pool collapsed {supervisor.respawns} times "
                    f"(budget {config.max_pool_respawns}) and demotion is "
                    f"disabled"
                )
            obs.inc("harness_demotions_total")
            demotions.append("process->thread")
            rest = [item for shard in leftover for item in shard]
            rest.sort(key=lambda pair: pair[0])
            demoted = _run_wave_backend(
                fn, rest, "thread", workers, chunk_size, config, obs, demotions
            )
            outcomes.extend(demoted.outcomes)
            structured.update(demoted.structured)
            outcomes.sort(key=lambda o: o.index)
        return _WaveResult(outcomes=outcomes, structured=structured)
    engine = get_backend(backend)
    try:
        outcomes = engine.run(
            fn, indexed, workers=workers, chunk_size=chunk_size, on_error="capture"
        )
    except Exception:  # noqa: BLE001 - executor-level failure, not a case error
        if backend == "serial" or not config.demote:
            raise
        obs.inc("harness_demotions_total")
        demotions.append(f"{backend}->serial")
        outcomes = get_backend("serial").run(
            fn, indexed, workers=1, chunk_size=chunk_size, on_error="capture"
        )
    return _WaveResult(outcomes=list(outcomes))


def _retry_and_quarantine(
    fn: Callable[[SweepCase], Any],
    wave: _WaveResult,
    config: HarnessConfig,
    digest: str,
    obs: Any,
) -> List[QuarantineRecord]:
    """Retry the wave's retryable failures in-parent; quarantine the rest."""
    from repro.resilience.retry import retry_with_backoff

    quarantined: List[QuarantineRecord] = []
    for slot, outcome in enumerate(wave.outcomes):
        if outcome.ok:
            continue
        taxonomy = wave.structured.get(outcome.index)
        error_types: Tuple[str, ...] = ()
        attempts = 1
        if taxonomy is None and config.retries > 0:
            # In-parent deterministic retry: each attempt sees its 1-based
            # index as the ``harness_attempt`` param (relaxation schedule).
            case = outcome.case

            def attempt_case(attempt: int, case: SweepCase = case) -> Any:
                relaxed = SweepCase(
                    name=case.name,
                    params={**case.params, "harness_attempt": attempt + 1},
                )
                return fn(relaxed)

            retried = retry_with_backoff(attempt_case, attempts=config.retries)
            obs.inc("harness_retries_total", retried.attempts)
            attempts += retried.attempts
            error_types = retried.error_types
            if retried.ok:
                obs.inc("harness_retry_successes_total")
                wave.outcomes[slot] = SweepOutcome(
                    case=case, index=outcome.index, value=retried.value
                )
                continue
        if taxonomy is None:
            kind = (outcome.error or "").split("(", 1)[0]
            taxonomy = classify_failure(
                tuple(error_types) + ((kind,) if kind else ()), outcome.error
            )
        obs.inc("harness_quarantined_total")
        obs.inc(
            "harness_quarantined_"
            + taxonomy.replace("-", "_")
            + "_total"
        )
        quarantined.append(
            QuarantineRecord(
                digest=digest,
                index=outcome.index,
                name=outcome.case.name,
                taxonomy=taxonomy,
                error=outcome.error or "",
                error_types=tuple(error_types),
                attempts=attempts,
                params=_jsonable(outcome.case.params),
                traceback=outcome.error_traceback,
                case_pickle=base64.b64encode(
                    pickle.dumps(outcome.case)
                ).decode("ascii"),
            )
        )
    return quarantined


def run_sweep_resilient(
    fn: Callable[[SweepCase], Any],
    cases: Sequence[SweepCase],
    backend: str = "thread",
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    config: Optional[HarnessConfig] = None,
    run_counters: Optional[Mapping[str, float]] = None,
) -> HarnessResult:
    """Evaluate a sweep fault-tolerantly, in case order, resumably.

    The case list is partitioned into contiguous waves of
    ``config.checkpoint_every`` cases. Each wave runs under a **fresh
    child registry**: the backend evaluates it (supervised, on the
    process backend), failures are retried and quarantined, the wave's
    counters (including one ``harness_checkpoints_total``) land in the
    child registry, and its snapshot is merged into the live registry
    and — together with the wave's outcomes — persisted to the
    checkpoint. Because every metric of the run rides a wave snapshot,
    an interrupted run resumed from its checkpoint merges **exactly**
    the snapshots it already earned and re-runs only incomplete waves:
    outcomes and canonical metric exports are byte-identical to an
    uninterrupted run.

    ``run_counters`` are one-shot run-level counters (e.g. the standard
    ``sweep_runs_total`` family) folded into the *first* wave's registry
    so they, too, are counted exactly once across interruptions.

    A ``KeyboardInterrupt`` (or any ``BaseException``) mid-wave kills
    any live worker pool, leaves the checkpoint at the last completed
    wave, and re-raises — nothing is lost but the interrupted wave.
    """
    config = config or HarnessConfig()
    if backend not in BACKEND_LADDER:
        raise ValueError(
            f"unknown harness backend {backend!r}; available: "
            f"{sorted(BACKEND_LADDER)}"
        )
    cases = list(cases)
    digest = sweep_digest(fn, cases, backend, config.checkpoint_every)
    if not cases:
        return HarnessResult(outcomes=(), digest=digest, backend=backend)
    workers = resolve_workers(len(cases), max_workers)
    obs = get_registry()

    checkpoint_path = (
        Path(config.checkpoint) if config.checkpoint is not None else None
    )
    quarantine_path = (
        Path(config.quarantine) if config.quarantine is not None else None
    )
    state = _Checkpoint(digest, len(cases), config.checkpoint_every)
    if config.resume and checkpoint_path is not None and checkpoint_path.exists():
        loaded = _Checkpoint.load(checkpoint_path)
        if loaded.digest != digest:
            raise CheckpointMismatchError(
                f"checkpoint {checkpoint_path} was written for digest "
                f"{loaded.digest[:12]}..., this sweep has digest "
                f"{digest[:12]}... — refusing to resume"
            )
        if loaded.n_cases != len(cases):
            raise CheckpointMismatchError(
                f"checkpoint covers {loaded.n_cases} cases, sweep has "
                f"{len(cases)}"
            )
        state = loaded

    waves = chunk_items(list(enumerate(cases)), config.checkpoint_every)
    outcomes_by_index: Dict[int, SweepOutcome] = {}
    quarantined: List[QuarantineRecord] = []
    demotions: List[str] = []
    resumed_cases = 0

    # Replay completed waves: restore outcomes, merge their recorded
    # snapshots into the live registry in wave order (identical totals to
    # having run them), collect their quarantine records.
    for wave_index in sorted(state.waves):
        record = state.waves[wave_index]
        for encoded in record["outcomes"]:
            outcome = _decode_outcome(encoded, cases)
            outcomes_by_index[outcome.index] = outcome
            resumed_cases += 1
        obs.merge_snapshot(record["snapshot"])
        quarantined.extend(
            QuarantineRecord.from_dict(q) for q in record.get("quarantined", [])
        )

    # One-shot run counters ride the first wave's snapshot. On resume
    # they are already inside the restored wave-0 snapshot (merged
    # above), so injecting them again would double-count and break
    # byte-identity with an uninterrupted run.
    inject_run_counters = bool(run_counters) and not state.waves
    try:
        for wave_index, wave_cases in enumerate(waves):
            if wave_index in state.waves:
                continue
            with use_registry(MetricsRegistry()) as wave_obs:
                if inject_run_counters:
                    wave_obs.merge_counters(dict(run_counters))
                inject_run_counters = False
                wave = _run_wave_backend(
                    fn,
                    wave_cases,
                    backend,
                    workers,
                    chunk_size,
                    config,
                    wave_obs,
                    demotions,
                )
                wave_quarantined = _retry_and_quarantine(
                    fn, wave, config, digest, wave_obs
                )
                wave_obs.inc("harness_checkpoints_total")
                snapshot = wave_obs.as_dict()
            obs.merge_snapshot(snapshot)
            for outcome in wave.outcomes:
                outcomes_by_index[outcome.index] = outcome
            quarantined.extend(wave_quarantined)
            state.waves[wave_index] = {
                "outcomes": [_encode_outcome(o) for o in wave.outcomes],
                "snapshot": snapshot,
                "quarantined": [q.to_dict() for q in wave_quarantined],
            }
            if checkpoint_path is not None:
                _atomic_write(checkpoint_path, state.to_json() + "\n")
            if quarantine_path is not None and quarantined:
                _write_quarantine(quarantine_path, quarantined)
    finally:
        # Mid-wave interruption: the checkpoint already holds every
        # completed wave; nothing to flush, but never leave workers
        # behind (the supervised path kills its own pool via its
        # finally; thread/serial have no processes to orphan).
        pass

    if quarantine_path is not None and quarantined:
        _write_quarantine(quarantine_path, quarantined)
    ordered = tuple(outcomes_by_index[i] for i in range(len(cases)))
    return HarnessResult(
        outcomes=ordered,
        digest=digest,
        backend=backend,
        quarantined=tuple(quarantined),
        demotions=tuple(demotions),
        resumed_cases=resumed_cases,
    )


# -- quarantine artifact -----------------------------------------------


def _write_quarantine(path: Path, records: Sequence[QuarantineRecord]) -> None:
    payload = {
        "version": CHECKPOINT_VERSION,
        "records": [r.to_dict() for r in records],
    }
    _atomic_write(Path(path), _canonical(payload) + "\n")


def load_quarantine(path: Union[str, Path]) -> List[QuarantineRecord]:
    """Read a quarantine artifact back into records (cases replayable)."""
    payload = json.loads(Path(path).read_text())
    return [QuarantineRecord.from_dict(r) for r in payload.get("records", [])]


def replay_quarantined(
    fn: Callable[[SweepCase], Any], path: Union[str, Path]
) -> List[SweepOutcome]:
    """Re-run every quarantined case serially (errors captured).

    The artifact stores the exact pickled :class:`SweepCase`, so the
    replay sees byte-identical inputs — the diagnosing loop the fuzzer's
    shrunk repro artifacts established. Deadline enforcement does not
    apply here: a replayed hang is the point of the exercise, run it
    under a debugger.
    """
    records = load_quarantine(path)
    obs = get_registry()
    outcomes = []
    for record in records:
        case = record.rebuild_case()
        from repro.sweep.cases import evaluate_case

        outcome, _exc = evaluate_case(obs, fn, record.index, case, reraise=False)
        outcomes.append(outcome)
    return outcomes
