"""Deterministic parallel parameter sweeps.

The cooling studies live on cheap sweeps: regenerate Fig. 5 for a range of
loop counts, scan valve trims, rerun a failure drill across scenarios.
This module runs such sweeps over a pluggable execution backend
(:mod:`repro.sweep.backends`) with three guarantees the ad-hoc loops they
replace did not have:

- **deterministic ordering** — results come back in case order, never in
  completion order, regardless of backend;
- **chunked dispatch** — cases are grouped into contiguous chunks/shards
  so tiny cases do not drown in executor overhead;
- **isolation by construction** — the helpers build one fresh model object
  per case, so stateful solvers (warm starts, solution caches) are never
  shared across concurrent workers.

The default ``thread`` backend suits evaluation functions whose heavy
lifting inside scipy/numpy releases the GIL; ``process`` shards picklable
cases across real cores (facility-scale sweeps); ``serial`` is the
oracle the other two are differential-tested against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.obs import get_registry
from repro.sweep.backends import get_backend, resolve_workers
from repro.sweep.cases import SweepCase, SweepOutcome, sweep_cases  # noqa: F401

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sweep.harness import HarnessConfig


def run_sweep(
    fn: Callable[[SweepCase], Any],
    cases: Sequence[SweepCase],
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    on_error: str = "raise",
    backend: Optional[str] = None,
    harness: Optional["HarnessConfig"] = None,
) -> List[SweepOutcome]:
    """Evaluate ``fn`` over every case, in parallel, in case order.

    Parameters
    ----------
    fn:
        The evaluation; called with one :class:`SweepCase`. Must not share
        mutable state (stateful solvers, simulators) across cases — build
        fresh objects inside the call. With the ``process`` backend it
        must additionally be picklable (a module-level function), as must
        every case's params and every returned value.
    cases:
        The sweep points, in the order results are wanted.
    max_workers:
        Worker count (default: min(8, cpu count, len(cases))). ``1`` on
        the thread backend runs serially with no executor at all —
        bit-identical to a plain loop.
    chunk_size:
        Cases per dispatched task (thread default: balanced so each
        worker gets a few chunks; process default: one contiguous shard
        per worker).
    on_error:
        ``"raise"`` re-raises the first failing case's exception;
        ``"capture"`` records the error on the outcome and keeps going.
        How much of the sweep still runs before a raise is
        backend-specific (serial stops at the failure, process finishes
        the sweep first); captured outcomes are identical across
        backends up to the executor frames in ``error_traceback``.
    backend:
        ``"serial"``, ``"thread"`` (default) or ``"process"`` — see
        :mod:`repro.sweep.backends`.
    harness:
        A :class:`~repro.sweep.harness.HarnessConfig` routes the sweep
        through the fault-tolerant execution harness
        (:func:`~repro.sweep.harness.run_sweep_resilient`): checkpoint/
        resume, per-case deadlines with worker-crash recovery on the
        process backend, retry + quarantine, and the backend demotion
        ladder. Outcome order and metric exports stay identical to the
        plain path for a sweep that needed no intervention. With
        ``on_error="raise"`` a case that still fails after retries
        raises :class:`~repro.sweep.harness.HarnessError` *after* the
        sweep completes (and is checkpointed/quarantined).
    """
    if on_error not in ("raise", "capture"):
        raise ValueError("on_error must be 'raise' or 'capture'")
    engine = get_backend(backend if backend is not None else "thread")
    cases = list(cases)
    if not cases:
        return []
    if chunk_size is not None and chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if harness is not None:
        from repro.sweep.harness import HarnessError, run_sweep_resilient

        result = run_sweep_resilient(
            fn,
            cases,
            backend=engine.name,
            max_workers=max_workers,
            chunk_size=chunk_size,
            config=harness,
            run_counters={
                "sweep_runs_total": 1,
                "sweep_cases_total": len(cases),
                f"sweep_backend_{engine.name}_runs_total": 1,
            },
        )
        if on_error == "raise" and not result.ok:
            first = next(o for o in result.outcomes if not o.ok)
            raise HarnessError(
                f"case {first.case.name!r} (index {first.index}) failed "
                f"after harness intervention: {first.error}"
            )
        return list(result.outcomes)
    workers = resolve_workers(len(cases), max_workers)
    obs = get_registry()
    obs.inc("sweep_runs_total")
    obs.inc("sweep_cases_total", len(cases))
    obs.inc(f"sweep_backend_{engine.name}_runs_total")
    indexed = list(enumerate(cases))
    return engine.run(
        fn, indexed, workers=workers, chunk_size=chunk_size, on_error=on_error
    )


def summarize_failures(outcomes: Sequence[SweepOutcome]) -> List[Dict[str, Any]]:
    """Condense a sweep's captured failures into diagnosable records.

    A campaign that quietly reports ``ok=False`` for a third of its cases
    is undebuggable; this helper turns each failed outcome into

    ``{"case": name, "params": axes, "kind": exception class,
    "error": repr, "where": innermost traceback frame}``

    where ``where`` is the deepest ``File "...", line N, in fn`` frame of
    the captured traceback — the raise site, not the executor plumbing.
    Outcomes that succeeded are skipped; an all-ok sweep yields ``[]``.
    """
    records: List[Dict[str, Any]] = []
    for outcome in outcomes:
        if outcome.ok:
            continue
        kind = (outcome.error or "").split("(", 1)[0]
        where = ""
        if outcome.error_traceback:
            frames = [
                line.strip()
                for line in outcome.error_traceback.splitlines()
                if line.lstrip().startswith("File \"")
            ]
            where = frames[-1] if frames else ""
        records.append(
            {
                "case": outcome.case.name,
                "params": dict(outcome.case.params),
                "kind": kind,
                "error": outcome.error,
                "where": where,
            }
        )
    return records


def sweep_values(
    fn: Callable[[SweepCase], Any],
    cases: Sequence[SweepCase],
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> List[Any]:
    """:func:`run_sweep` returning just the values (errors re-raised)."""
    return [
        outcome.value
        for outcome in run_sweep(
            fn,
            cases,
            max_workers=max_workers,
            chunk_size=chunk_size,
            backend=backend,
        )
    ]


def sweep_simulations(
    simulator_factory: Callable[[], Any],
    scenarios: Mapping[str, Optional[List[Any]]],
    duration_s: float,
    dt_s: float = 5.0,
    max_workers: Optional[int] = None,
) -> Dict[str, Any]:
    """Run one :class:`~repro.core.simulation.ModuleSimulator` per scenario.

    ``scenarios`` maps scenario name to its failure-event list (None for a
    nominal run). A **fresh simulator** comes from ``simulator_factory``
    for every scenario, so controller latches, PID memory and solver
    caches cannot leak between concurrent cases. Returns
    ``{name: SimulationResult}`` with deterministic (input) ordering.
    Thread-backed: the factory closure and the result objects need not be
    picklable.
    """
    names = list(scenarios)
    cases = [
        SweepCase(name=name, params={"events": scenarios[name]}) for name in names
    ]

    def evaluate(case: SweepCase) -> Any:
        simulator = simulator_factory()
        return simulator.run(
            duration_s=duration_s, events=case.params["events"], dt_s=dt_s
        )

    outcomes = run_sweep(evaluate, cases, max_workers=max_workers)
    return {outcome.case.name: outcome.value for outcome in outcomes}


__all__ = [
    "SweepCase",
    "SweepOutcome",
    "run_sweep",
    "summarize_failures",
    "sweep_cases",
    "sweep_simulations",
    "sweep_values",
]
