"""Steady-state solver for thermal networks.

Assembles the nodal conductance matrix ``G T = Q`` over the free nodes
(boundary temperatures move to the right-hand side) and solves it with a
sparse factorization. Steady state is what the paper's headline numbers are:
"the maximum FPGA temperature during heat experiments did not exceed 55
degrees Celsius" is the steady operating point of exactly such a network.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy.sparse import lil_matrix
from scipy.sparse.linalg import spsolve

from repro.thermal.network import ThermalNetwork


def solve_steady_state(network: ThermalNetwork) -> Dict[str, float]:
    """Solve for the steady temperature of every node.

    Returns a mapping from node name to temperature in Celsius (boundary
    nodes are included at their prescribed values).

    Raises
    ------
    NetworkError
        If the network fails :meth:`ThermalNetwork.validate`.
    """
    network.validate()
    free = network.free_nodes
    index = {name: i for i, name in enumerate(free)}
    n = len(free)

    result: Dict[str, float] = {
        name: network.boundary_temperature(name) for name in network.boundary_nodes
    }
    if n == 0:
        return result

    matrix = lil_matrix((n, n))
    rhs = np.zeros(n)
    for name in free:
        rhs[index[name]] = network.heat(name)

    for resistor in network.resistors:
        g = 1.0 / resistor.resistance_k_w
        a, b = resistor.node_a, resistor.node_b
        a_free, b_free = a in index, b in index
        if a_free:
            matrix[index[a], index[a]] += g
        if b_free:
            matrix[index[b], index[b]] += g
        if a_free and b_free:
            matrix[index[a], index[b]] -= g
            matrix[index[b], index[a]] -= g
        elif a_free:
            rhs[index[a]] += g * network.boundary_temperature(b)
        elif b_free:
            rhs[index[b]] += g * network.boundary_temperature(a)

    temperatures = spsolve(matrix.tocsr(), rhs)
    for name, i in index.items():
        result[name] = float(temperatures[i])
    return result


def boundary_heat_flows(network: ThermalNetwork, temperatures: Dict[str, float]) -> Dict[str, float]:
    """Heat flowing *into* each boundary node at the given temperatures, W.

    At steady state these sum to the total injected heat — the energy-
    conservation invariant the property tests check.
    """
    flows = {name: 0.0 for name in network.boundary_nodes}
    for resistor in network.resistors:
        t_a = temperatures[resistor.node_a]
        t_b = temperatures[resistor.node_b]
        q_ab = (t_a - t_b) / resistor.resistance_k_w
        if resistor.node_b in flows:
            flows[resistor.node_b] += q_ab
        if resistor.node_a in flows:
            flows[resistor.node_a] -= q_ab
    return flows


__all__ = ["boundary_heat_flows", "solve_steady_state"]
