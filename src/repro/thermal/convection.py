"""Convective heat-transfer correlations.

Pure functions mapping flow conditions and fluid properties to Nusselt
numbers and film coefficients. These are the physics behind every cooling
configuration in the paper:

- forced air over the finned heatsinks of the legacy Rigel-2 / Taygeta CMs,
- mineral oil forced through the pin-fin heatsinks of the SKAT CM ("original
  solder pins which create a local turbulent flow of the heat-transfer
  agent", Section 2),
- duct/channel flow inside cold plates and plate heat exchangers,
- natural convection as the failure-mode fallback when a pump stops.

All correlations are standard (Incropera & DeWitt; Zukauskas for pin banks;
Churchill & Chu for natural convection). Temperatures in Celsius, SI units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fluids.properties import Fluid

#: Transition Reynolds number for external flat-plate flow.
RE_TRANSITION_PLATE = 5.0e5
#: Transition Reynolds number for internal duct flow.
RE_TRANSITION_DUCT = 2300.0


def reynolds(velocity_m_s: float, length_m: float, fluid: Fluid, temperature_c: float) -> float:
    """Reynolds number ``Re = V L / nu`` for the given characteristic length."""
    if velocity_m_s < 0:
        raise ValueError("velocity must be non-negative")
    if length_m <= 0:
        raise ValueError("characteristic length must be positive")
    return velocity_m_s * length_m / fluid.kinematic_viscosity(temperature_c)


def nusselt_flat_plate(re: float, pr: float) -> float:
    """Average Nusselt number for parallel flow over an isothermal flat plate.

    Laminar ``0.664 Re^1/2 Pr^1/3`` below the transition Reynolds number,
    mixed-boundary-layer ``(0.037 Re^4/5 - 871) Pr^1/3`` above it.
    """
    if re < 0:
        raise ValueError("Reynolds number must be non-negative")
    if pr <= 0:
        raise ValueError("Prandtl number must be positive")
    if re == 0:
        return 0.0
    if re <= RE_TRANSITION_PLATE:
        return 0.664 * math.sqrt(re) * pr ** (1.0 / 3.0)
    return (0.037 * re ** 0.8 - 871.0) * pr ** (1.0 / 3.0)


def nusselt_duct_laminar() -> float:
    """Fully developed laminar duct flow, constant wall temperature: 3.66."""
    return 3.66


def nusselt_dittus_boelter(re: float, pr: float, heating: bool = True) -> float:
    """Dittus-Boelter for fully developed turbulent duct flow.

    ``Nu = 0.023 Re^0.8 Pr^n`` with n = 0.4 when the fluid is heated
    (coolant picking up heat from electronics) and 0.3 when cooled (coolant
    rejecting heat in the plate heat exchanger).
    """
    if re < RE_TRANSITION_DUCT:
        raise ValueError(
            f"Dittus-Boelter requires turbulent flow (Re >= {RE_TRANSITION_DUCT}); got Re={re:.0f}"
        )
    n = 0.4 if heating else 0.3
    return 0.023 * re ** 0.8 * pr ** n


def nusselt_sieder_tate(re: float, pr: float, viscosity_ratio: float = 1.0) -> float:
    """Sieder-Tate turbulent duct correlation with viscosity correction.

    ``Nu = 0.027 Re^0.8 Pr^1/3 (mu/mu_wall)^0.14`` — preferred over
    Dittus-Boelter for oils, whose viscosity varies strongly between the
    bulk and the hot wall.
    """
    if re < RE_TRANSITION_DUCT:
        raise ValueError("Sieder-Tate requires turbulent flow")
    if viscosity_ratio <= 0:
        raise ValueError("viscosity ratio must be positive")
    return 0.027 * re ** 0.8 * pr ** (1.0 / 3.0) * viscosity_ratio ** 0.14


def nusselt_duct(re: float, pr: float, heating: bool = True) -> float:
    """Duct-flow Nusselt number with automatic regime selection.

    Laminar below the duct transition Reynolds number, Dittus-Boelter above
    it, with a linear blend over 2300 < Re < 4000 to avoid a discontinuity
    that would trip the nonlinear solvers.
    """
    if re < 0:
        raise ValueError("Reynolds number must be non-negative")
    if re <= RE_TRANSITION_DUCT:
        return nusselt_duct_laminar()
    nu_turb = nusselt_dittus_boelter(max(re, RE_TRANSITION_DUCT), pr, heating)
    if re >= 4000.0:
        return nu_turb
    weight = (re - RE_TRANSITION_DUCT) / (4000.0 - RE_TRANSITION_DUCT)
    return (1.0 - weight) * nusselt_duct_laminar() + weight * nu_turb


def nusselt_pin_bank(re: float, pr: float, turbulence_factor: float = 1.0) -> float:
    """Zukauskas-type correlation for crossflow over a staggered pin bank.

    Piecewise in Reynolds number (based on pin diameter and maximum
    inter-pin velocity):

    ==============  =======================
    Re range        Nu
    ==============  =======================
    0 < Re <= 40    0.75 Re^0.4  Pr^0.36
    40 < Re <= 1e3  0.51 Re^0.5  Pr^0.36
    1e3 < Re <= 2e5 0.26 Re^0.60 Pr^0.36
    ==============  =======================

    (the high-range coefficient is set for continuity at Re = 1e3; the
    textbook 0.35 value carries an additional pitch-ratio factor that is
    below unity for the dense arrays used here)

    ``turbulence_factor`` multiplies the result; it models the paper's
    "fundamentally new design of a heat-sink with original solder pins which
    create a local turbulent flow of the heat-transfer agent" — staggered
    solder pins trip the boundary layer earlier than smooth cylinders, which
    we represent as a calibrated enhancement (SRC's design point is ~1.25;
    1.0 is a plain machined pin bank).
    """
    if re < 0:
        raise ValueError("Reynolds number must be non-negative")
    if pr <= 0:
        raise ValueError("Prandtl number must be positive")
    if turbulence_factor <= 0:
        raise ValueError("turbulence factor must be positive")
    if re == 0:
        base = 0.0
    elif re <= 40.0:
        base = 0.75 * re ** 0.4 * pr ** 0.36
    elif re <= 1.0e3:
        base = 0.51 * re ** 0.5 * pr ** 0.36
    else:
        base = 0.26 * re ** 0.6 * pr ** 0.36
    return turbulence_factor * base


def nusselt_natural_vertical_plate(rayleigh: float, pr: float) -> float:
    """Churchill-Chu correlation for natural convection on a vertical plate.

    Valid over the full Rayleigh range; this is the heat path that remains
    when a pump fails and the oil bath must carry heat by buoyancy alone.
    """
    if rayleigh < 0:
        raise ValueError("Rayleigh number must be non-negative")
    if pr <= 0:
        raise ValueError("Prandtl number must be positive")
    term = (1.0 + (0.492 / pr) ** (9.0 / 16.0)) ** (8.0 / 27.0)
    nu_root = 0.825 + 0.387 * rayleigh ** (1.0 / 6.0) / term
    return nu_root ** 2


def rayleigh(
    delta_t_k: float,
    length_m: float,
    fluid: Fluid,
    temperature_c: float,
    beta_per_k: float = None,
) -> float:
    """Rayleigh number ``Ra = g beta dT L^3 / (nu alpha)``.

    ``beta`` defaults to the ideal-gas value ``1/T_K`` for air and a
    numerical derivative of the density fit for liquids.
    """
    if length_m <= 0:
        raise ValueError("length must be positive")
    if beta_per_k is None:
        beta_per_k = expansion_coefficient(fluid, temperature_c)
    nu = fluid.kinematic_viscosity(temperature_c)
    alpha = fluid.thermal_diffusivity(temperature_c)
    return 9.81 * beta_per_k * abs(delta_t_k) * length_m ** 3 / (nu * alpha)


def expansion_coefficient(fluid: Fluid, temperature_c: float) -> float:
    """Volumetric thermal expansion coefficient ``beta = -(1/rho) d rho/dT``.

    Computed by central difference on the fluid's density fit.
    """
    dt = 0.5
    rho = fluid.density(temperature_c)
    rho_hi = fluid.density(temperature_c + dt)
    rho_lo = fluid.density(temperature_c - dt)
    return -(rho_hi - rho_lo) / (2.0 * dt * rho)


def film_coefficient(nu: float, length_m: float, fluid: Fluid, temperature_c: float) -> float:
    """Heat-transfer coefficient ``h = Nu k / L``, W/(m^2 K)."""
    if length_m <= 0:
        raise ValueError("characteristic length must be positive")
    if nu < 0:
        raise ValueError("Nusselt number must be non-negative")
    return nu * fluid.conductivity(temperature_c) / length_m


def pin_fin_efficiency(
    h_w_m2k: float, pin_diameter_m: float, pin_height_m: float, fin_conductivity_w_mk: float
) -> float:
    """Efficiency of a cylindrical pin fin with an adiabatic tip.

    ``eta = tanh(m L) / (m L)`` with ``m = sqrt(4 h / (k d))``. Applied to
    every pin of the SKAT heatsink design.
    """
    if min(h_w_m2k, pin_diameter_m, pin_height_m, fin_conductivity_w_mk) <= 0:
        raise ValueError("all pin-fin parameters must be positive")
    m = math.sqrt(4.0 * h_w_m2k / (fin_conductivity_w_mk * pin_diameter_m))
    ml = m * pin_height_m
    if ml < 1.0e-9:
        return 1.0
    return math.tanh(ml) / ml


def straight_fin_efficiency(
    h_w_m2k: float, thickness_m: float, height_m: float, fin_conductivity_w_mk: float
) -> float:
    """Efficiency of a straight rectangular fin with an adiabatic tip.

    ``eta = tanh(m L_c) / (m L_c)`` with ``m = sqrt(2 h / (k t))`` and the
    corrected length ``L_c = L + t/2``. Used for the plate-fin air heatsinks
    of the legacy CMs.
    """
    if min(h_w_m2k, thickness_m, height_m, fin_conductivity_w_mk) <= 0:
        raise ValueError("all fin parameters must be positive")
    m = math.sqrt(2.0 * h_w_m2k / (fin_conductivity_w_mk * thickness_m))
    lc = height_m + thickness_m / 2.0
    ml = m * lc
    if ml < 1.0e-9:
        return 1.0
    return math.tanh(ml) / ml


@dataclass(frozen=True)
class FilmResult:
    """A resolved convection film: the correlation inputs and the result.

    Returned by the heatsink models so benchmarks can report not just the
    final resistance but the regime (Re, Nu) that produced it.
    """

    reynolds: float
    prandtl: float
    nusselt: float
    h_w_m2k: float

    def resistance(self, area_m2: float) -> float:
        """Film resistance ``1 / (h A)``, K/W."""
        if area_m2 <= 0:
            raise ValueError("area must be positive")
        if self.h_w_m2k <= 0:
            raise ValueError("film coefficient must be positive to form a resistance")
        return 1.0 / (self.h_w_m2k * area_m2)


def flat_plate_film(
    velocity_m_s: float, length_m: float, fluid: Fluid, temperature_c: float
) -> FilmResult:
    """Resolve the average film over a flat plate of streamwise length L."""
    re = reynolds(velocity_m_s, length_m, fluid, temperature_c)
    pr = fluid.prandtl(temperature_c)
    nu = nusselt_flat_plate(re, pr)
    return FilmResult(re, pr, nu, film_coefficient(nu, length_m, fluid, temperature_c))


def pin_bank_film(
    max_velocity_m_s: float,
    pin_diameter_m: float,
    fluid: Fluid,
    temperature_c: float,
    turbulence_factor: float = 1.0,
) -> FilmResult:
    """Resolve the film over a staggered pin bank (SKAT heatsink geometry)."""
    re = reynolds(max_velocity_m_s, pin_diameter_m, fluid, temperature_c)
    pr = fluid.prandtl(temperature_c)
    nu = nusselt_pin_bank(re, pr, turbulence_factor)
    return FilmResult(re, pr, nu, film_coefficient(nu, pin_diameter_m, fluid, temperature_c))


def duct_film(
    velocity_m_s: float,
    hydraulic_diameter_m: float,
    fluid: Fluid,
    temperature_c: float,
    heating: bool = True,
) -> FilmResult:
    """Resolve the film for internal duct flow (cold plates, HX passages)."""
    re = reynolds(velocity_m_s, hydraulic_diameter_m, fluid, temperature_c)
    pr = fluid.prandtl(temperature_c)
    nu = nusselt_duct(re, pr, heating)
    return FilmResult(re, pr, nu, film_coefficient(nu, hydraulic_diameter_m, fluid, temperature_c))


def natural_vertical_film(
    delta_t_k: float, height_m: float, fluid: Fluid, temperature_c: float
) -> FilmResult:
    """Resolve the natural-convection film on a vertical surface."""
    ra = rayleigh(delta_t_k, height_m, fluid, temperature_c)
    pr = fluid.prandtl(temperature_c)
    nu = nusselt_natural_vertical_plate(ra, pr)
    return FilmResult(0.0, pr, nu, film_coefficient(nu, height_m, fluid, temperature_c))


__all__ = [
    "FilmResult",
    "RE_TRANSITION_DUCT",
    "RE_TRANSITION_PLATE",
    "duct_film",
    "expansion_coefficient",
    "film_coefficient",
    "flat_plate_film",
    "natural_vertical_film",
    "nusselt_dittus_boelter",
    "nusselt_duct",
    "nusselt_duct_laminar",
    "nusselt_flat_plate",
    "nusselt_natural_vertical_plate",
    "nusselt_pin_bank",
    "nusselt_sieder_tate",
    "pin_bank_film",
    "pin_fin_efficiency",
    "rayleigh",
    "reynolds",
    "straight_fin_efficiency",
]
