"""Transient solver for thermal networks.

Integrates ``C_i dT_i/dt = Q_i + sum_j (T_j - T_i)/R_ij`` over the free
nodes. Nodes with zero capacitance are treated as quasi-static (they are
eliminated each step by a local steady solve embedded in the stiff
integrator — in practice we give them a small numerical capacitance and use
an implicit method, which is robust for the stiff networks the machines
produce: a silicon die settles in seconds, an oil bath in tens of minutes).

Used by the failure-injection experiments: what happens to junction
temperatures in the minutes after a circulation pump stops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np
from scipy.integrate import solve_ivp

from repro.thermal.network import NetworkError, ThermalNetwork

#: Numerical capacitance (J/K) substituted for zero-capacitance nodes so the
#: ODE system stays well posed; small enough to be quasi-static next to any
#: physical mass in the machines.
QUASI_STATIC_CAPACITANCE_J_K = 0.5


@dataclass(frozen=True)
class TransientResult:
    """Time histories from a transient solve.

    Attributes
    ----------
    times_s:
        Sample times, seconds.
    temperatures_c:
        Mapping node name -> temperature trace (one value per sample).
    """

    times_s: np.ndarray
    temperatures_c: Dict[str, np.ndarray]

    def final(self) -> Dict[str, float]:
        """Temperatures at the last sample."""
        return {name: float(trace[-1]) for name, trace in self.temperatures_c.items()}

    def peak(self, name: str) -> float:
        """Maximum temperature reached by a node over the run."""
        return float(np.max(self.temperatures_c[name]))

    def time_to_exceed(self, name: str, threshold_c: float) -> Optional[float]:
        """First time the node crosses ``threshold_c``, or None if it never does."""
        trace = self.temperatures_c[name]
        above = np.nonzero(trace >= threshold_c)[0]
        if len(above) == 0:
            return None
        return float(self.times_s[above[0]])


def solve_transient(
    network: ThermalNetwork,
    duration_s: float,
    initial_temperatures_c: Optional[Dict[str, float]] = None,
    heat_schedule: Optional[Callable[[float], Dict[str, float]]] = None,
    samples: int = 200,
) -> TransientResult:
    """Integrate the network over ``duration_s`` seconds.

    Parameters
    ----------
    network:
        The thermal network; boundary nodes stay at their prescribed
        temperatures for the whole run.
    duration_s:
        Run length in seconds.
    initial_temperatures_c:
        Starting temperature per free node. Missing nodes start at the mean
        boundary temperature (a cold start).
    heat_schedule:
        Optional ``f(t) -> {node: heat_w}`` override evaluated continuously;
        nodes not mentioned keep their static heat. This is how failure
        injection changes loads mid-run.
    samples:
        Number of evenly spaced output samples.
    """
    network.validate()
    if duration_s <= 0:
        raise NetworkError("duration must be positive")
    if samples < 2:
        raise NetworkError("need at least 2 output samples")

    free = network.free_nodes
    index = {name: i for i, name in enumerate(free)}
    boundary_t = {name: network.boundary_temperature(name) for name in network.boundary_nodes}
    mean_boundary = float(np.mean(list(boundary_t.values())))

    capacitances = np.array(
        [max(network.capacitance(name), QUASI_STATIC_CAPACITANCE_J_K) for name in free]
    )
    static_heat = np.array([network.heat(name) for name in free])

    # Precompute the resistor incidence for fast RHS evaluation.
    links: List[tuple] = []  # (i, j_or_None, boundary_temp_or_None, conductance)
    for resistor in network.resistors:
        g = 1.0 / resistor.resistance_k_w
        a, b = resistor.node_a, resistor.node_b
        if a in index and b in index:
            links.append((index[a], index[b], None, g))
        elif a in index:
            links.append((index[a], None, boundary_t[b], g))
        elif b in index:
            links.append((index[b], None, boundary_t[a], g))

    def rhs(t: float, temps: np.ndarray) -> np.ndarray:
        heat = static_heat.copy()
        if heat_schedule is not None:
            for name, value in heat_schedule(t).items():
                if name in index:
                    heat[index[name]] = value
        flow = heat.copy()
        for i, j, t_b, g in links:
            if j is None:
                flow[i] += g * (t_b - temps[i])
            else:
                q = g * (temps[j] - temps[i])
                flow[i] += q
                flow[j] -= q
        return flow / capacitances

    t0 = np.full(len(free), mean_boundary)
    if initial_temperatures_c:
        for name, value in initial_temperatures_c.items():
            if name in index:
                t0[index[name]] = value

    times = np.linspace(0.0, duration_s, samples)
    solution = solve_ivp(rhs, (0.0, duration_s), t0, t_eval=times, method="BDF", rtol=1e-6)
    if not solution.success:
        raise NetworkError(f"transient integration failed: {solution.message}")

    traces: Dict[str, np.ndarray] = {}
    for name, i in index.items():
        traces[name] = solution.y[i]
    for name, value in boundary_t.items():
        traces[name] = np.full_like(times, value)
    return TransientResult(times_s=times, temperatures_c=traces)


__all__ = ["QUASI_STATIC_CAPACITANCE_J_K", "TransientResult", "solve_transient"]
