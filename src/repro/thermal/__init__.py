"""Lumped-parameter thermal simulation substrate.

The paper's thermal claims (FPGA overheat under air cooling, junction
temperatures in the oil bath, coolant temperature rise) are all steady-state
or slow-transient phenomena of a network of heat sources, conduction paths
and convection films. This package provides:

- :mod:`repro.thermal.convection` — Nusselt-number correlations for every
  flow configuration the machines use (air over finned sinks, oil through
  pin-fin banks, duct flow, natural convection).
- :mod:`repro.thermal.resistances` — element resistance builders
  (conduction, spreading, interface, film).
- :mod:`repro.thermal.network` — the RC thermal-network container.
- :mod:`repro.thermal.steady` — sparse steady-state solver.
- :mod:`repro.thermal.transient` — transient integrator with event hooks.
"""

from repro.thermal.network import ThermalNetwork, NetworkError
from repro.thermal.steady import solve_steady_state
from repro.thermal.transient import TransientResult, solve_transient
from repro.thermal.stackup import ThermalStack, air_chip_stack, skat_chip_stack
from repro.thermal import convection, resistances

__all__ = [
    "NetworkError",
    "ThermalNetwork",
    "ThermalStack",
    "air_chip_stack",
    "skat_chip_stack",
    "TransientResult",
    "convection",
    "resistances",
    "solve_steady_state",
    "solve_transient",
]
