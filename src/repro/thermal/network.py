"""The RC thermal-network container.

A thermal network is a graph of named nodes connected by thermal
resistances. Nodes are either *free* (their temperature is solved for; they
may carry a heat source and a heat capacitance) or *boundary* (their
temperature is prescribed — the ambient air, the chilled-water supply, the
bulk oil when a subsystem is solved in isolation).

The machines of the paper compile into such networks: each FPGA contributes
junction, case and sink-base nodes; each board contributes a local coolant
node; the CM contributes the bulk-oil node coupled through the plate heat
exchanger to the chilled-water boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


class NetworkError(ValueError):
    """Raised for structurally invalid thermal networks."""


@dataclass
class _Node:
    name: str
    heat_w: float = 0.0
    capacitance_j_k: float = 0.0
    boundary_temperature_c: Optional[float] = None

    @property
    def is_boundary(self) -> bool:
        return self.boundary_temperature_c is not None


@dataclass(frozen=True)
class Resistor:
    """A thermal resistance between two named nodes."""

    node_a: str
    node_b: str
    resistance_k_w: float
    label: str = ""


@dataclass
class ThermalNetwork:
    """A mutable thermal network builder and container.

    Usage::

        net = ThermalNetwork()
        net.add_boundary("ambient", 25.0)
        net.add_node("junction", heat_w=91.0)
        net.add_resistance("junction", "ambient", 0.27)
        temps = solve_steady_state(net)

    Node names are unique; adding a duplicate raises :class:`NetworkError`.
    """

    _nodes: Dict[str, _Node] = field(default_factory=dict)
    _resistors: List[Resistor] = field(default_factory=list)

    def add_node(self, name: str, heat_w: float = 0.0, capacitance_j_k: float = 0.0) -> None:
        """Add a free node with an optional heat source and capacitance."""
        self._check_new(name)
        if capacitance_j_k < 0:
            raise NetworkError(f"node {name!r}: capacitance must be non-negative")
        self._nodes[name] = _Node(name, heat_w=heat_w, capacitance_j_k=capacitance_j_k)

    def add_boundary(self, name: str, temperature_c: float) -> None:
        """Add a fixed-temperature boundary node."""
        self._check_new(name)
        self._nodes[name] = _Node(name, boundary_temperature_c=temperature_c)

    def add_resistance(
        self, node_a: str, node_b: str, resistance_k_w: float, label: str = ""
    ) -> None:
        """Connect two existing nodes with a thermal resistance (K/W)."""
        for name in (node_a, node_b):
            if name not in self._nodes:
                raise NetworkError(f"unknown node {name!r}")
        if node_a == node_b:
            raise NetworkError(f"self-loop on node {node_a!r}")
        if resistance_k_w <= 0:
            raise NetworkError(
                f"resistance {node_a!r}-{node_b!r} must be positive, got {resistance_k_w}"
            )
        self._resistors.append(Resistor(node_a, node_b, resistance_k_w, label))

    def set_heat(self, name: str, heat_w: float) -> None:
        """Update the heat source of a free node (power model coupling)."""
        node = self._require(name)
        if node.is_boundary:
            raise NetworkError(f"cannot set heat on boundary node {name!r}")
        node.heat_w = heat_w

    def set_boundary_temperature(self, name: str, temperature_c: float) -> None:
        """Update the prescribed temperature of a boundary node."""
        node = self._require(name)
        if not node.is_boundary:
            raise NetworkError(f"{name!r} is not a boundary node")
        node.boundary_temperature_c = temperature_c

    def heat(self, name: str) -> float:
        """Heat injected at a node, W."""
        return self._require(name).heat_w

    def capacitance(self, name: str) -> float:
        """Heat capacitance of a node, J/K."""
        return self._require(name).capacitance_j_k

    def is_boundary(self, name: str) -> bool:
        """Whether the named node has a prescribed temperature."""
        return self._require(name).is_boundary

    def boundary_temperature(self, name: str) -> float:
        """Prescribed temperature of a boundary node, Celsius."""
        node = self._require(name)
        if node.boundary_temperature_c is None:
            raise NetworkError(f"{name!r} is not a boundary node")
        return node.boundary_temperature_c

    @property
    def node_names(self) -> List[str]:
        """All node names in insertion order."""
        return list(self._nodes)

    @property
    def free_nodes(self) -> List[str]:
        """Names of the nodes whose temperature is solved for."""
        return [n.name for n in self._nodes.values() if not n.is_boundary]

    @property
    def boundary_nodes(self) -> List[str]:
        """Names of the fixed-temperature nodes."""
        return [n.name for n in self._nodes.values() if n.is_boundary]

    @property
    def resistors(self) -> List[Resistor]:
        """All resistive connections."""
        return list(self._resistors)

    def total_heat_w(self) -> float:
        """Sum of all injected heat, W (what must leave via boundaries)."""
        return sum(n.heat_w for n in self._nodes.values())

    def neighbours(self, name: str) -> Iterator[Tuple[str, float]]:
        """Yield ``(other_node, resistance)`` for every resistor touching ``name``."""
        self._require(name)
        for resistor in self._resistors:
            if resistor.node_a == name:
                yield resistor.node_b, resistor.resistance_k_w
            elif resistor.node_b == name:
                yield resistor.node_a, resistor.resistance_k_w

    def validate(self) -> None:
        """Check the network is solvable.

        Requirements: at least one boundary node, and every free node
        connected (directly or transitively) to some boundary — otherwise
        injected heat has nowhere to go and the steady state is undefined.
        """
        if not self._nodes:
            raise NetworkError("empty network")
        boundaries = self.boundary_nodes
        if not boundaries:
            raise NetworkError("network has no boundary (fixed-temperature) node")
        reached = set(boundaries)
        frontier = list(boundaries)
        while frontier:
            current = frontier.pop()
            for other, _ in self.neighbours(current):
                if other not in reached:
                    reached.add(other)
                    frontier.append(other)
        unreached = [n for n in self._nodes if n not in reached]
        if unreached:
            raise NetworkError(
                "nodes not connected to any boundary: " + ", ".join(sorted(unreached))
            )

    def _check_new(self, name: str) -> None:
        if not name:
            raise NetworkError("node name must be non-empty")
        if name in self._nodes:
            raise NetworkError(f"duplicate node name {name!r}")

    def _require(self, name: str) -> _Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None


__all__ = ["NetworkError", "Resistor", "ThermalNetwork"]
