"""Thermal-resistance element builders.

Every heat path in the machines decomposes into a series/parallel network of
these elements: die-to-case conduction, thermal-interface layers ("the heat
interface is a layer of heat-conducting medium ... used for reduction of
heat resistance between two contacting surfaces", Section 2), heat-spreading
into the sink base, and the convection film into the heat-transfer agent.

All functions return resistances in K/W.
"""

from __future__ import annotations

import math


def conduction_slab(thickness_m: float, conductivity_w_mk: float, area_m2: float) -> float:
    """1-D conduction through a slab: ``R = t / (k A)``."""
    if thickness_m < 0:
        raise ValueError("thickness must be non-negative")
    if conductivity_w_mk <= 0 or area_m2 <= 0:
        raise ValueError("conductivity and area must be positive")
    return thickness_m / (conductivity_w_mk * area_m2)


def conduction_cylinder(
    inner_radius_m: float, outer_radius_m: float, conductivity_w_mk: float, length_m: float
) -> float:
    """Radial conduction through a cylinder shell: ``ln(ro/ri)/(2 pi k L)``."""
    if not 0 < inner_radius_m < outer_radius_m:
        raise ValueError("need 0 < inner radius < outer radius")
    if conductivity_w_mk <= 0 or length_m <= 0:
        raise ValueError("conductivity and length must be positive")
    return math.log(outer_radius_m / inner_radius_m) / (
        2.0 * math.pi * conductivity_w_mk * length_m
    )


def convection_film(h_w_m2k: float, area_m2: float) -> float:
    """Film resistance ``R = 1 / (h A)``."""
    if h_w_m2k <= 0 or area_m2 <= 0:
        raise ValueError("film coefficient and area must be positive")
    return 1.0 / (h_w_m2k * area_m2)


def interface(
    resistivity_m2k_w: float, area_m2: float, thickness_m: float = 0.0, conductivity_w_mk: float = 1.0
) -> float:
    """Thermal-interface-material resistance.

    The sum of a contact term (``resistivity / A``, with resistivity in
    m^2 K/W — the datasheet "thermal impedance") and an optional bulk term
    for a bond line of finite thickness.
    """
    if resistivity_m2k_w < 0:
        raise ValueError("interface resistivity must be non-negative")
    if area_m2 <= 0:
        raise ValueError("area must be positive")
    bulk = conduction_slab(thickness_m, conductivity_w_mk, area_m2) if thickness_m > 0 else 0.0
    return resistivity_m2k_w / area_m2 + bulk


def spreading(
    source_area_m2: float,
    plate_area_m2: float,
    plate_thickness_m: float,
    plate_conductivity_w_mk: float,
    h_sink_w_m2k: float,
) -> float:
    """Spreading resistance from a centred heat source into a larger plate.

    Lee, Song, Au & Moran closed-form approximation on equivalent circular
    geometry. This is what makes a thin heatsink base on a 42.5 mm FPGA
    package meaningfully worse than a thick one, and is the term that the
    SKAT "low-height heatsink" design must beat with wetted-area instead of
    copper mass.

    Parameters
    ----------
    source_area_m2:
        Footprint of the heat source (the FPGA die or lid).
    plate_area_m2:
        Footprint of the plate it spreads into (the sink base).
    plate_thickness_m:
        Plate thickness.
    plate_conductivity_w_mk:
        Plate conductivity.
    h_sink_w_m2k:
        Effective film coefficient on the far side of the plate (averaged
        over the plate area, fins included).
    """
    if source_area_m2 <= 0 or plate_area_m2 <= 0:
        raise ValueError("areas must be positive")
    if source_area_m2 > plate_area_m2:
        raise ValueError("source cannot be larger than the plate")
    if plate_thickness_m <= 0 or plate_conductivity_w_mk <= 0 or h_sink_w_m2k <= 0:
        raise ValueError("thickness, conductivity and film coefficient must be positive")
    r_source = math.sqrt(source_area_m2 / math.pi)
    r_plate = math.sqrt(plate_area_m2 / math.pi)
    epsilon = r_source / r_plate
    if epsilon >= 1.0 - 1e-12:
        return 0.0
    tau = plate_thickness_m / r_plate
    biot = h_sink_w_m2k * r_plate / plate_conductivity_w_mk
    lam = math.pi + 1.0 / (math.sqrt(math.pi) * epsilon)
    tanh_lt = math.tanh(lam * tau)
    phi = (tanh_lt + lam / biot) / (1.0 + (lam / biot) * tanh_lt)
    psi_max = epsilon * tau / math.sqrt(math.pi) + (1.0 - epsilon) * phi / math.sqrt(math.pi)
    return psi_max / (plate_conductivity_w_mk * r_source * math.sqrt(math.pi))


def series(*resistances: float) -> float:
    """Total resistance of elements in series."""
    if not resistances:
        raise ValueError("need at least one resistance")
    if any(r < 0 for r in resistances):
        raise ValueError("resistances must be non-negative")
    return sum(resistances)


def parallel(*resistances: float) -> float:
    """Total resistance of elements in parallel."""
    if not resistances:
        raise ValueError("need at least one resistance")
    if any(r <= 0 for r in resistances):
        raise ValueError("parallel resistances must be positive")
    return 1.0 / sum(1.0 / r for r in resistances)


__all__ = [
    "conduction_cylinder",
    "conduction_slab",
    "convection_film",
    "interface",
    "parallel",
    "series",
    "spreading",
]
