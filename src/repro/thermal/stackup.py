"""Declarative chip thermal stacks with per-layer budgets.

The machine models compute a single junction-to-coolant resistance; when a
design review asks *where the kelvins go*, this module answers: build the
stack layer by layer (die, TIM1, lid, TIM2, sink base, fins, film) and get
the resistance budget with per-layer temperature drops at a given power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class Layer:
    """One resistance element of a chip thermal stack."""

    name: str
    resistance_k_w: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("layer name must be non-empty")
        if self.resistance_k_w < 0:
            raise ValueError("layer resistance must be non-negative")


@dataclass
class ThermalStack:
    """A series stack from junction to coolant.

    Build with :meth:`add` (or the convenience builders below), then query
    the total resistance and the per-layer budget.
    """

    name: str
    _layers: List[Layer] = field(default_factory=list)

    def add(self, name: str, resistance_k_w: float) -> "ThermalStack":
        """Append a layer; returns self for chaining."""
        self._layers.append(Layer(name, resistance_k_w))
        return self

    @property
    def layers(self) -> List[Layer]:
        """The stack from junction downward."""
        return list(self._layers)

    @property
    def total_resistance_k_w(self) -> float:
        """Junction-to-coolant resistance, K/W."""
        if not self._layers:
            raise ValueError(f"{self.name}: empty stack")
        return sum(layer.resistance_k_w for layer in self._layers)

    def junction_c(self, power_w: float, coolant_c: float) -> float:
        """Junction temperature at a power and coolant temperature."""
        if power_w < 0:
            raise ValueError("power must be non-negative")
        return coolant_c + power_w * self.total_resistance_k_w

    def budget(self, power_w: float) -> List[Tuple[str, float, float]]:
        """Per-layer ``(name, delta_T, fraction_of_total)`` at a power."""
        total = self.total_resistance_k_w
        return [
            (layer.name, power_w * layer.resistance_k_w, layer.resistance_k_w / total)
            for layer in self._layers
        ]

    def dominant_layer(self) -> Layer:
        """The layer eating the most budget — the one to attack first."""
        if not self._layers:
            raise ValueError(f"{self.name}: empty stack")
        return max(self._layers, key=lambda l: l.resistance_k_w)

    def render(self, power_w: float, coolant_c: float) -> str:
        """Text budget table for reports."""
        lines = [
            f"{self.name}: {power_w:.0f} W into {coolant_c:.1f} C coolant -> "
            f"junction {self.junction_c(power_w, coolant_c):.1f} C"
        ]
        for name, delta, fraction in self.budget(power_w):
            lines.append(f"  {name:24s} {delta:6.2f} K  ({fraction:5.1%})")
        return "\n".join(lines)


def skat_chip_stack(oil_velocity_m_s: float = 0.18, oil_c: float = 29.0) -> ThermalStack:
    """The SKAT chip stack at its design point, layer by layer.

    Reuses the exact component models of the machine (family theta_jc, SRC
    interface, calibrated pin-fin sink), so the stack's total matches the
    module solver's chip resistance.
    """
    from repro.core.skat import skat_heatsink
    from repro.core.tim import SRC_OIL_STABLE_INTERFACE
    from repro.devices.families import KINTEX_ULTRASCALE_KU095
    from repro.fluids.library import MINERAL_OIL_MD45

    family = KINTEX_ULTRASCALE_KU095
    sink = skat_heatsink()
    perf = sink.performance(oil_velocity_m_s, MINERAL_OIL_MD45, oil_c)
    stack = ThermalStack("SKAT XCKU095 in oil")
    stack.add("junction -> case (theta_jc)", family.theta_jc_k_w)
    stack.add(
        "SRC oil-stable interface",
        SRC_OIL_STABLE_INTERFACE.resistance_k_w(family.die_area_m2),
    )
    stack.add("sink base spreading", perf.spreading_resistance_k_w)
    stack.add("pin-fin film to oil", perf.convection_resistance_k_w)
    return stack


def air_chip_stack(channel_velocity_m_s: float = 4.0, air_c: float = 25.0) -> ThermalStack:
    """The Taygeta chip stack in the legacy air cooler."""
    from repro.core.heatsink import StraightFinAirSink
    from repro.core.tim import CONVENTIONAL_PASTE
    from repro.devices.families import VIRTEX7_X485T
    from repro.fluids.library import AIR

    family = VIRTEX7_X485T
    sink = StraightFinAirSink()
    perf = sink.performance(channel_velocity_m_s, AIR, air_c)
    stack = ThermalStack("Taygeta XC7VX485T in air")
    stack.add("junction -> case (theta_jc)", family.theta_jc_k_w)
    stack.add(
        "thermal paste", CONVENTIONAL_PASTE.resistance_k_w(family.die_area_m2)
    )
    stack.add("sink base spreading", perf.spreading_resistance_k_w)
    stack.add("fin film to air", perf.convection_resistance_k_w)
    return stack


__all__ = ["Layer", "ThermalStack", "air_chip_stack", "skat_chip_stack"]
