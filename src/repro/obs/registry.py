"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` is the single reporting surface for every
instrumented layer (hydraulics solver, control monitor, module/rack
simulators, sweep runner, fault campaigns). The **default** process
registry is a :class:`NullRegistry` whose every operation is a no-op on a
shared immutable object — instrumentation left in a hot path costs one
method call, which the overhead-budget test pins below 5% of a hydraulic
solve loop. Install a live registry around the code you want measured::

    from repro.obs import MetricsRegistry, use_registry, to_json

    with use_registry(MetricsRegistry()) as obs:
        run_campaign(...)
        print(to_json(obs))

Metric values (counters/gauges/histograms) are deterministic for a seeded
scenario and are what the exporters serialize byte-stably; spans and
profile hooks carry wall-clock timing and live outside the deterministic
export (see :mod:`repro.obs.spans` and :mod:`repro.obs.profile`).
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.obs.profile import HotPath, ProfileStore
from repro.obs.spans import NULL_SPAN, Span, SpanRecord, TraceStore

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "get_registry",
    "sanitize_metric_name",
    "set_registry",
    "use_registry",
]

#: Default histogram bucket edges (a generic 1-2-5 decade ladder).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise ValueError(
            f"invalid metric name {name!r} (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
        )
    return name


def sanitize_metric_name(name: str) -> str:
    """Coerce an arbitrary label into a legal metric name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name or "")
    if not cleaned or not _NAME_RE.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


class Counter:
    """A monotone accumulating counter."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = _check_name(name)
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add a non-negative amount."""
        if amount < 0:
            raise ValueError("counters only accumulate; amount must be >= 0")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """A point-in-time value that can move either way."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = _check_name(name)
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """A fixed-bucket histogram (Prometheus-style cumulative export).

    ``buckets`` are the finite upper edges, strictly increasing; an
    implicit ``+Inf`` overflow bucket always exists. Observations also
    accumulate ``sum`` and ``count``.
    """

    __slots__ = ("name", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = _check_name(name)
        edges = tuple(float(edge) for edge in buckets)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        for edge in edges:
            if not math.isfinite(edge):
                raise ValueError("bucket edges must be finite")
        for lo, hi in zip(edges, edges[1:]):
            if not lo < hi:
                raise ValueError(
                    f"bucket edges must be strictly increasing, got {lo} >= {hi}"
                )
        self.buckets = edges
        self._lock = threading.Lock()
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, overflow last."""
        with self._lock:
            return list(self._counts)

    def merge(self, counts: Sequence[int], total: float, count: int) -> None:
        """Fold another histogram's per-bucket counts into this one.

        ``counts`` must carry one entry per finite edge plus the overflow
        bucket, in the same edge order — the cross-process merge refuses
        to mix histograms of different shape rather than misbucket.
        """
        if len(counts) != len(self.buckets) + 1:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge {len(counts)} buckets "
                f"into {len(self.buckets) + 1}"
            )
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += int(c)
            self._sum += float(total)
            self._count += int(count)

    def cumulative_counts(self) -> List[int]:
        """Cumulative counts per edge plus ``+Inf`` (Prometheus ``le``)."""
        counts = self.bucket_counts()
        out, running = [], 0
        for c in counts:
            running += c
            out.append(running)
        return out

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0


class MetricsRegistry:
    """The single reporting surface for every instrumented layer.

    Metric handles are created on first use and re-registration returns
    the existing handle (a name may hold only one metric type). The
    registry also owns the trace store (:meth:`span`) and profile store
    (:meth:`profile`, :meth:`hot_paths`).
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._traces = TraceStore()
        self._profiles = ProfileStore()

    # -- registration -------------------------------------------------

    def _claim(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other, table in owners.items():
            if other != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other}"
                )

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._claim(name, "counter")
                metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._claim(name, "gauge")
                metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._claim(name, "histogram")
                metric = self._histograms[name] = Histogram(name, buckets)
        return metric

    # -- convenience hot-path operations ------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment a counter by name."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge by name."""
        self.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Observe a value into a histogram by name."""
        self.histogram(name, buckets).observe(value)

    def merge_counters(self, values: Mapping[str, float], prefix: str = "") -> None:
        """Accumulate a batch of counter values (e.g. per-run totals)."""
        for name, value in values.items():
            if value:
                self.inc(prefix + sanitize_metric_name(name), value)

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`as_dict` snapshot into this one.

        The cross-process join of the sweep runner: each worker process
        runs its shard under a fresh registry, ships the snapshot back,
        and the parent merges the shards **in shard order** so the merged
        registry is deterministic. Counters accumulate, gauges take the
        snapshot's value (so applying shards in order reproduces
        last-writer-wins), histograms merge per-bucket and must agree on
        their edges. Spans and profiles are wall-clock state and are not
        part of a snapshot.
        """
        for name, value in snapshot.get("counters", {}).items():
            if value:
                self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, hist in snapshot.get("histograms", {}).items():
            target = self.histogram(name, hist["edges"])
            if tuple(target.buckets) != tuple(float(e) for e in hist["edges"]):
                raise ValueError(
                    f"histogram {name!r}: snapshot edges {hist['edges']} do not "
                    f"match registered edges {list(target.buckets)}"
                )
            target.merge(hist["counts"], hist["sum"], hist["count"])

    # -- tracing / profiling ------------------------------------------

    def span(self, name: str, **labels: Any) -> Span:
        """A new timing span nesting under this thread's open span."""
        return Span(self._traces, name, labels)

    def traces(self) -> Dict[str, List[SpanRecord]]:
        """Finished root spans grouped per worker thread."""
        return self._traces.traces()

    def current_span(self) -> Optional[SpanRecord]:
        """The calling thread's innermost open span record, if any."""
        return self._traces.current()

    def profile(self, name: str):
        """Context manager accumulating wall time into a hot path."""
        return self._profiles.record(name)

    def add_profile(self, name: str, elapsed_s: float, calls: int = 1) -> None:
        """Fold an externally timed batch into a hot path."""
        self._profiles.add(name, elapsed_s, calls)

    def hot_paths(self, top_n: Optional[int] = None) -> List[HotPath]:
        """Hot paths ranked by total wall time."""
        return self._profiles.hot_paths(top_n)

    # -- lifecycle / introspection ------------------------------------

    def reset(self) -> None:
        """Zero every metric and drop all traces and profiles."""
        with self._lock:
            metrics = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            )
        for metric in metrics:
            metric.reset()
        self._traces.clear()
        self._profiles.clear()

    def as_dict(self) -> Dict[str, Any]:
        """Deterministic plain-dict snapshot of every metric (sorted)."""
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            gauges = {name: g.value for name, g in self._gauges.items()}
            histograms = {
                name: {
                    "edges": list(h.buckets),
                    "counts": h.bucket_counts(),
                    "sum": h.sum,
                    "count": h.count,
                }
                for name, h in self._histograms.items()
            }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }


class _NullMetric:
    """Shared no-op stand-in for every metric type."""

    __slots__ = ()
    name = "null"
    value = 0.0
    count = 0
    sum = 0.0
    buckets: Tuple[float, ...] = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def reset(self) -> None:
        pass

    def bucket_counts(self) -> List[int]:
        return []

    def cumulative_counts(self) -> List[int]:
        return []


_NULL_METRIC = _NullMetric()


class _NullProfileContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_PROFILE = _NullProfileContext()


class NullRegistry:
    """The near-zero-cost default: every operation is a no-op.

    Instrumented hot paths check :attr:`enabled` before doing any
    per-call bookkeeping (snapshots, dict copies); the plain ``inc`` /
    ``span`` / ``profile`` calls themselves degrade to a method call on a
    shared object.
    """

    enabled = False

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> _NullMetric:
        return _NULL_METRIC

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        pass

    def merge_counters(self, values: Mapping[str, float], prefix: str = "") -> None:
        pass

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        pass

    def span(self, name: str, **labels: Any):
        return NULL_SPAN

    def traces(self) -> Dict[str, List[SpanRecord]]:
        return {}

    def current_span(self) -> Optional[SpanRecord]:
        return None

    def profile(self, name: str) -> _NullProfileContext:
        return _NULL_PROFILE

    def add_profile(self, name: str, elapsed_s: float, calls: int = 1) -> None:
        pass

    def hot_paths(self, top_n: Optional[int] = None) -> List[HotPath]:
        return []

    def reset(self) -> None:
        pass

    def as_dict(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The shared no-op registry (the process default).
NULL_REGISTRY = NullRegistry()

_current: Any = NULL_REGISTRY
_current_lock = threading.Lock()


def get_registry() -> Any:
    """The process-wide registry (the no-op default unless installed)."""
    return _current


def set_registry(registry: Optional[Any]) -> Any:
    """Install a registry process-wide; ``None`` restores the no-op default.

    Returns the previously installed registry.
    """
    global _current
    with _current_lock:
        previous = _current
        _current = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None) -> Iterator[Any]:
    """Scope a registry installation: install, yield it, restore.

    With no argument a fresh :class:`MetricsRegistry` is created — the
    common "measure just this block" idiom.
    """
    installed = registry if registry is not None else MetricsRegistry()
    previous = set_registry(installed)
    try:
        yield installed
    finally:
        set_registry(previous)
