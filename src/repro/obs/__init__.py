"""Unified observability layer: metrics registry, span tracing, profiling.

Every instrumented layer of the stack — the hydraulic solver, the control
monitor, the module/rack simulators, the sweep runner and the fault
campaigns — reports through one process-wide registry:

- :mod:`repro.obs.registry` — counters, gauges, fixed-bucket histograms,
  and the near-zero-cost no-op default registry;
- :mod:`repro.obs.spans` — nested timing spans with per-worker traces;
- :mod:`repro.obs.profile` — wall-time + call-count hot-path hooks;
- :mod:`repro.obs.export` — byte-stable Prometheus and canonical JSON
  exporters over the deterministic metric state.

See ``docs/OBSERVABILITY.md`` for the full tour.
"""

from repro.obs.export import to_json, to_prometheus, write_json, write_prometheus
from repro.obs.profile import HotPath, ProfileStore, format_hot_paths, profiled
from repro.obs.registry import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    get_registry,
    sanitize_metric_name,
    set_registry,
    use_registry,
)
from repro.obs.spans import NULL_SPAN, Span, SpanRecord, TraceStore, format_trace

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "HotPath",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NullRegistry",
    "ProfileStore",
    "Span",
    "SpanRecord",
    "TraceStore",
    "format_hot_paths",
    "format_trace",
    "get_registry",
    "profiled",
    "sanitize_metric_name",
    "set_registry",
    "to_json",
    "to_prometheus",
    "use_registry",
    "write_json",
    "write_prometheus",
]
