"""Lightweight profiling hooks: wall time + call count per hot path.

A :class:`ProfileStore` accumulates ``(calls, total wall seconds)`` per
named hot path; :meth:`hot_paths` ranks them for the top-N table printed
by ``scripts/run_profile.py``. Like spans, profile data is wall-clock
timing and is excluded from the deterministic metric exports.

Use through the registry::

    obs = get_registry()
    with obs.profile("manifold.solve"):
        system.solve()

or decorate a function with :func:`profiled`, which resolves the process
registry at *call* time (so importing an instrumented module never pins
the registry that was active at import).
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, TypeVar

__all__ = ["HotPath", "ProfileStore", "format_hot_paths", "profiled"]

_F = TypeVar("_F", bound=Callable)


@dataclass(frozen=True)
class HotPath:
    """Aggregated profile of one named hot path."""

    name: str
    calls: int
    total_s: float

    @property
    def mean_s(self) -> float:
        """Mean wall time per call (0 when never called)."""
        return self.total_s / self.calls if self.calls else 0.0


class ProfileStore:
    """Thread-safe accumulator of per-hot-path wall time and call counts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats: Dict[str, List[float]] = {}

    def add(self, name: str, elapsed_s: float, calls: int = 1) -> None:
        """Fold one timed call (or a batch) into a hot path's totals."""
        if not name:
            raise ValueError("hot path name must be non-empty")
        with self._lock:
            stat = self._stats.setdefault(name, [0, 0.0])
            stat[0] += calls
            stat[1] += elapsed_s

    @contextmanager
    def record(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    def hot_paths(self, top_n: Optional[int] = None) -> List[HotPath]:
        """Hot paths sorted by total wall time (name breaks ties)."""
        with self._lock:
            paths = [
                HotPath(name=name, calls=int(stat[0]), total_s=float(stat[1]))
                for name, stat in self._stats.items()
            ]
        paths.sort(key=lambda p: (-p.total_s, p.name))
        return paths if top_n is None else paths[:top_n]

    def clear(self) -> None:
        with self._lock:
            self._stats.clear()


def format_hot_paths(paths: List[HotPath], title: str = "hot paths") -> str:
    """Render a ranked hot-path table as plain text."""
    header = f"{'#':>2}  {'hot path':<40} {'calls':>8} {'total ms':>10} {'mean ms':>10}"
    lines = [title, header, "-" * len(header)]
    for rank, path in enumerate(paths, start=1):
        lines.append(
            f"{rank:>2}  {path.name:<40} {path.calls:>8} "
            f"{path.total_s * 1e3:>10.3f} {path.mean_s * 1e3:>10.4f}"
        )
    if not paths:
        lines.append("(no hot paths recorded)")
    return "\n".join(lines)


def profiled(name: Optional[str] = None) -> Callable[[_F], _F]:
    """Decorator profiling every call of a function into the registry.

    The process registry is looked up per call; under the default no-op
    registry the wrapper adds only a function call and a null context.
    """

    def decorate(fn: _F) -> _F:
        path = name or f"{fn.__module__}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from repro.obs.registry import get_registry

            with get_registry().profile(path):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
