"""Deterministic metric exporters: Prometheus text format and canonical JSON.

Both exporters serialize only the registry's **metric** state (counters,
gauges, histograms) — the quantities that are deterministic for a seeded
scenario — with sorted names, fixed separators and a stable float format,
so two same-seed runs produce byte-identical output. Spans and profile
hooks carry wall-clock timing and are deliberately excluded; render those
with :func:`repro.obs.spans.format_trace` and
:func:`repro.obs.profile.format_hot_paths` instead.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Sequence, Union

__all__ = ["to_json", "to_prometheus", "write_json", "write_prometheus"]

#: Decimal places metric values are rounded to before export; far below
#: any physical tolerance in the models, and what makes float-valued
#: gauges byte-stable across accumulation orderings.
EXPORT_DIGITS = 9


def _fmt(value: float) -> str:
    """Stable scalar rendering: integral floats print as integers."""
    value = round(float(value), EXPORT_DIGITS)
    if value == int(value):
        return str(int(value))
    return repr(value)


def _num(value: float) -> Union[int, float]:
    """Stable JSON number: integral floats become ints."""
    value = round(float(value), EXPORT_DIGITS)
    if value == int(value):
        return int(value)
    return value


def _filtered(data: Dict[str, Any], exclude: Sequence[str]) -> Dict[str, Any]:
    """The ``as_dict`` payload with excluded name prefixes dropped."""
    if not exclude:
        return data
    return {
        section: {
            name: value
            for name, value in metrics.items()
            if not any(name.startswith(prefix) for prefix in exclude)
        }
        for section, metrics in data.items()
    }


def to_prometheus(registry: Any, exclude: Sequence[str] = ()) -> str:
    """The registry's metrics in Prometheus text exposition format.

    Metric families are sorted by name; histograms expose cumulative
    ``_bucket{le=...}`` series plus ``_sum`` and ``_count``. ``exclude``
    drops metrics whose name starts with any given prefix — e.g.
    ``("sweep_backend_",)`` when comparing runs that intentionally differ
    only in which sweep backend executed them.
    """
    data = _filtered(registry.as_dict(), exclude)
    lines = []
    for name, value in data["counters"].items():
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_fmt(value)}")
    for name, value in data["gauges"].items():
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(value)}")
    for name, hist in data["histograms"].items():
        lines.append(f"# TYPE {name} histogram")
        running = 0
        for edge, count in zip(hist["edges"], hist["counts"]):
            running += count
            lines.append(f'{name}_bucket{{le="{_fmt(edge)}"}} {running}')
        running += hist["counts"][-1] if hist["counts"] else 0
        lines.append(f'{name}_bucket{{le="+Inf"}} {running}')
        lines.append(f"{name}_sum {_fmt(hist['sum'])}")
        lines.append(f"{name}_count {hist['count']}")
    return "\n".join(lines) + "\n"


def to_json(registry: Any, exclude: Sequence[str] = ()) -> str:
    """Canonical JSON export: sorted keys, fixed separators, rounded floats.

    ``exclude`` drops metrics by name prefix, as in :func:`to_prometheus`.
    """
    data = _filtered(registry.as_dict(), exclude)
    payload = {
        "counters": {k: _num(v) for k, v in data["counters"].items()},
        "gauges": {k: _num(v) for k, v in data["gauges"].items()},
        "histograms": {
            name: {
                "edges": [_num(e) for e in hist["edges"]],
                "counts": list(hist["counts"]),
                "sum": _num(hist["sum"]),
                "count": hist["count"],
            }
            for name, hist in data["histograms"].items()
        },
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def write_json(registry: Any, path: Union[str, Path]) -> Path:
    """Write the canonical JSON export (trailing newline) to ``path``."""
    path = Path(path)
    path.write_text(to_json(registry) + "\n")
    return path


def write_prometheus(registry: Any, path: Union[str, Path]) -> Path:
    """Write the Prometheus text export to ``path``."""
    path = Path(path)
    path.write_text(to_prometheus(registry))
    return path
