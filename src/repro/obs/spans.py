"""Structured timing spans with parent/child nesting.

A :class:`Span` is a context manager that measures one region of work and
records it as a :class:`SpanRecord`. Spans opened while another span is
active on the same thread become its children, so a run's trace is a tree
whose child durations nest inside their parent's by construction.

The active-span stack is **thread-local**: concurrent sweep workers each
build their own trace tree and finished root spans land in the
:class:`TraceStore` keyed by worker thread, never interleaved across
workers. Trace data is wall-clock timing and therefore deliberately *not*
part of the deterministic metric exports (:mod:`repro.obs.export`); render
it with :func:`format_trace`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "NULL_SPAN",
    "Span",
    "SpanRecord",
    "TraceStore",
    "format_trace",
]


@dataclass
class SpanRecord:
    """One finished (or in-flight) span.

    ``duration_s`` is 0 until the span closes; ``status`` is ``"ok"`` or
    ``"error"`` with ``error`` carrying the exception repr on the error
    path. ``depth`` is 0 for a root span, 1 for its children, and so on.
    """

    name: str
    labels: Tuple[Tuple[str, Any], ...] = ()
    start_s: float = 0.0
    duration_s: float = 0.0
    depth: int = 0
    status: str = "ok"
    error: Optional[str] = None
    children: List["SpanRecord"] = field(default_factory=list)

    def walk(self) -> List["SpanRecord"]:
        """This span and every descendant, depth-first."""
        out = [self]
        for child in self.children:
            out.extend(child.walk())
        return out


class TraceStore:
    """Finished root spans, grouped per worker thread.

    Each thread owns a private active-span stack (``threading.local``), so
    spans from concurrent workers can never nest into each other; a root
    span that closes is appended to its worker's list under a lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots: Dict[str, List[SpanRecord]] = {}

    def _stack(self) -> List[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @staticmethod
    def worker_key() -> str:
        """The trace-group key of the calling thread."""
        thread = threading.current_thread()
        return f"{thread.name}:{thread.ident}"

    def push(self, record: SpanRecord) -> None:
        stack = self._stack()
        record.depth = len(stack)
        stack.append(record)

    def pop(self, record: SpanRecord) -> None:
        stack = self._stack()
        if not stack or stack[-1] is not record:
            raise RuntimeError(
                f"span {record.name!r} closed out of order on this thread"
            )
        stack.pop()
        if stack:
            stack[-1].children.append(record)
        else:
            key = self.worker_key()
            with self._lock:
                self._roots.setdefault(key, []).append(record)

    def current(self) -> Optional[SpanRecord]:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def traces(self) -> Dict[str, List[SpanRecord]]:
        """Finished root spans per worker key (a shallow copy)."""
        with self._lock:
            return {key: list(roots) for key, roots in self._roots.items()}

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()


class Span:
    """Context manager timing one region; nests under the open span.

    Created via :meth:`repro.obs.registry.MetricsRegistry.span`. Closing
    on an exception records ``status="error"`` (with the exception repr)
    and re-raises — a span can never be left open by an error path.
    """

    __slots__ = ("record", "_store", "_t0")

    def __init__(self, store: TraceStore, name: str, labels: Dict[str, Any]):
        if not name:
            raise ValueError("span name must be non-empty")
        self._store = store
        self.record = SpanRecord(name=name, labels=tuple(sorted(labels.items())))
        self._t0 = 0.0

    def annotate(self, **labels: Any) -> "Span":
        """Attach extra labels to the span's record."""
        merged = dict(self.record.labels)
        merged.update(labels)
        self.record.labels = tuple(sorted(merged.items()))
        return self

    def __enter__(self) -> "Span":
        self._store.push(self.record)
        self._t0 = time.perf_counter()
        self.record.start_s = self._t0
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.record.duration_s = time.perf_counter() - self._t0
        if exc is not None:
            self.record.status = "error"
            self.record.error = repr(exc)
        self._store.pop(self.record)
        return False


class _NullSpan:
    """A reusable, stateless no-op span (the disabled-registry default)."""

    __slots__ = ()

    def annotate(self, **labels: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The shared no-op span handed out by the null registry.
NULL_SPAN = _NullSpan()


def format_trace(record: SpanRecord) -> str:
    """Render one trace tree as an indented text block."""
    lines = []
    for span in record.walk():
        indent = "  " * span.depth
        label = "".join(
            f" {key}={value}" for key, value in span.labels
        )
        suffix = f" [{span.status}]" if span.status != "ok" else ""
        lines.append(
            f"{indent}{span.name}{label} {span.duration_s * 1e3:.3f} ms{suffix}"
        )
    return "\n".join(lines)
