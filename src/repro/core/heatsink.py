"""Heatsink designs: the SKAT pin-fin sink and the baselines it replaced.

The paper's heat-engineering contribution (Section 2): "a fundamentally new
design of a heat-sink with original solder pins which create a local
turbulent flow of the heat-transfer agent", low-height so 12-16 boards pack
into a 3U module. We model it as a staggered pin bank with a turbulence
enhancement factor, and provide the two baselines the ablation benches
compare against:

- a plain flat cold surface in oil flow (what you get with no sink at all),
- the classic straight-fin air heatsink of the Rigel-2 / Taygeta CMs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fluids.properties import Fluid
from repro.thermal.convection import (
    FilmResult,
    flat_plate_film,
    pin_bank_film,
    pin_fin_efficiency,
    straight_fin_efficiency,
)
from repro.thermal.resistances import spreading

#: Conductivities of the usual sink materials, W/(m K).
COPPER_W_MK = 390.0
ALUMINUM_W_MK = 200.0

#: Calibrated enhancement of the SRC solder-pin surface over a smooth
#: machined pin bank (the "original solder pins" of Section 2).
SOLDER_PIN_TURBULENCE_FACTOR = 1.25


@dataclass(frozen=True)
class SinkPerformance:
    """Resolved thermal/hydraulic performance of a heatsink at a flow."""

    film: FilmResult
    fin_efficiency: float
    wetted_area_m2: float
    effective_conductance_w_k: float
    spreading_resistance_k_w: float
    convection_resistance_k_w: float
    pressure_drop_pa: float

    @property
    def total_resistance_k_w(self) -> float:
        """Sink-base (die footprint) to coolant resistance, K/W."""
        return self.spreading_resistance_k_w + self.convection_resistance_k_w


def _stagnant(wetted_area_m2: float) -> SinkPerformance:
    """The no-flow limit: no forced film, no pressure drop."""
    return SinkPerformance(
        film=FilmResult(reynolds=0.0, prandtl=1.0, nusselt=0.0, h_w_m2k=0.0),
        fin_efficiency=1.0,
        wetted_area_m2=wetted_area_m2,
        effective_conductance_w_k=0.0,
        spreading_resistance_k_w=0.0,
        convection_resistance_k_w=math.inf,
        pressure_drop_pa=0.0,
    )


@dataclass(frozen=True)
class PinFinHeatSink:
    """The SKAT low-height solder-pin heatsink.

    Geometry: a rectangular base carrying a square staggered array of
    cylindrical pins.

    Parameters
    ----------
    base_width_m, base_depth_m:
        Base footprint (flow runs along the depth).
    base_thickness_m:
        Base plate thickness (spreading path).
    pin_diameter_m, pin_height_m, pin_pitch_m:
        Pin array geometry; pitch is centre-to-centre in both directions.
    conductivity_w_mk:
        Sink material conductivity.
    turbulence_factor:
        Nusselt enhancement of the pin surface; 1.0 for machined pins,
        :data:`SOLDER_PIN_TURBULENCE_FACTOR` for the SRC solder-pin design.
    source_area_m2:
        Footprint of the heat source feeding the base (the FPGA die).
    """

    base_width_m: float = 0.060
    base_depth_m: float = 0.060
    base_thickness_m: float = 0.003
    pin_diameter_m: float = 0.002
    pin_height_m: float = 0.008
    pin_pitch_m: float = 0.004
    conductivity_w_mk: float = COPPER_W_MK
    turbulence_factor: float = SOLDER_PIN_TURBULENCE_FACTOR
    source_area_m2: float = 26.0e-3 ** 2

    def __post_init__(self) -> None:
        if min(self.base_width_m, self.base_depth_m, self.base_thickness_m) <= 0:
            raise ValueError("base dimensions must be positive")
        if min(self.pin_diameter_m, self.pin_height_m, self.pin_pitch_m) <= 0:
            raise ValueError("pin dimensions must be positive")
        if self.pin_pitch_m <= self.pin_diameter_m:
            raise ValueError("pin pitch must exceed pin diameter")
        if self.source_area_m2 > self.base_area_m2:
            raise ValueError("heat source larger than the sink base")

    @property
    def base_area_m2(self) -> float:
        """Base footprint, m^2."""
        return self.base_width_m * self.base_depth_m

    @property
    def pins_across(self) -> int:
        """Pins across the width."""
        return int(self.base_width_m / self.pin_pitch_m)

    @property
    def pin_rows(self) -> int:
        """Pin rows along the flow."""
        return int(self.base_depth_m / self.pin_pitch_m)

    @property
    def n_pins(self) -> int:
        """Total pin count."""
        return self.pins_across * self.pin_rows

    @property
    def pin_area_m2(self) -> float:
        """Total lateral pin surface, m^2."""
        return self.n_pins * math.pi * self.pin_diameter_m * self.pin_height_m

    @property
    def exposed_base_area_m2(self) -> float:
        """Base surface between the pins, m^2."""
        covered = self.n_pins * math.pi * self.pin_diameter_m ** 2 / 4.0
        return max(self.base_area_m2 - covered, 0.0)

    @property
    def wetted_area_m2(self) -> float:
        """Full coolant-contact surface, m^2 — the quantity SKAT+ design
        item 1 ("increase the effective surface of heat-exchange") grows."""
        return self.pin_area_m2 + self.exposed_base_area_m2

    @property
    def height_m(self) -> float:
        """Overall sink height (the "low-height" packing constraint)."""
        return self.base_thickness_m + self.pin_height_m

    def max_interpin_velocity(self, approach_velocity_m_s: float) -> float:
        """Peak velocity between pins (continuity through the narrowest gap)."""
        if approach_velocity_m_s < 0:
            raise ValueError("approach velocity must be non-negative")
        gap_fraction = (self.pin_pitch_m - self.pin_diameter_m) / self.pin_pitch_m
        return approach_velocity_m_s / gap_fraction

    def performance(
        self, approach_velocity_m_s: float, fluid: Fluid, temperature_c: float
    ) -> SinkPerformance:
        """Resolve the sink at an approach velocity in the given coolant.

        Zero velocity (stopped pump) returns a zero-conductance, zero-drop
        result so hydraulic system curves can be evaluated from rest;
        natural-convection survival is analysed separately.
        """
        v_max = self.max_interpin_velocity(approach_velocity_m_s)
        if v_max == 0.0:
            return _stagnant(self.wetted_area_m2)
        film = pin_bank_film(
            v_max, self.pin_diameter_m, fluid, temperature_c, self.turbulence_factor
        )
        eta = pin_fin_efficiency(
            film.h_w_m2k, self.pin_diameter_m, self.pin_height_m, self.conductivity_w_mk
        )
        conductance = film.h_w_m2k * (eta * self.pin_area_m2 + self.exposed_base_area_m2)
        h_effective = conductance / self.base_area_m2
        r_spread = spreading(
            self.source_area_m2,
            self.base_area_m2,
            self.base_thickness_m,
            self.conductivity_w_mk,
            h_effective,
        )
        rho = fluid.density(temperature_c)
        # Staggered-bank loss: one Euler-number's worth of velocity head per
        # row, a serviceable engineering estimate at these Reynolds numbers.
        euler_per_row = 1.2
        dp = self.pin_rows * euler_per_row * rho * v_max ** 2 / 2.0
        return SinkPerformance(
            film=film,
            fin_efficiency=eta,
            wetted_area_m2=self.wetted_area_m2,
            effective_conductance_w_k=conductance,
            spreading_resistance_k_w=r_spread,
            convection_resistance_k_w=1.0 / conductance,
            pressure_drop_pa=dp,
        )


@dataclass(frozen=True)
class BarePlate:
    """No heatsink: the lidded package cooled directly by the oil flow.

    The ablation baseline showing why immersion alone (as in the one-or-two
    microprocessor products the paper criticises) cannot cool a 100 W FPGA.
    """

    width_m: float = 0.0425
    depth_m: float = 0.0425
    source_area_m2: float = 26.0e-3 ** 2

    @property
    def wetted_area_m2(self) -> float:
        """Coolant-contact surface: just the package top, m^2."""
        return self.width_m * self.depth_m

    def performance(
        self, approach_velocity_m_s: float, fluid: Fluid, temperature_c: float
    ) -> SinkPerformance:
        """Resolve the bare surface at an approach velocity."""
        film = flat_plate_film(approach_velocity_m_s, self.depth_m, fluid, temperature_c)
        conductance = film.h_w_m2k * self.wetted_area_m2
        return SinkPerformance(
            film=film,
            fin_efficiency=1.0,
            wetted_area_m2=self.wetted_area_m2,
            effective_conductance_w_k=conductance,
            spreading_resistance_k_w=0.0,
            convection_resistance_k_w=1.0 / conductance,
            pressure_drop_pa=0.0,
        )


@dataclass(frozen=True)
class StraightFinAirSink:
    """The legacy forced-air heatsink of the Rigel-2 / Taygeta CMs.

    Straight rectangular fins on a base plate, air forced along the fin
    channels by the card-cage blowers.
    """

    base_width_m: float = 0.060
    base_depth_m: float = 0.060
    base_thickness_m: float = 0.004
    fin_height_m: float = 0.030
    fin_thickness_m: float = 0.001
    fin_gap_m: float = 0.003
    conductivity_w_mk: float = ALUMINUM_W_MK
    source_area_m2: float = 22.0e-3 ** 2

    def __post_init__(self) -> None:
        if min(self.fin_height_m, self.fin_thickness_m, self.fin_gap_m) <= 0:
            raise ValueError("fin dimensions must be positive")

    @property
    def n_fins(self) -> int:
        """Fin count across the base width."""
        pitch = self.fin_thickness_m + self.fin_gap_m
        return int((self.base_width_m - self.fin_thickness_m) / pitch) + 1

    @property
    def fin_area_m2(self) -> float:
        """Total fin surface (both faces), m^2."""
        return self.n_fins * 2.0 * self.fin_height_m * self.base_depth_m

    @property
    def base_channel_area_m2(self) -> float:
        """Exposed base between fins, m^2."""
        return (self.n_fins - 1) * self.fin_gap_m * self.base_depth_m

    @property
    def channel_hydraulic_diameter_m(self) -> float:
        """Hydraulic diameter of one fin channel."""
        a = self.fin_gap_m * self.fin_height_m
        p = 2.0 * (self.fin_gap_m + self.fin_height_m)
        return 4.0 * a / p

    def performance(
        self, channel_velocity_m_s: float, fluid: Fluid, temperature_c: float
    ) -> SinkPerformance:
        """Resolve the sink at a fin-channel air velocity.

        The channels are short (tens of millimetres), so the boundary layer
        is developing over the whole length; the flat-plate correlation on
        the flow length is the appropriate film model, not fully developed
        duct flow.
        """
        if channel_velocity_m_s == 0.0:
            return _stagnant(self.fin_area_m2 + self.base_channel_area_m2)
        film = flat_plate_film(channel_velocity_m_s, self.base_depth_m, fluid, temperature_c)
        eta = straight_fin_efficiency(
            film.h_w_m2k, self.fin_thickness_m, self.fin_height_m, self.conductivity_w_mk
        )
        conductance = film.h_w_m2k * (eta * self.fin_area_m2 + self.base_channel_area_m2)
        h_effective = conductance / (self.base_width_m * self.base_depth_m)
        r_spread = spreading(
            self.source_area_m2,
            self.base_width_m * self.base_depth_m,
            self.base_thickness_m,
            self.conductivity_w_mk,
            h_effective,
        )
        rho = fluid.density(temperature_c)
        # Developing-channel loss, a couple of velocity heads end to end.
        dp = 2.5 * rho * channel_velocity_m_s ** 2 / 2.0
        return SinkPerformance(
            film=film,
            fin_efficiency=eta,
            wetted_area_m2=self.fin_area_m2 + self.base_channel_area_m2,
            effective_conductance_w_k=conductance,
            spreading_resistance_k_w=r_spread,
            convection_resistance_k_w=1.0 / conductance,
            pressure_drop_pa=dp,
        )


__all__ = [
    "ALUMINUM_W_MK",
    "BarePlate",
    "COPPER_W_MK",
    "PinFinHeatSink",
    "SOLDER_PIN_TURBULENCE_FACTOR",
    "SinkPerformance",
    "StraightFinAirSink",
]
