"""The legacy forced-air computational module (Rigel-2 / Taygeta class).

Section 1's evidence that "air cooling systems have reached their heat
limit": the Rigel-2 (Virtex-6, 1255 W) ran its hottest FPGA 33.1 C above a
25 C room; the Taygeta (Virtex-7, 1661 W) ran 47.9 C above it — past the
65...70 C long-service ceiling. This module reproduces those numbers from
first principles: per-chip sink resistance plus the air preheat accumulated
along each board's chip row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.heatsink import StraightFinAirSink
from repro.core.tim import ThermalInterface, CONVENTIONAL_PASTE
from repro.devices.board import Ccb
from repro.devices.power import ThermalRunawayError
from repro.fluids.library import AIR
from repro.fluids.properties import Fluid


@dataclass(frozen=True)
class AirChipReport:
    """Thermal state of one FPGA position along the airflow."""

    position: int
    local_air_c: float
    junction_c: float
    power_w: float

    @property
    def overheat_vs_ambient_k(self) -> float:
        """Junction rise above the room — the paper's reported overheat
        (it quotes temperatures "relative to an environment temperature")."""
        return self.junction_c - self.local_air_c + (self.local_air_c - 0.0)


@dataclass(frozen=True)
class AirCoolingReport:
    """Full thermal/power report for an air-cooled CM at steady state."""

    ambient_c: float
    chips: List[AirChipReport]
    max_junction_c: float
    max_overheat_k: float
    board_power_w: float
    module_power_w: float
    fan_power_w: float
    within_reliability_limit: bool
    reliability_limit_c: float

    @property
    def thermal_gradient_k(self) -> float:
        """Junction spread from the first to the last chip in the airflow —
        the "considerable thermal gradients" the paper attributes to
        under-designed circulation."""
        return self.chips[-1].junction_c - self.chips[0].junction_c


@dataclass(frozen=True)
class AirCooledModule:
    """A card-cage CM cooled by forced air.

    Parameters
    ----------
    ccb:
        The board design (FPGAs in a row along the airflow).
    n_boards:
        Boards in the cage (Rigel-2/Taygeta carry 4).
    sink:
        The per-chip finned air heatsink.
    tim:
        Interface between package and sink.
    channel_velocity_m_s:
        Air velocity through the fin channels.
    board_airflow_m3_s:
        Air volume delivered along each board.
    psu_efficiency:
        Module supply efficiency (losses add to module power).
    cage_pressure_drop_pa:
        Static pressure the fans must develop.
    fan_efficiency:
        Wire-to-air fan efficiency.
    """

    ccb: Ccb
    n_boards: int = 4
    sink: StraightFinAirSink = field(default_factory=StraightFinAirSink)
    tim: ThermalInterface = CONVENTIONAL_PASTE
    channel_velocity_m_s: float = 4.0
    board_airflow_m3_s: float = 0.055
    psu_efficiency: float = 0.94
    cage_pressure_drop_pa: float = 150.0
    fan_efficiency: float = 0.30
    air: Fluid = AIR

    def __post_init__(self) -> None:
        if self.n_boards < 1:
            raise ValueError("module needs at least one board")
        if self.channel_velocity_m_s <= 0 or self.board_airflow_m3_s <= 0:
            raise ValueError("air velocities and flows must be positive")
        if not 0.5 < self.psu_efficiency <= 1.0:
            raise ValueError("PSU efficiency must be within (0.5, 1]")
        if not 0.0 < self.fan_efficiency <= 1.0:
            raise ValueError("fan efficiency must be within (0, 1]")

    def chip_resistance_k_w(self, air_temperature_c: float) -> float:
        """Junction-to-local-air resistance of one chip: package + interface
        + sink (spreading and convection)."""
        family = self.ccb.fpga.family
        sink_perf = self.sink.performance(
            self.channel_velocity_m_s, self.air, air_temperature_c
        )
        r_tim = self.tim.resistance_k_w(family.die_area_m2)
        return family.theta_jc_k_w + r_tim + sink_perf.total_resistance_k_w

    def solve(self, ambient_c: float = 25.0) -> AirCoolingReport:
        """Steady state of the module at a room temperature.

        Chips are solved in airflow order: each chip's junction balances
        against air already preheated by every chip upstream of it, so the
        last position is the paper's "maximum overheat" chip.

        Raises
        ------
        ThermalRunawayError
            When leakage feedback prevents any chip from reaching
            equilibrium (the air-cooling dead end made literal).
        """
        fpga = self.ccb.fpga
        air_capacity = self.air.heat_capacity_rate(self.board_airflow_m3_s, ambient_c)
        chips: List[AirChipReport] = []
        local_air = ambient_c
        upstream_heat = 0.0
        for position in range(self.ccb.n_fpgas):
            local_air = ambient_c + upstream_heat / air_capacity
            resistance = self.chip_resistance_k_w(local_air)
            try:
                point = fpga.operate(resistance, local_air)
            except ThermalRunawayError:
                raise
            chips.append(
                AirChipReport(
                    position=position,
                    local_air_c=local_air,
                    junction_c=point.junction_c,
                    power_w=point.power_w,
                )
            )
            upstream_heat += point.power_w

        board_power = upstream_heat + self.ccb.misc_power_w
        if self.ccb.separate_controller:
            board_power += chips[0].power_w / 3.0
        electronics = board_power * self.n_boards
        fan_power = (
            self.n_boards
            * self.board_airflow_m3_s
            * self.cage_pressure_drop_pa
            / self.fan_efficiency
        )
        module_power = electronics / self.psu_efficiency + fan_power
        max_junction = max(c.junction_c for c in chips)
        limit = fpga.family.t_reliable_max_c
        return AirCoolingReport(
            ambient_c=ambient_c,
            chips=chips,
            max_junction_c=max_junction,
            max_overheat_k=max_junction - ambient_c,
            board_power_w=board_power,
            module_power_w=module_power,
            fan_power_w=fan_power,
            within_reliability_limit=max_junction <= limit,
            reliability_limit_c=limit,
        )


__all__ = ["AirChipReport", "AirCooledModule", "AirCoolingReport"]
