"""The 47U computer rack of immersion-cooled computational modules.

Section 5's headline: "it is now possible to mount not less than 12
new-generation CMs, with a total performance above 1 PFlops, in a single
47U computer rack". The rack model stacks CMs, feeds them chilled water
through the Fig. 5 balanced manifold system, closes the loop with the
chiller, and totals performance, power and efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from repro.core.balancing import ManifoldLayout, RackManifoldSystem
from repro.core.module import ComputationalModule, ModuleReport
from repro.heatexchange.chiller import Chiller, ChillerState
from repro.performance.flops import peak_gflops, sustained_gflops

#: Usable height of the paper's rack, rack units.
RACK_HEIGHT_U = 47.0


@dataclass(frozen=True)
class RackReport:
    """Resolved steady state and totals for a full rack."""

    module_reports: List[ModuleReport]
    chiller: ChillerState
    water_flows_m3_s: List[float]
    peak_pflops: float
    sustained_pflops: float
    it_power_w: float
    cooling_power_w: float
    max_fpga_c: float

    @property
    def total_power_w(self) -> float:
        """Facility power: IT plus cooling."""
        return self.it_power_w + self.cooling_power_w

    @property
    def pue(self) -> float:
        """Power usage effectiveness (rack-local)."""
        return self.total_power_w / self.it_power_w

    @property
    def gflops_per_watt(self) -> float:
        """Sustained energy efficiency at the facility level."""
        return self.sustained_pflops * 1.0e6 / self.total_power_w

    @property
    def above_one_pflops(self) -> bool:
        """The conclusions' claim: total performance above 1 PFlops."""
        return self.peak_pflops > 1.0


@dataclass
class Rack:
    """A rack of identical immersion CMs on a balanced water loop.

    Parameters
    ----------
    module_factory:
        Zero-argument callable producing one CM (e.g. ``repro.core.skat.skat``).
    n_modules:
        CM count ("not less than 12").
    chiller:
        The external chiller closing the primary loop.
    layout:
        Manifold layout for the water distribution (Fig. 5 reverse return
        by default).
    """

    module_factory: Callable[[], ComputationalModule]
    n_modules: int = 12
    chiller: Chiller = field(
        default_factory=lambda: Chiller(
            setpoint_c=20.0, capacity_w=150.0e3, water_capacity_rate_w_k=25.0e3
        )
    )
    layout: ManifoldLayout = ManifoldLayout.REVERSE_RETURN

    def __post_init__(self) -> None:
        if self.n_modules < 1:
            raise ValueError("rack needs at least one module")
        sample = self.module_factory()
        if self.n_modules * sample.height_u > RACK_HEIGHT_U:
            raise ValueError(
                f"{self.n_modules} x {sample.height_u:.0f}U modules exceed the "
                f"{RACK_HEIGHT_U:.0f}U rack"
            )

    def manifold_system(self) -> RackManifoldSystem:
        """The water-distribution network serving the modules.

        Rack-scale plumbing: wider manifolds and riser than the six-loop
        Fig. 5 sketch, and a pump sized for ~1.2 L/s of water per CM.
        """
        from repro.hydraulics.elements import Pump, PumpCurve

        return RackManifoldSystem(
            n_loops=self.n_modules,
            layout=self.layout,
            manifold_diameter_m=0.065,
            riser_diameter_m=0.08,
            pump=Pump(
                curve=PumpCurve(shutoff_pressure_pa=150.0e3, max_flow_m3_s=3.5e-2),
                efficiency=0.6,
            ),
        )

    def solve(self) -> RackReport:
        """Steady state of the whole rack.

        The manifold system fixes each CM's water flow; each CM then closes
        its own oil-loop balance against the chiller setpoint; the chiller
        carries the summed load.
        """
        balance = self.manifold_system().solve()
        reports: List[ModuleReport] = []
        total_heat = 0.0
        it_power = 0.0
        for flow in balance.loop_flows_m3_s:
            module = self.module_factory()
            report = module.solve_steady(
                water_in_c=self.chiller.setpoint_c, water_flow_m3_s=flow
            )
            reports.append(report)
            total_heat += report.total_heat_to_water_w
            it_power += report.module_electrical_w

        chiller_state = self.chiller.operate(total_heat)

        sample = self.module_factory()
        family = sample.section.ccb.fpga.family
        chips = sample.section.n_boards * sample.section.ccb.n_fpgas * self.n_modules
        utilization = sample.section.ccb.fpga.utilization
        peak = chips * peak_gflops(family) / 1.0e6
        sustained = chips * sustained_gflops(family, utilization) / 1.0e6

        pump_power = sum(r.pump_electrical_w for r in reports)
        cooling = chiller_state.electrical_power_w + pump_power
        # Pump power of non-immersed pumps is outside the bath but still
        # IT-rack overhead; immersed pump power is already inside
        # module_electrical_w, so remove it from the cooling column.
        immersed_pump_power = sum(
            r.pump_electrical_w
            for r, m in zip(reports, [self.module_factory() for _ in reports])
            if m.pump.immersed
        )
        cooling -= immersed_pump_power

        return RackReport(
            module_reports=reports,
            chiller=chiller_state,
            water_flows_m3_s=balance.loop_flows_m3_s,
            peak_pflops=peak,
            sustained_pflops=sustained,
            it_power_w=it_power,
            cooling_power_w=cooling,
            max_fpga_c=max(r.max_fpga_c for r in reports),
        )


__all__ = ["RACK_HEIGHT_U", "Rack", "RackReport"]
