"""Rack-level transient simulation: the engineering-services failure drills.

The CM simulator (:mod:`repro.core.simulation`) covers one module's
failures. At rack scale the paper's machines share "a stationary system of
engineering services" — one chiller, one water loop — so the failures that
matter are common-mode: the chiller trips, the facility water pump stops,
or a manifold loop is valved off while the rest keep computing. This
simulator steps all the CMs of a rack against the shared water loop.

State per step: each CM's bath temperature (the slow pole), the chilled
water supply temperature (chiller dynamics), and the per-CM water flows
(from the manifold network when loops close).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.control.monitor import TelemetryLog
from repro.core.balancing import RackManifoldSystem
from repro.core.module import ComputationalModule
from repro.core.rack import Rack
from repro.devices.power import ThermalRunawayError
from repro.reliability.failures import FailureEvent

#: Junction value reported when a CM's chips run away (trip substitute).
RUNAWAY_CLAMP_C = 150.0


@dataclass(frozen=True)
class RackSimResult:
    """Outcome of a rack transient run."""

    telemetry: TelemetryLog
    max_fpga_c: float
    max_water_c: float
    modules_over_limit: List[int]
    time_over_limit_s: Dict[int, float]

    def survived(self, junction_limit_c: float) -> bool:
        """Whether every CM stayed below the junction limit throughout."""
        return self.max_fpga_c <= junction_limit_c


@dataclass
class RackSimulator:
    """Time-stepping simulator for a full rack on a shared water loop.

    Parameters
    ----------
    rack:
        The rack definition (module factory, chiller, layout).
    water_thermal_mass_j_k:
        Heat capacitance of the chilled-water loop inventory.
    oil_thermal_mass_j_k:
        Heat capacitance of each CM's bath.
    junction_limit_c:
        The reliability ceiling tracked in the result.
    """

    rack: Rack
    water_thermal_mass_j_k: float = 8.0e5
    oil_thermal_mass_j_k: float = 1.0e5
    junction_limit_c: float = 67.0
    _modules: List[ComputationalModule] = field(init=False, repr=False)
    _manifold: RackManifoldSystem = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._modules = [self.rack.module_factory() for _ in range(self.rack.n_modules)]
        self._manifold = self.rack.manifold_system()

    def _water_flows(self) -> List[float]:
        return self._manifold.solve().loop_flows_m3_s

    def _chiller_capacity_w(self, time_s: float, events: List[FailureEvent]) -> float:
        capacity = self.rack.chiller.capacity_w
        for event in events:
            if event.target == "chiller" and time_s >= event.time_s:
                if event.kind == "pump_stop":
                    capacity *= event.magnitude
        return capacity

    def _module_state(self, module: ComputationalModule, oil_c: float, water_c: float,
                      water_flow: float) -> Dict[str, float]:
        """Quasi-static CM state at the current bath/water conditions."""
        flow = module.oil_loop_flow(oil_c)
        try:
            report = module.section.solve(oil_c, flow)
            junction = report.max_junction_c
            heat = report.total_heat_w
        except ThermalRunawayError:
            junction = RUNAWAY_CLAMP_C
            heat = 0.0
        if module.pump.immersed:
            heat += module.pump.electrical_power_w(flow)
        if water_flow > 1e-9 and oil_c > water_c:
            hx = module.hx.solve(
                module.section.oil, oil_c, flow, module.water, water_c, water_flow
            )
            rejected = hx.q_w
        else:
            rejected = 0.0
        return {"junction": junction, "heat": heat, "rejected": rejected}

    def run(
        self,
        duration_s: float,
        events: Optional[List[FailureEvent]] = None,
        dt_s: float = 20.0,
    ) -> RackSimResult:
        """Integrate the rack over ``duration_s`` seconds.

        Recognized events: ``loop_blockage`` with target ``loop_<i>``
        (valves CM i off the water loop) and ``pump_stop`` with target
        ``chiller`` (magnitude = remaining cooling-capacity fraction;
        0 is a full chiller trip).
        """
        if duration_s <= 0 or dt_s <= 0:
            raise ValueError("duration and step must be positive")
        # Rebuild the manifold (a previous run's loop closures stay with
        # the old object) and reset its solver so back-to-back runs are
        # order-independent; within the run, warm starts and the solution
        # cache make the repeated manifold re-solves nearly free.
        self._manifold = self.rack.manifold_system()
        self._manifold.reset_solver()
        events = sorted(events or [], key=lambda e: e.time_s)
        telemetry = TelemetryLog()
        n = self.rack.n_modules

        water_c = self.rack.chiller.setpoint_c
        oils = [water_c + 8.0] * n
        applied = set()
        flows = self._water_flows()

        max_fpga = -1.0e9
        max_water = water_c
        time_over: Dict[int, float] = {i: 0.0 for i in range(n)}

        time_s = 0.0
        while time_s <= duration_s:
            # Apply due one-shot loop closures.
            for idx, event in enumerate(events):
                if idx in applied or time_s < event.time_s:
                    continue
                if event.kind == "loop_blockage" and event.target.startswith("loop_"):
                    loop = int(event.target.split("_", 1)[1])
                    self._manifold.fail_loop(loop)
                    flows = self._water_flows()
                    applied.add(idx)
                elif event.target == "chiller":
                    applied.add(idx)  # handled continuously below

            capacity = self._chiller_capacity_w(time_s, events)

            total_rejected = 0.0
            sample: Dict[str, float] = {"water_c": water_c}
            for i, module in enumerate(self._modules):
                state = self._module_state(module, oils[i], water_c, flows[i])
                oils[i] += (state["heat"] - state["rejected"]) * dt_s / self.oil_thermal_mass_j_k
                oils[i] = min(oils[i], module.section.oil.t_max_c - 1.0)
                total_rejected += state["rejected"]
                max_fpga = max(max_fpga, state["junction"])
                if state["junction"] > self.junction_limit_c:
                    time_over[i] += dt_s
                sample[f"oil_{i}"] = oils[i]
                sample[f"junction_{i}"] = state["junction"]

            removed = min(total_rejected, capacity)
            water_c += (total_rejected - removed) * dt_s / self.water_thermal_mass_j_k
            # The chiller pulls the loop back toward the setpoint when it
            # has spare capacity.
            if capacity > total_rejected and water_c > self.rack.chiller.setpoint_c:
                spare = capacity - total_rejected
                water_c -= spare * dt_s / self.water_thermal_mass_j_k
                water_c = max(water_c, self.rack.chiller.setpoint_c)
            max_water = max(max_water, water_c)

            telemetry.record(time_s, sample)
            time_s += dt_s

        counters = self._manifold.solver_counters
        telemetry.set_counters(
            {
                "hydraulic_solves": counters.solves,
                "hydraulic_cache_hits": counters.cache_hits,
                "hydraulic_warm_starts": counters.warm_starts,
                "hydraulic_scalar_fallbacks": counters.scalar_fallbacks,
            }
        )
        over = [i for i, t in time_over.items() if t > 0.0]
        return RackSimResult(
            telemetry=telemetry,
            max_fpga_c=max_fpga,
            max_water_c=max_water,
            modules_over_limit=sorted(over),
            time_over_limit_s=time_over,
        )


__all__ = ["RackSimResult", "RackSimulator", "RUNAWAY_CLAMP_C"]
