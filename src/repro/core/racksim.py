"""Rack-level transient simulation: the engineering-services failure drills.

The CM simulator (:mod:`repro.core.simulation`) covers one module's
failures. At rack scale the paper's machines share "a stationary system of
engineering services" — one chiller, one water loop — so the failures that
matter are common-mode: the chiller trips, the facility water pump stops,
or a manifold loop is valved off while the rest keep computing. This
simulator steps all the CMs of a rack against the shared water loop.

State per step: each CM's bath temperature (the slow pole), the chilled
water supply temperature (chiller dynamics), and the per-CM water flows
(from the manifold network when loops close).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.control.monitor import AlarmLog, TelemetryLog
from repro.control.supervisor import RecoveryAction, Supervisor, SupervisorState
from repro.core.balancing import RackManifoldSystem
from repro.core.module import ComputationalModule
from repro.core.rack import Rack
from repro.devices.power import ThermalRunawayError
from repro.hydraulics import HydraulicsError
from repro.obs import MetricsRegistry, get_registry
from repro.performance.flops import sustained_gflops
from repro.reliability.failures import FailureEvent
from repro.resilience.retry import retry_with_backoff

if TYPE_CHECKING:  # pragma: no cover - verify imports this module
    from repro.verify.checkers import CheckSuite

#: Junction value reported when a CM's chips run away (trip substitute).
RUNAWAY_CLAMP_C = 150.0


@dataclass(frozen=True)
class RackSimResult:
    """Outcome of a rack transient run."""

    telemetry: TelemetryLog
    max_fpga_c: float
    max_water_c: float
    modules_over_limit: List[int]
    time_over_limit_s: Dict[int, float]
    #: Supervisor ladder state at the end of a supervised run; None when
    #: unsupervised.
    final_state: Optional[str] = None
    #: Every supervisory intervention of the run, in order.
    recovery_actions: Tuple[RecoveryAction, ...] = ()
    #: CM indices the supervisor individually shut down (tripped modules
    #: isolated so the rest of the rack keeps computing).
    modules_shutdown: Tuple[int, ...] = ()
    #: Rack sustained performance with the shut-down modules dark and the
    #: survivors at the lowest commanded utilization, PFlops; None when
    #: unsupervised.
    degraded_pflops: Optional[float] = None
    #: Deduplicated alarm episodes of a supervised run.
    alarm_log: AlarmLog = field(default_factory=AlarmLog)
    #: Total heat rejected into the shared water loop over the run, J —
    #: what the facility chiller plant ultimately has to remove (and what
    #: a heat-reuse installation could harvest).
    heat_rejected_j: float = 0.0

    @property
    def mean_rejected_w(self) -> float:
        """Run-average heat rejection into the water loop, W."""
        if not len(self.telemetry):
            return 0.0
        times, _ = self.telemetry.series("water_c")
        duration = float(times[-1] - times[0])
        if duration <= 0.0:
            return 0.0
        return self.heat_rejected_j / duration

    def survived(self, junction_limit_c: float) -> bool:
        """Whether every CM stayed below the junction limit throughout."""
        return self.max_fpga_c <= junction_limit_c


@dataclass
class RackSimulator:
    """Time-stepping simulator for a full rack on a shared water loop.

    Parameters
    ----------
    rack:
        The rack definition (module factory, chiller, layout).
    water_thermal_mass_j_k:
        Heat capacitance of the chilled-water loop inventory.
    oil_thermal_mass_j_k:
        Heat capacitance of each CM's bath.
    junction_limit_c:
        The reliability ceiling tracked in the result.
    supervisor:
        Optional :class:`~repro.control.supervisor.Supervisor`. A
        supervised run isolates a tripped CM (shutting just that module
        down instead of the rack), throttles the surviving FPGAs on
        temperature excursions, drops the chiller setpoint for margin,
        and escalates to a rack-wide SAFE_SHUTDOWN only when the ladder
        is exhausted. The supervisor also logs the hydraulic solver's
        retry-with-backoff recoveries.
    hydraulic_retry_attempts:
        Bounded attempts for the manifold re-solve; attempt ``i`` relaxes
        the flow tolerance to ``1e-9 * 10**i`` m^3/s. On total failure the
        step keeps the last converged flow field (recorded as a recovery
        action) rather than crashing the run.
    """

    rack: Rack
    water_thermal_mass_j_k: float = 8.0e5
    oil_thermal_mass_j_k: float = 1.0e5
    junction_limit_c: float = 67.0
    supervisor: Optional[Supervisor] = None
    hydraulic_retry_attempts: int = 3
    #: Optional invariant-checker suite (:class:`repro.verify.checkers.
    #: CheckSuite`). When attached, every manifold solve is audited for
    #: flow continuity, the run records per-module heat/rejection
    #: channels, and the finished run is audited against the
    #: conservation-law catalog; None skips every hook.
    checks: Optional["CheckSuite"] = None
    _modules: List[ComputationalModule] = field(init=False, repr=False)
    _manifold: RackManifoldSystem = field(init=False, repr=False)
    _throttled: Dict[Tuple[int, float], ComputationalModule] = field(
        init=False, default_factory=dict, repr=False
    )
    _retry_attempts: int = field(init=False, default=0, repr=False)
    #: Run-scoped metrics of the *last* run (steps, hydraulic retries,
    #: shutdowns); :meth:`reset` zeroes it so back-to-back runs stay
    #: order-independent, and each run also publishes its totals into the
    #: process registry under the ``rack_sim_`` prefix.
    metrics: MetricsRegistry = field(
        init=False, default_factory=MetricsRegistry, repr=False
    )

    def __post_init__(self) -> None:
        if self.hydraulic_retry_attempts < 1:
            raise ValueError("need at least one hydraulic solve attempt")
        self._modules = [self.rack.module_factory() for _ in range(self.rack.n_modules)]
        self._manifold = self.rack.manifold_system()

    def reset(self) -> None:
        """Restore pristine per-run state (manifold, caches, metrics).

        Rebuilds the manifold (a previous run's loop closures stay with
        the old object), resets its solver, and zeroes the run-scoped
        metrics, so back-to-back runs on one simulator are
        order-independent. Called automatically at the start of every
        :meth:`run`.
        """
        self._manifold = self.rack.manifold_system()
        self._manifold.reset_solver()
        self._throttled.clear()
        self._retry_attempts = 0
        self.metrics.reset()
        if self.supervisor is not None:
            self.supervisor.reset()

    def _water_flows(self, time_s: float = 0.0) -> Optional[List[float]]:
        """Manifold flows with bounded tolerance relaxation on failure.

        Returns None when no attempt converged — the caller holds the
        last good flow field for the step (a frozen estimate beats a
        crashed campaign; the discrepancy is logged as a recovery
        action).
        """
        outcome = retry_with_backoff(
            lambda attempt: self._manifold.solve(
                tolerance_m3_s=1.0e-9 * 10.0**attempt
            ).loop_flows_m3_s,
            attempts=self.hydraulic_retry_attempts,
            retry_on=(HydraulicsError,),
        )
        self._retry_attempts += outcome.attempts - (1 if outcome.ok else 0)
        if outcome.ok and self.checks is not None:
            self.checks.check_manifold(
                self._manifold, level="rack", where=f"t={time_s:g}"
            )
        if self.supervisor is not None:
            if outcome.ok and outcome.retried:
                self.supervisor.record(
                    time_s,
                    "hydraulic_retry",
                    f"manifold converged on attempt {outcome.attempts} "
                    f"(tolerance relaxed to {1.0e-9 * 10.0 ** (outcome.attempts - 1):g})",
                )
            elif not outcome.ok:
                self.supervisor.record(
                    time_s,
                    "hydraulic_fallback",
                    f"manifold solve failed after {outcome.attempts} attempts; "
                    "holding last converged flows",
                    state=SupervisorState.DEGRADED,
                )
        return outcome.value if outcome.ok else None

    def _throttled_module(self, index: int, utilization: float) -> ComputationalModule:
        """CM ``index`` with its FPGAs re-rated (cached per step level)."""
        key = (index, utilization)
        try:
            return self._throttled[key]
        except KeyError:
            module = self._modules[index]
            section = module.section
            if section.ccb.fpga.utilization != utilization:
                module = replace(
                    module,
                    section=replace(
                        section,
                        ccb=replace(
                            section.ccb,
                            fpga=replace(section.ccb.fpga, utilization=utilization),
                        ),
                    ),
                )
            self._throttled[key] = module
            return module

    def _workload_fraction_from_events(
        self, time_s: float, events: List[FailureEvent]
    ) -> float:
        """Current workload fraction under due ``power_step`` events.

        Rack-wide: every computing CM follows the same training trace
        (target ``compute``). Latest due event wins; 1 before the first.
        """
        fraction = 1.0
        for event in events:
            if (
                event.kind == "power_step"
                and event.target == "compute"
                and time_s >= event.time_s
            ):
                fraction = event.magnitude
        return fraction

    def _chiller_capacity_w(self, time_s: float, events: List[FailureEvent]) -> float:
        capacity = self.rack.chiller.capacity_w
        for event in events:
            if event.target == "chiller" and time_s >= event.time_s:
                if event.kind == "pump_stop":
                    capacity *= event.magnitude
        return capacity

    def _module_state(self, module: ComputationalModule, oil_c: float, water_c: float,
                      water_flow: float) -> Dict[str, float]:
        """Quasi-static CM state at the current bath/water conditions."""
        flow = module.oil_loop_flow(oil_c)
        try:
            report = module.section.solve(oil_c, flow)
            junction = report.max_junction_c
            heat = report.total_heat_w
        except ThermalRunawayError:
            junction = RUNAWAY_CLAMP_C
            heat = 0.0
        if module.pump.immersed:
            heat += module.pump.electrical_power_w(flow)
        if water_flow > 1e-9 and oil_c > water_c:
            hx = module.hx.solve(
                module.section.oil, oil_c, flow, module.water, water_c, water_flow
            )
            rejected = hx.q_w
        else:
            rejected = 0.0
        return {"junction": junction, "heat": heat, "rejected": rejected}

    def run(
        self,
        duration_s: float,
        events: Optional[List[FailureEvent]] = None,
        dt_s: float = 20.0,
    ) -> RackSimResult:
        """Integrate the rack over ``duration_s`` seconds.

        Recognized events: ``loop_blockage`` with target ``loop_<i>``
        (valves CM i off the water loop), ``pump_stop`` with target
        ``chiller`` (magnitude = remaining cooling-capacity fraction;
        0 is a full chiller trip), and ``power_step`` with target
        ``compute`` (training-workload fraction applied to every
        computing CM's utilization; latest due event wins).
        """
        obs = get_registry()
        with obs.span("rack_sim.run"), obs.profile("rack_sim.run"):
            return self._run(duration_s, events, dt_s)

    def _run(
        self,
        duration_s: float,
        events: Optional[List[FailureEvent]],
        dt_s: float,
    ) -> RackSimResult:
        if duration_s <= 0 or dt_s <= 0:
            raise ValueError("duration and step must be positive")
        # Within the run, warm starts and the solution cache make the
        # repeated manifold re-solves nearly free.
        self.reset()
        supervised = self.supervisor is not None
        events = sorted(events or [], key=lambda e: e.time_s)
        telemetry = TelemetryLog()
        alarm_log = AlarmLog()
        n = self.rack.n_modules

        water_c = self.rack.chiller.setpoint_c
        oils = [water_c + 8.0] * n
        applied = set()
        flows = self._water_flows(0.0)
        if flows is None:
            raise HydraulicsError("initial manifold solve failed")

        max_fpga = -1.0e9
        max_water = water_c
        heat_rejected_j = 0.0
        time_over: Dict[int, float] = {i: 0.0 for i in range(n)}
        down: set = set()
        modules_shutdown: List[int] = []
        utilization: Optional[float] = (
            self.supervisor.nominal_utilization if supervised else None
        )
        min_utilization = utilization
        water_target = self.rack.chiller.setpoint_c
        rack_shutdown_time: Optional[float] = None
        trip_c = (
            self.supervisor.controller.thresholds.component_trip_c
            if supervised
            else None
        )

        time_s = 0.0
        while time_s <= duration_s:
            # Apply due one-shot loop closures.
            for idx, event in enumerate(events):
                if idx in applied or time_s < event.time_s:
                    continue
                if event.kind == "loop_blockage" and event.target.startswith("loop_"):
                    loop = int(event.target.split("_", 1)[1])
                    self._manifold.fail_loop(loop)
                    new_flows = self._water_flows(time_s)
                    if new_flows is not None:
                        flows = new_flows
                    applied.add(idx)
                elif event.target == "chiller":
                    applied.add(idx)  # handled continuously below

            capacity = self._chiller_capacity_w(time_s, events)
            workload = self._workload_fraction_from_events(time_s, events)

            total_rejected = 0.0
            total_heat = 0.0
            junctions: Dict[str, float] = {}
            sample: Dict[str, float] = {"water_c": water_c}
            for i in range(n):
                module = self._modules[i]
                if i not in down:
                    base = (
                        utilization
                        if supervised and utilization is not None
                        else module.section.ccb.fpga.utilization
                    )
                    effective = min(1.0, max(0.0, base * workload))
                    if effective != module.section.ccb.fpga.utilization:
                        module = self._throttled_module(i, effective)
                state = self._module_state(module, oils[i], water_c, flows[i])
                if i in down:
                    # A dark module: no heat, its loop still rejects the
                    # stored bath energy while it cools down.
                    state["heat"] = 0.0
                    state["junction"] = oils[i]
                oils[i] += (state["heat"] - state["rejected"]) * dt_s / self.oil_thermal_mass_j_k
                oils[i] = min(oils[i], module.section.oil.t_max_c - 1.0)
                total_rejected += state["rejected"]
                total_heat += state["heat"]
                max_fpga = max(max_fpga, state["junction"])
                if state["junction"] > self.junction_limit_c:
                    time_over[i] += dt_s
                sample[f"oil_{i}"] = oils[i]
                sample[f"junction_{i}"] = state["junction"]
                if self.checks is not None:
                    # The per-module energy terms the verification layer
                    # replays the bath updates from.
                    sample[f"heat_{i}"] = state["heat"]
                    sample[f"rejected_{i}"] = state["rejected"]
                if i not in down:
                    junctions[f"cm_{i}"] = state["junction"]

            if supervised and rack_shutdown_time is None:
                # Isolate individually tripped CMs *before* the rack-wide
                # decision: one runaway module must not latch the whole
                # rack into SAFE_SHUTDOWN while eleven others run cold.
                for i in range(n):
                    name = f"cm_{i}"
                    if name in junctions and junctions[name] >= trip_c:
                        down.add(i)
                        modules_shutdown.append(i)
                        del junctions[name]
                        self.supervisor.record(
                            time_s,
                            "module_shutdown",
                            f"cm_{i} junction {sample[f'junction_{i}']:.1f} C "
                            "at trip; module isolated",
                            state=SupervisorState.DEGRADED,
                        )
                decision = self.supervisor.step(
                    time_s,
                    water_c,
                    component_temps_c=junctions,
                    flow_m3_s=sum(flows),
                    level_fraction=1.0,
                )
                alarm_log.observe(time_s, decision.alarms)
                utilization = decision.utilization
                if min_utilization is None or utilization < min_utilization:
                    min_utilization = utilization
                water_target = min(
                    self.rack.chiller.setpoint_c, decision.chiller_setpoint_c
                )
                if decision.shutdown:
                    rack_shutdown_time = time_s
                    down.update(range(n))

            if supervised:
                sample["supervisor_state"] = float(self.supervisor.state.value)
                sample["utilization"] = (
                    utilization
                    if utilization is not None
                    else self.supervisor.nominal_utilization
                )

            sample["heat_w"] = total_heat
            sample["rejected_w"] = total_rejected
            sample["chiller_capacity_w"] = capacity
            sample["water_target_c"] = water_target

            heat_rejected_j += total_rejected * dt_s
            removed = min(total_rejected, capacity)
            water_c += (total_rejected - removed) * dt_s / self.water_thermal_mass_j_k
            # The chiller pulls the loop back toward the (possibly
            # fallen-back) setpoint when it has spare capacity.
            if capacity > total_rejected and water_c > water_target:
                spare = capacity - total_rejected
                water_c -= spare * dt_s / self.water_thermal_mass_j_k
                water_c = max(water_c, water_target)
            max_water = max(max_water, water_c)

            telemetry.record(time_s, sample)
            time_s += dt_s

        counters = self._manifold.solver_counters
        telemetry.set_counters(
            {
                "hydraulic_solves": counters.solves,
                "hydraulic_cache_hits": counters.cache_hits,
                "hydraulic_warm_starts": counters.warm_starts,
                "hydraulic_scalar_fallbacks": counters.scalar_fallbacks,
                "hydraulic_retry_attempts": self._retry_attempts,
                "alarm_episodes": alarm_log.episodes,
            }
        )
        # Run-scoped instance metrics (zeroed by reset()), then the same
        # totals accumulated into the process-wide registry. The manifold
        # solver's own counters already stream there per solve under the
        # ``hydraulics_`` prefix.
        self.metrics.merge_counters(
            {
                "runs": 1,
                "steps": len(telemetry),
                "hydraulic_retry_attempts": self._retry_attempts,
                "alarm_episodes": alarm_log.episodes,
                "modules_shutdown": len(modules_shutdown),
                "rack_shutdowns": 1 if rack_shutdown_time is not None else 0,
            }
        )
        obs = get_registry()
        if obs.enabled:
            obs.merge_counters(
                self.metrics.as_dict()["counters"], prefix="rack_sim_"
            )
        over = [i for i, t in time_over.items() if t > 0.0]
        final_state: Optional[str] = None
        recovery_actions: Tuple[RecoveryAction, ...] = ()
        degraded_pflops: Optional[float] = None
        if supervised:
            final_state = self.supervisor.state.name
            recovery_actions = tuple(self.supervisor.actions)
            alive = n - len(down)
            section = self._modules[0].section
            chips = section.n_boards * section.ccb.n_fpgas
            degraded_pflops = (
                alive
                * chips
                * sustained_gflops(section.ccb.fpga.family, min_utilization)
                / 1.0e6
            )
        result = RackSimResult(
            telemetry=telemetry,
            max_fpga_c=max_fpga,
            max_water_c=max_water,
            modules_over_limit=sorted(over),
            time_over_limit_s=time_over,
            final_state=final_state,
            recovery_actions=recovery_actions,
            modules_shutdown=tuple(modules_shutdown),
            degraded_pflops=degraded_pflops,
            alarm_log=alarm_log,
            heat_rejected_j=heat_rejected_j,
        )
        if self.checks is not None:
            self.checks.check_rack_run(self, result, dt_s=dt_s)
        return result


__all__ = ["RackSimResult", "RackSimulator", "RUNAWAY_CLAMP_C"]
