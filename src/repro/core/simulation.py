"""Coupled transient simulation of a computational module.

Couples, per time step: failure events -> pump speed -> oil circulation ->
quasi-static chip junctions (silicon settles in seconds; the oil bath in
tens of minutes, so the bath temperature is the state variable) -> bath
energy balance against the plate exchanger -> sensors -> supervisory
controller.

This is the harness behind the failure experiments: what the paper's
control subsystem ("sensors of level, flow, and temperature of the
heat-transfer agent, and a temperature sensor for cooling components")
must catch when a pump stops or the thermal interface degrades.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.control.controller import ControlAction, CoolingController
from repro.control.pid import PidController
from repro.control.monitor import AlarmLog, TelemetryLog
from repro.control.sensors import Sensor, SensorError, TemperatureSensor
from repro.control.supervisor import RecoveryAction, Supervisor
from repro.core.module import ComputationalModule
from repro.devices.fpga import Fpga
from repro.devices.power import ThermalRunawayError
from repro.obs import MetricsRegistry, get_registry
from repro.performance.flops import sustained_gflops
from repro.reliability.failures import FailureEvent
from repro.resilience.voting import median_vote
from repro.thermal.convection import natural_vertical_film

if TYPE_CHECKING:  # pragma: no cover - verify imports this module
    from repro.verify.checkers import CheckSuite

#: Junction temperature reported when leakage runaway is reached — the
#: simulation clamps here and relies on the controller trip.
RUNAWAY_CLAMP_C = 150.0


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a transient run.

    ``alarms_raised`` counts every alarm of every evaluation cycle (a
    persistent condition inflates it each step); ``alarm_log`` holds the
    deduplicated episodes — see
    :class:`~repro.control.monitor.AlarmLog`.
    """

    telemetry: TelemetryLog
    max_junction_c: float
    max_oil_c: float
    shutdown_time_s: Optional[float]
    alarms_raised: int
    alarm_log: AlarmLog = field(default_factory=AlarmLog)
    #: Supervisor ladder state at the end of a supervised run ("NORMAL",
    #: "DEGRADED", "THROTTLED", "SAFE_SHUTDOWN"); None when unsupervised.
    final_state: Optional[str] = None
    #: Every supervisory intervention of the run, in order.
    recovery_actions: Tuple[RecoveryAction, ...] = ()
    #: Sustained module performance at the *lowest* utilization the
    #: supervisor commanded during the run, PFlops; None when unsupervised.
    degraded_pflops: Optional[float] = None

    def survived(self, junction_limit_c: float) -> bool:
        """Whether no junction exceeded the given limit during the run."""
        return self.max_junction_c <= junction_limit_c


@dataclass
class ModuleSimulator:
    """Time-stepping simulator for one CM.

    Parameters
    ----------
    module:
        The CM under test (its pump's speed is commanded by events and the
        controller each step; the module object itself is not mutated).
    water_in_c, water_flow_m3_s:
        Secondary-loop boundary conditions.
    oil_thermal_mass_j_k:
        Bath heat capacitance (oil volume x rho x cp; ~60 L for a 3U CM).
    controller:
        Optional supervisory controller; None runs open-loop.
    supervisor:
        Optional recovery supervisor
        (:class:`~repro.control.supervisor.Supervisor`). Mutually
        exclusive with ``controller`` — the supervisor owns its own. A
        supervised run reads the bath through a redundant 3-sensor bank,
        votes it down (:func:`repro.resilience.voting.median_vote`) and
        closes the loop on the decision: pump failover re-routes
        ``pump_stop`` events to the active pump, throttling re-rates the
        FPGAs, the chiller fallback lowers the water supply temperature.
    pid:
        Optional PID regulator (e.g.
        :func:`repro.control.pid.bath_temperature_pid`) trimming the pump
        speed continuously against the bath temperature. The supervisory
        controller's trip authority overrides it.
    bath_volume_m3:
        Open-bath oil inventory; converts a leak's volumetric rate into a
        level-fraction drop per step (~60 L for a 3U CM).

    Attributes
    ----------
    metrics:
        A per-instance, run-scoped :class:`~repro.obs.MetricsRegistry`
        holding the *last run's* counters (``steps``,
        ``flow_cache_hits``, ...). :meth:`reset` zeroes it, so
        back-to-back runs never accumulate stale counts; at the end of
        each run the totals are also published into the process-wide
        registry under the ``module_sim_`` prefix.
    """

    module: ComputationalModule
    water_in_c: float = 20.0
    water_flow_m3_s: float = 1.2e-3
    oil_thermal_mass_j_k: float = 1.0e5
    controller: Optional[CoolingController] = None
    supervisor: Optional[Supervisor] = None
    pid: Optional["PidController"] = None
    bath_volume_m3: float = 0.06
    #: Gaussian noise of each redundant bath sensor, Celsius.
    coolant_sensor_noise_std: float = 0.05
    #: Bath-temperature quantization of the pump operating-point cache;
    #: the oil loop's flow changes ~0.1 % across the default bucket, far
    #: inside the model's calibration error, while the cache removes a
    #: bracketed root find from almost every step.
    flow_cache_bucket_c: float = 0.1
    #: Optional invariant-checker suite (:class:`repro.verify.checkers.
    #: CheckSuite`). When attached, every finished run is audited against
    #: the conservation-law catalog; None (the default) skips the hook
    #: entirely, so unchecked runs pay nothing.
    checks: Optional["CheckSuite"] = None
    _tim_multiplier: float = field(init=False, default=1.0, repr=False)
    _workload_fraction: float = field(init=False, default=1.0, repr=False)
    _flow_cache: Dict[int, float] = field(init=False, default_factory=dict, repr=False)
    _flow_cache_hits: int = field(init=False, default=0, repr=False)
    _flow_cache_misses: int = field(init=False, default=0, repr=False)
    _utilization: Optional[float] = field(init=False, default=None, repr=False)
    _throttled_fpgas: Dict[float, Fpga] = field(
        init=False, default_factory=dict, repr=False
    )
    _coolant_sensors: List[Sensor] = field(
        init=False, default_factory=list, repr=False
    )
    metrics: MetricsRegistry = field(
        init=False, default_factory=MetricsRegistry, repr=False
    )

    def __post_init__(self) -> None:
        if self.controller is not None and self.supervisor is not None:
            raise ValueError(
                "pass either a controller or a supervisor, not both "
                "(the supervisor owns its own controller)"
            )
        if self.bath_volume_m3 <= 0:
            raise ValueError("bath volume must be positive")

    def reset(self) -> None:
        """Restore pristine per-run state (caches, latches, PID memory).

        Called automatically at the start of every :meth:`run`, so
        back-to-back simulations on one simulator are order-independent:
        a tripped controller latch, accumulated PID integral, TIM
        multiplier, cached operating points or registered metrics from a
        previous scenario cannot leak into the next.
        """
        self.metrics.reset()
        self._tim_multiplier = 1.0
        self._workload_fraction = 1.0
        self._flow_cache.clear()
        self._flow_cache_hits = 0
        self._flow_cache_misses = 0
        self._utilization = None
        if self.pid is not None:
            self.pid.reset()
        if self.controller is not None:
            self.controller.reset()
        if self.supervisor is not None:
            self.supervisor.reset()
            # A fresh seeded bank per run: the noise draws of one scenario
            # cannot shift the readings of the next.
            self._coolant_sensors = [
                TemperatureSensor(
                    f"oil_temp_{i}",
                    noise_std=self.coolant_sensor_noise_std,
                    seed=1000 + i,
                )
                for i in range(3)
            ]

    def _loop_flow(self, oil_c: float) -> float:
        """Full-speed oil-loop flow, cached on the bucketed bath temperature."""
        if self.flow_cache_bucket_c <= 0:
            return self.module.oil_loop_flow(oil_c)
        bucket = int(round(oil_c / self.flow_cache_bucket_c))
        try:
            flow = self._flow_cache[bucket]
            self._flow_cache_hits += 1
            return flow
        except KeyError:
            flow = self.module.oil_loop_flow(bucket * self.flow_cache_bucket_c)
            self._flow_cache[bucket] = flow
            self._flow_cache_misses += 1
            return flow

    def _pump_speed_from_events(
        self,
        time_s: float,
        events: List[FailureEvent],
        commanded: float,
        active_pump: Optional[str] = None,
    ) -> float:
        """Degrade the commanded speed by due pump failures.

        Unsupervised, every ``pump_stop`` applies (there is only one
        pump). Supervised, only events targeting the *active* pump bite —
        a failover to the standby escapes the primary's failure.
        """
        speed = commanded
        for event in events:
            if event.kind != "pump_stop" or time_s < event.time_s:
                continue
            if active_pump is not None and event.target != active_pump:
                continue
            speed = min(speed, event.magnitude)
        return speed

    def _flow_multiplier_from_events(
        self, time_s: float, events: List[FailureEvent]
    ) -> float:
        """Remaining oil-loop opening under due blockage events."""
        multiplier = 1.0
        for event in events:
            if event.kind == "loop_blockage" and time_s >= event.time_s:
                multiplier = min(multiplier, event.magnitude)
        return multiplier

    def _apply_sensor_faults(
        self, time_s: float, events: List[FailureEvent], applied: set
    ) -> None:
        """Inject due ``sensor_fault`` events into the redundant bank."""
        if not self._coolant_sensors:
            return
        for idx, event in enumerate(events):
            if idx in applied or event.kind != "sensor_fault" or time_s < event.time_s:
                continue
            suffix = event.target.rsplit("_", 1)[-1]
            bank_index = int(suffix) if suffix.isdigit() else 0
            bank_index %= len(self._coolant_sensors)
            self._coolant_sensors[bank_index].inject_bias(event.magnitude)
            applied.add(idx)

    def _throttled_fpga(self, utilization: float) -> Fpga:
        """The module's FPGA re-rated to a commanded utilization (cached —
        the supervisor only ever commands a handful of distinct steps)."""
        try:
            return self._throttled_fpgas[utilization]
        except KeyError:
            fpga = replace(self.module.section.ccb.fpga, utilization=utilization)
            self._throttled_fpgas[utilization] = fpga
            return fpga

    def _tim_multiplier_from_events(self, time_s: float, events: List[FailureEvent]) -> float:
        multiplier = 1.0
        for event in events:
            if event.kind == "tim_washout" and time_s >= event.time_s:
                multiplier = max(multiplier, event.magnitude)
        return multiplier

    def _workload_fraction_from_events(
        self, time_s: float, events: List[FailureEvent]
    ) -> float:
        """Current workload fraction under due ``power_step`` events.

        A step function, not a degradation: the *latest* due event wins
        (``events`` arrive time-sorted), and the fraction before the
        first event is 1 — full commanded power.
        """
        fraction = 1.0
        for event in events:
            if event.kind == "power_step" and time_s >= event.time_s:
                fraction = event.magnitude
        return fraction

    def _chip_state(self, oil_c: float, oil_flow_m3_s: float):
        """Worst-chip junction and total bath heat at the current state.

        With circulation the forced-convection resistance applies; with the
        pump stopped the sink falls back to natural convection in the bath.
        Returns ``(junction_c, bath_heat_w)``.
        """
        section = self.module.section
        fpga = section.ccb.fpga
        base_utilization = (
            self._utilization if self._utilization is not None else fpga.utilization
        )
        effective = min(1.0, max(0.0, base_utilization * self._workload_fraction))
        if effective != fpga.utilization:
            fpga = self._throttled_fpga(effective)
        family = fpga.family
        if oil_flow_m3_s > 1.0e-6:
            resistance = section.chip_resistance_k_w(oil_flow_m3_s, oil_c)
        else:
            # Natural convection on the sink's wetted area, evaluated at a
            # representative 25 K film temperature difference.
            film = natural_vertical_film(25.0, section.sink.base_depth_m, section.oil, oil_c)
            r_conv = 1.0 / (film.h_w_m2k * section.sink.wetted_area_m2)
            resistance = (
                family.theta_jc_k_w
                + section.tim.resistance_k_w(family.die_area_m2)
                + r_conv
            )
        resistance += (self._tim_multiplier - 1.0) * section.tim.resistance_k_w(
            family.die_area_m2
        )
        try:
            point = fpga.operate(resistance, oil_c)
            junction = point.junction_c
            chip_power = point.power_w
        except ThermalRunawayError:
            junction = RUNAWAY_CLAMP_C
            chip_power = fpga.power_w(RUNAWAY_CLAMP_C)
        chips = section.n_boards * section.ccb.n_fpgas
        misc = section.n_boards * section.ccb.misc_power_w
        controller_heat = (
            section.n_boards * chip_power / 3.0 if section.ccb.separate_controller else 0.0
        )
        heat = chips * chip_power + misc + controller_heat
        heat += section.psu.dissipation_w(
            min(heat / section.n_psus, section.psu.rated_output_w)
        ) * section.n_psus
        return junction, heat

    def run(
        self,
        duration_s: float,
        events: Optional[List[FailureEvent]] = None,
        dt_s: float = 5.0,
        initial_oil_c: Optional[float] = None,
    ) -> SimulationResult:
        """Integrate the module state over ``duration_s`` seconds."""
        obs = get_registry()
        with obs.span("module_sim.run"), obs.profile("module_sim.run"):
            return self._run(duration_s, events, dt_s, initial_oil_c)

    def run_many(
        self,
        duration_s: float,
        scenarios: List[Optional[List[FailureEvent]]],
        dt_s: float = 5.0,
        initial_oil_c: Optional[float] = None,
    ):
        """Batched open-loop view of :meth:`run` over N event scenarios.

        Stacks every scenario's bath state into the structure-of-arrays
        transient engine (:func:`repro.batch.transient.
        run_module_transient_batch`) under this simulator's boundary
        conditions; ``batch.result(i)`` rebuilds the exact serial
        :class:`SimulationResult`. Open-loop only — closed-loop runs
        (controller, supervisor or PID attached) keep using :meth:`run`,
        whose scalar stepping stays the differential oracle. When a
        :class:`~repro.verify.checkers.CheckSuite` is attached, every
        lane's rebuilt result is audited exactly like a serial run.
        """
        if (
            self.controller is not None
            or self.supervisor is not None
            or self.pid is not None
        ):
            raise ValueError(
                "run_many is open-loop only — closed-loop runs "
                "(controller/supervisor/PID) use run()"
            )
        from repro.batch.transient import run_module_transient_batch

        obs = get_registry()
        with obs.span("module_sim.run_many"), obs.profile("module_sim.run_many"):
            batch = run_module_transient_batch(
                self.module,
                duration_s,
                list(scenarios),
                dt_s=dt_s,
                water_in_c=self.water_in_c,
                water_flow_m3_s=self.water_flow_m3_s,
                oil_thermal_mass_j_k=self.oil_thermal_mass_j_k,
                bath_volume_m3=self.bath_volume_m3,
                flow_cache_bucket_c=self.flow_cache_bucket_c,
                initial_oil_c=initial_oil_c,
            )
        if self.checks is not None:
            initial_bath_c = (
                initial_oil_c if initial_oil_c is not None else self.water_in_c + 8.0
            )
            for i in range(len(batch.errors)):
                if batch.errors[i] is None:
                    self.checks.check_module_run(
                        self,
                        batch.result(i),
                        dt_s=dt_s,
                        initial_oil_c=initial_bath_c,
                    )
        return batch

    def _run(
        self,
        duration_s: float,
        events: Optional[List[FailureEvent]],
        dt_s: float,
        initial_oil_c: Optional[float],
    ) -> SimulationResult:
        if duration_s <= 0 or dt_s <= 0:
            raise ValueError("duration and step must be positive")
        self.reset()
        events = sorted(events or [], key=lambda e: e.time_s)
        telemetry = TelemetryLog()
        alarm_log = AlarmLog()
        oil_c = initial_oil_c if initial_oil_c is not None else self.water_in_c + 8.0
        initial_bath_c = oil_c
        commanded_speed = 1.0
        shutdown_time: Optional[float] = None
        alarms = 0
        max_junction = -1.0e9
        max_oil = oil_c
        supervised = self.supervisor is not None
        active_pump: Optional[str] = (
            self.supervisor.active_pump if supervised else None
        )
        water_in_c = self.water_in_c
        level = 1.0
        min_utilization: Optional[float] = (
            self.supervisor.nominal_utilization if supervised else None
        )
        sensor_faults_applied: set = set()
        oil_ceiling = self.module.section.oil.t_max_c - 1.0

        time_s = 0.0
        while time_s <= duration_s:
            self._tim_multiplier = self._tim_multiplier_from_events(time_s, events)
            self._workload_fraction = self._workload_fraction_from_events(
                time_s, events
            )
            # A leak drains the open bath at its volumetric rate; there is
            # no automatic make-up, so the level only falls.
            for event in events:
                if event.kind == "leak" and time_s >= event.time_s:
                    level -= event.magnitude * dt_s / self.bath_volume_m3
            level = max(level, 0.0)
            self._apply_sensor_faults(time_s, events, sensor_faults_applied)

            if self.pid is not None and shutdown_time is None and not supervised:
                commanded_speed = self.pid.update(oil_c, dt_s)
            speed = self._pump_speed_from_events(
                time_s, events, commanded_speed, active_pump
            )

            if speed > 0.0:
                flow = self._loop_flow(oil_c) * speed
                flow *= self._flow_multiplier_from_events(time_s, events)
            else:
                flow = 0.0
            if supervised and shutdown_time is None:
                # The loss-of-flow interlock switches pumps within the
                # step — the standby spins up before the chips see
                # stagnant oil (the thermal decision below is slower).
                if self.supervisor.flow_interlock(time_s, flow):
                    active_pump = self.supervisor.active_pump
                    speed = self._pump_speed_from_events(
                        time_s, events, commanded_speed, active_pump
                    )
                    speed = min(speed, self.supervisor.standby_speed_fraction)
                    if speed > 0.0:
                        flow = self._loop_flow(oil_c) * speed
                        flow *= self._flow_multiplier_from_events(time_s, events)
                    else:
                        flow = 0.0
            junction, bath_heat = self._chip_state(oil_c, flow)
            if shutdown_time is not None:
                # Electronics are off after a trip; only residual heat.
                bath_heat = 0.0
                junction = oil_c

            if flow > 1.0e-6 and oil_c > water_in_c:
                hx = self.module.hx.solve(
                    self.module.section.oil,
                    oil_c,
                    flow,
                    self.module.water,
                    water_in_c,
                    self.water_flow_m3_s,
                )
                rejected = hx.q_w
            else:
                rejected = 0.0

            if self.module.pump.immersed and speed > 0.0:
                bath_heat += self.module.pump.electrical_power_w(flow)

            oil_c += (bath_heat - rejected) * dt_s / self.oil_thermal_mass_j_k
            # The property fits end below the flash point; an uncontrolled
            # run that drives the bath there is already a destroyed machine,
            # so clamp the state at the model ceiling.
            oil_c = min(oil_c, oil_ceiling)
            max_junction = max(max_junction, junction)
            max_oil = max(max_oil, oil_c)

            action: Optional[ControlAction] = None
            if self.controller is not None and shutdown_time is None:
                action = self.controller.evaluate(
                    coolant_c=oil_c,
                    component_temps_c={"fpga_hot": junction},
                    flow_m3_s=flow,
                    level_fraction=level,
                )
                alarms += len(action.alarms)
                alarm_log.observe(time_s, action.alarms)
                commanded_speed = action.pump_speed_fraction
                if action.shutdown:
                    shutdown_time = time_s
            elif supervised and shutdown_time is None:
                readings: List[Optional[float]] = []
                for sensor in self._coolant_sensors:
                    try:
                        readings.append(sensor.read(oil_c))
                    except SensorError:
                        readings.append(None)
                vote = median_vote(
                    readings,
                    lo=-10.0,
                    hi=oil_ceiling + 30.0,
                    deviation_limit=3.0,
                )
                decision = self.supervisor.step(
                    time_s,
                    vote,
                    component_temps_c={"fpga_hot": junction},
                    flow_m3_s=flow,
                    level_fraction=level,
                )
                alarms += len(decision.alarms)
                alarm_log.observe(time_s, decision.alarms)
                commanded_speed = decision.pump_speed_fraction
                active_pump = decision.active_pump
                self._utilization = decision.utilization
                if min_utilization is None or decision.utilization < min_utilization:
                    min_utilization = decision.utilization
                # The chiller fallback only helps (the facility never
                # supplies warmer water than the actual plant delivers).
                water_in_c = min(self.water_in_c, decision.chiller_setpoint_c)
                if decision.shutdown:
                    shutdown_time = time_s

            sample = {
                "oil_c": oil_c,
                "junction_c": junction,
                "oil_flow_m3_s": flow,
                "bath_heat_w": bath_heat,
                "rejected_w": rejected,
                "pump_speed": speed if shutdown_time is None else 0.0,
                "level_fraction": level,
            }
            if supervised:
                sample["utilization"] = (
                    self._utilization
                    if self._utilization is not None
                    else self.supervisor.nominal_utilization
                )
                sample["supervisor_state"] = float(self.supervisor.state.value)
            telemetry.record(time_s, sample)
            time_s += dt_s

        telemetry.set_counters(
            {
                "flow_cache_hits": self._flow_cache_hits,
                "flow_cache_misses": self._flow_cache_misses,
                "alarm_episodes": alarm_log.episodes,
            }
        )
        # Run-scoped instance metrics (zeroed by reset()), then the same
        # totals accumulated into the process-wide registry.
        self.metrics.merge_counters(
            {
                "runs": 1,
                "steps": len(telemetry),
                "flow_cache_hits": self._flow_cache_hits,
                "flow_cache_misses": self._flow_cache_misses,
                "alarm_episodes": alarm_log.episodes,
                "alarms_raised": alarms,
                "shutdowns": 1 if shutdown_time is not None else 0,
            }
        )
        obs = get_registry()
        if obs.enabled:
            obs.merge_counters(
                self.metrics.as_dict()["counters"], prefix="module_sim_"
            )
        final_state: Optional[str] = None
        recovery_actions: Tuple[RecoveryAction, ...] = ()
        degraded_pflops: Optional[float] = None
        if supervised:
            final_state = self.supervisor.state.name
            recovery_actions = tuple(self.supervisor.actions)
            section = self.module.section
            chips = section.n_boards * section.ccb.n_fpgas
            degraded_pflops = (
                chips
                * sustained_gflops(section.ccb.fpga.family, min_utilization)
                / 1.0e6
            )
        result = SimulationResult(
            telemetry=telemetry,
            max_junction_c=max_junction,
            max_oil_c=max_oil,
            shutdown_time_s=shutdown_time,
            alarms_raised=alarms,
            alarm_log=alarm_log,
            final_state=final_state,
            recovery_actions=recovery_actions,
            degraded_pflops=degraded_pflops,
        )
        if self.checks is not None:
            self.checks.check_module_run(
                self, result, dt_s=dt_s, initial_oil_c=initial_bath_c
            )
        return result


__all__ = ["ModuleSimulator", "RUNAWAY_CLAMP_C", "SimulationResult"]
