"""Coupled transient simulation of a computational module.

Couples, per time step: failure events -> pump speed -> oil circulation ->
quasi-static chip junctions (silicon settles in seconds; the oil bath in
tens of minutes, so the bath temperature is the state variable) -> bath
energy balance against the plate exchanger -> sensors -> supervisory
controller.

This is the harness behind the failure experiments: what the paper's
control subsystem ("sensors of level, flow, and temperature of the
heat-transfer agent, and a temperature sensor for cooling components")
must catch when a pump stops or the thermal interface degrades.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.control.controller import ControlAction, CoolingController
from repro.control.pid import PidController
from repro.control.monitor import AlarmLog, TelemetryLog
from repro.core.module import ComputationalModule
from repro.devices.power import ThermalRunawayError
from repro.reliability.failures import FailureEvent
from repro.thermal.convection import natural_vertical_film

#: Junction temperature reported when leakage runaway is reached — the
#: simulation clamps here and relies on the controller trip.
RUNAWAY_CLAMP_C = 150.0


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a transient run.

    ``alarms_raised`` counts every alarm of every evaluation cycle (a
    persistent condition inflates it each step); ``alarm_log`` holds the
    deduplicated episodes — see
    :class:`~repro.control.monitor.AlarmLog`.
    """

    telemetry: TelemetryLog
    max_junction_c: float
    max_oil_c: float
    shutdown_time_s: Optional[float]
    alarms_raised: int
    alarm_log: AlarmLog = field(default_factory=AlarmLog)

    def survived(self, junction_limit_c: float) -> bool:
        """Whether no junction exceeded the given limit during the run."""
        return self.max_junction_c <= junction_limit_c


@dataclass
class ModuleSimulator:
    """Time-stepping simulator for one CM.

    Parameters
    ----------
    module:
        The CM under test (its pump's speed is commanded by events and the
        controller each step; the module object itself is not mutated).
    water_in_c, water_flow_m3_s:
        Secondary-loop boundary conditions.
    oil_thermal_mass_j_k:
        Bath heat capacitance (oil volume x rho x cp; ~60 L for a 3U CM).
    controller:
        Optional supervisory controller; None runs open-loop.
    pid:
        Optional PID regulator (e.g.
        :func:`repro.control.pid.bath_temperature_pid`) trimming the pump
        speed continuously against the bath temperature. The supervisory
        controller's trip authority overrides it.
    """

    module: ComputationalModule
    water_in_c: float = 20.0
    water_flow_m3_s: float = 1.2e-3
    oil_thermal_mass_j_k: float = 1.0e5
    controller: Optional[CoolingController] = None
    pid: Optional["PidController"] = None
    #: Bath-temperature quantization of the pump operating-point cache;
    #: the oil loop's flow changes ~0.1 % across the default bucket, far
    #: inside the model's calibration error, while the cache removes a
    #: bracketed root find from almost every step.
    flow_cache_bucket_c: float = 0.1
    _tim_multiplier: float = field(init=False, default=1.0, repr=False)
    _flow_cache: Dict[int, float] = field(init=False, default_factory=dict, repr=False)
    _flow_cache_hits: int = field(init=False, default=0, repr=False)
    _flow_cache_misses: int = field(init=False, default=0, repr=False)

    def reset(self) -> None:
        """Restore pristine per-run state (caches, latches, PID memory).

        Called automatically at the start of every :meth:`run`, so
        back-to-back simulations on one simulator are order-independent:
        a tripped controller latch, accumulated PID integral, TIM
        multiplier or cached operating points from a previous scenario
        cannot leak into the next.
        """
        self._tim_multiplier = 1.0
        self._flow_cache.clear()
        self._flow_cache_hits = 0
        self._flow_cache_misses = 0
        if self.pid is not None:
            self.pid.reset()
        if self.controller is not None:
            self.controller.reset()

    def _loop_flow(self, oil_c: float) -> float:
        """Full-speed oil-loop flow, cached on the bucketed bath temperature."""
        if self.flow_cache_bucket_c <= 0:
            return self.module.oil_loop_flow(oil_c)
        bucket = int(round(oil_c / self.flow_cache_bucket_c))
        try:
            flow = self._flow_cache[bucket]
            self._flow_cache_hits += 1
            return flow
        except KeyError:
            flow = self.module.oil_loop_flow(bucket * self.flow_cache_bucket_c)
            self._flow_cache[bucket] = flow
            self._flow_cache_misses += 1
            return flow

    def _pump_speed_from_events(
        self, time_s: float, events: List[FailureEvent], commanded: float
    ) -> float:
        speed = commanded
        for event in events:
            if event.kind == "pump_stop" and time_s >= event.time_s:
                speed = min(speed, event.magnitude)
        return speed

    def _tim_multiplier_from_events(self, time_s: float, events: List[FailureEvent]) -> float:
        multiplier = 1.0
        for event in events:
            if event.kind == "tim_washout" and time_s >= event.time_s:
                multiplier = max(multiplier, event.magnitude)
        return multiplier

    def _chip_state(self, oil_c: float, oil_flow_m3_s: float):
        """Worst-chip junction and total bath heat at the current state.

        With circulation the forced-convection resistance applies; with the
        pump stopped the sink falls back to natural convection in the bath.
        Returns ``(junction_c, bath_heat_w)``.
        """
        section = self.module.section
        fpga = section.ccb.fpga
        family = fpga.family
        if oil_flow_m3_s > 1.0e-6:
            resistance = section.chip_resistance_k_w(oil_flow_m3_s, oil_c)
        else:
            # Natural convection on the sink's wetted area, evaluated at a
            # representative 25 K film temperature difference.
            film = natural_vertical_film(25.0, section.sink.base_depth_m, section.oil, oil_c)
            r_conv = 1.0 / (film.h_w_m2k * section.sink.wetted_area_m2)
            resistance = (
                family.theta_jc_k_w
                + section.tim.resistance_k_w(family.die_area_m2)
                + r_conv
            )
        resistance += (self._tim_multiplier - 1.0) * section.tim.resistance_k_w(
            family.die_area_m2
        )
        try:
            point = fpga.operate(resistance, oil_c)
            junction = point.junction_c
            chip_power = point.power_w
        except ThermalRunawayError:
            junction = RUNAWAY_CLAMP_C
            chip_power = fpga.power_w(RUNAWAY_CLAMP_C)
        chips = section.n_boards * section.ccb.n_fpgas
        misc = section.n_boards * section.ccb.misc_power_w
        controller_heat = (
            section.n_boards * chip_power / 3.0 if section.ccb.separate_controller else 0.0
        )
        heat = chips * chip_power + misc + controller_heat
        heat += section.psu.dissipation_w(
            min(heat / section.n_psus, section.psu.rated_output_w)
        ) * section.n_psus
        return junction, heat

    def run(
        self,
        duration_s: float,
        events: Optional[List[FailureEvent]] = None,
        dt_s: float = 5.0,
        initial_oil_c: Optional[float] = None,
    ) -> SimulationResult:
        """Integrate the module state over ``duration_s`` seconds."""
        if duration_s <= 0 or dt_s <= 0:
            raise ValueError("duration and step must be positive")
        self.reset()
        events = sorted(events or [], key=lambda e: e.time_s)
        telemetry = TelemetryLog()
        alarm_log = AlarmLog()
        oil_c = initial_oil_c if initial_oil_c is not None else self.water_in_c + 8.0
        commanded_speed = 1.0
        shutdown_time: Optional[float] = None
        alarms = 0
        max_junction = -1.0e9
        max_oil = oil_c

        time_s = 0.0
        while time_s <= duration_s:
            self._tim_multiplier = self._tim_multiplier_from_events(time_s, events)
            if self.pid is not None and shutdown_time is None:
                commanded_speed = self.pid.update(oil_c, dt_s)
            speed = self._pump_speed_from_events(time_s, events, commanded_speed)

            if speed > 0.0:
                flow = self._loop_flow(oil_c) * speed
            else:
                flow = 0.0
            junction, bath_heat = self._chip_state(oil_c, flow)
            if shutdown_time is not None:
                # Electronics are off after a trip; only residual heat.
                bath_heat = 0.0
                junction = oil_c

            if flow > 1.0e-6 and oil_c > self.water_in_c:
                hx = self.module.hx.solve(
                    self.module.section.oil,
                    oil_c,
                    flow,
                    self.module.water,
                    self.water_in_c,
                    self.water_flow_m3_s,
                )
                rejected = hx.q_w
            else:
                rejected = 0.0

            if self.module.pump.immersed and speed > 0.0:
                bath_heat += self.module.pump.electrical_power_w(flow)

            oil_c += (bath_heat - rejected) * dt_s / self.oil_thermal_mass_j_k
            # The property fits end below the flash point; an uncontrolled
            # run that drives the bath there is already a destroyed machine,
            # so clamp the state at the model ceiling.
            oil_ceiling = self.module.section.oil.t_max_c - 1.0
            oil_c = min(oil_c, oil_ceiling)
            max_junction = max(max_junction, junction)
            max_oil = max(max_oil, oil_c)

            level = 1.0
            action: Optional[ControlAction] = None
            if self.controller is not None and shutdown_time is None:
                action = self.controller.evaluate(
                    coolant_c=oil_c,
                    component_temps_c={"fpga_hot": junction},
                    flow_m3_s=flow,
                    level_fraction=level,
                )
                alarms += len(action.alarms)
                alarm_log.observe(time_s, action.alarms)
                commanded_speed = action.pump_speed_fraction
                if action.shutdown:
                    shutdown_time = time_s

            telemetry.record(
                time_s,
                {
                    "oil_c": oil_c,
                    "junction_c": junction,
                    "oil_flow_m3_s": flow,
                    "bath_heat_w": bath_heat,
                    "rejected_w": rejected,
                    "pump_speed": speed if shutdown_time is None else 0.0,
                },
            )
            time_s += dt_s

        telemetry.set_counters(
            {
                "flow_cache_hits": self._flow_cache_hits,
                "flow_cache_misses": self._flow_cache_misses,
                "alarm_episodes": alarm_log.episodes,
            }
        )
        return SimulationResult(
            telemetry=telemetry,
            max_junction_c=max_junction,
            max_oil_c=max_oil,
            shutdown_time_s=shutdown_time,
            alarms_raised=alarms,
            alarm_log=alarm_log,
        )


__all__ = ["ModuleSimulator", "RUNAWAY_CLAMP_C", "SimulationResult"]
