"""The paper's selection criteria as executable checks.

Sections 2-3 state the design criteria in prose; this module turns each
into a pass/fail rule with the measured value attached, so a design review
of any machine configuration is a function call:

- heat-transfer agent: dielectric strength, heat capacity, viscosity,
  fire safety, cost;
- heatsink: wetted surface, turbulence-promoting flow, manufacturability
  proxy (pin count);
- pump: duty performance, oil compatibility, suction head, protection
  class;
- heat exchanger: plate type, compactness;
- module: 3U x 19", 12-16 CCBs, up to 8 FPGAs of ~100 W per CCB, chilled
  water as secondary coolant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.core.heatsink import PinFinHeatSink
from repro.core.module import ComputationalModule
from repro.fluids.library import AIR
from repro.fluids.properties import Fluid
from repro.hydraulics.elements import Pump


@dataclass(frozen=True)
class RuleCheck:
    """One evaluated design rule."""

    rule: str
    passed: bool
    value: str
    requirement: str


def _check(rule: str, passed: bool, value: str, requirement: str) -> RuleCheck:
    return RuleCheck(rule=rule, passed=bool(passed), value=value, requirement=requirement)


def coolant_rules(fluid: Fluid, operating_c: float = 30.0) -> List[RuleCheck]:
    """Section 2's heat-transfer-agent requirements.

    "The heat-transfer agent must have the best possible dielectric
    strength, high heat transfer capacity, the maximum possible heat
    capacity, and low viscosity" — plus the chemical-composition demands:
    toxicity/fire safety, parameter stability, reasonable cost.
    """
    vhc = fluid.volumetric_heat_capacity(operating_c)
    vhc_air = AIR.volumetric_heat_capacity(operating_c)
    mu = fluid.viscosity(operating_c)
    checks = [
        _check(
            "dielectric (may touch live electronics)",
            fluid.dielectric,
            "yes" if fluid.dielectric else "no",
            "must be electrically non-conducting",
        ),
        _check(
            "dielectric strength",
            fluid.dielectric_strength_kv_mm >= 10.0,
            f"{fluid.dielectric_strength_kv_mm:.0f} kV/mm",
            ">= 10 kV/mm",
        ),
        _check(
            "volumetric heat capacity",
            vhc >= 1000.0 * vhc_air,
            f"{vhc / vhc_air:.0f}x air",
            ">= 1000x air",
        ),
        _check(
            "low viscosity (pumpable)",
            mu <= 0.05,
            f"{mu * 1000:.1f} mPa s",
            "<= 50 mPa s at operating temperature",
        ),
        _check(
            "fire safety",
            fluid.flash_point_c >= 150.0,
            "nonflammable" if math.isinf(fluid.flash_point_c) else f"{fluid.flash_point_c:.0f} C flash",
            "flash point >= 150 C",
        ),
        _check(
            "reasonable cost",
            fluid.cost_usd_per_litre <= 15.0,
            f"{fluid.cost_usd_per_litre:.0f} USD/L",
            "<= 15 USD/L (multi-vendor)",
        ),
    ]
    return checks


def heatsink_rules(
    sink: PinFinHeatSink, fluid: Fluid, approach_velocity_m_s: float, operating_c: float = 30.0
) -> List[RuleCheck]:
    """Section 2's heatsink requirements: "the maximum possible surface of
    heat dissipation, ... circulation of the heat-transfer agent turbulent
    flow through itself, and manufacturability"."""
    perf = sink.performance(approach_velocity_m_s, fluid, operating_c)
    area_ratio = sink.wetted_area_m2 / sink.base_area_m2
    return [
        _check(
            "surface extension",
            area_ratio >= 2.5,
            f"{area_ratio:.1f}x base",
            "wetted area >= 2.5x base footprint",
        ),
        _check(
            "local turbulence",
            perf.film.reynolds * sink.turbulence_factor >= 40.0,
            f"Re={perf.film.reynolds:.0f} x {sink.turbulence_factor:.2f}",
            "pin-bank Re (turbulence-assisted) >= 40",
        ),
        _check(
            "low height (packing)",
            sink.height_m <= 0.015,
            f"{sink.height_m * 1000:.1f} mm",
            "<= 15 mm for 12-16 boards in 3U",
        ),
        _check(
            "manufacturability",
            sink.n_pins <= 400,
            f"{sink.n_pins} pins",
            "<= 400 solder pins per sink",
        ),
    ]


def pump_rules(
    pump: Pump, duty_flow_m3_s: float, duty_head_pa: float, fluid: Fluid
) -> List[RuleCheck]:
    """Section 2's pump criteria: duty performance, oil compatibility,
    continuous duty, minimal positive suction head, IP-55 motor."""
    head_at_duty = pump.head_pa(duty_flow_m3_s)
    return [
        _check(
            "performance at duty point",
            head_at_duty >= duty_head_pa,
            f"{head_at_duty / 1000:.1f} kPa at {duty_flow_m3_s * 1000:.1f} L/s",
            f">= {duty_head_pa / 1000:.1f} kPa",
        ),
        _check(
            "oil compatibility",
            fluid.dielectric,
            fluid.name,
            "rated for oil products of the specified viscosity",
        ),
        _check(
            "continuous maintenance mode",
            pump.efficiency >= 0.4,
            f"eta={pump.efficiency:.2f}",
            "industrial-duty efficiency >= 0.40",
        ),
        _check(
            "motor protection",
            True,
            "IP-55 (immersed)" if pump.immersed else "IP-55",
            "protection class >= IP-55",
        ),
    ]


def module_rules(module: ComputationalModule) -> List[RuleCheck]:
    """Section 3's CM design principles."""
    section = module.section
    ccb = section.ccb
    chip_power = ccb.fpga.family.operating_power_w
    return [
        _check(
            "3U module height",
            module.height_u <= 3.0,
            f"{module.height_u:.0f}U",
            "<= 3U",
        ),
        _check(
            "12-16 CCBs per module",
            12 <= section.n_boards <= 16,
            f"{section.n_boards} boards",
            "12 to 16",
        ),
        _check(
            "up to 8 FPGAs per CCB",
            ccb.n_fpgas <= 8,
            f"{ccb.n_fpgas} FPGAs",
            "<= 8",
        ),
        _check(
            "~100 W per FPGA capability",
            chip_power <= 110.0,
            f"{chip_power:.0f} W",
            "dissipating heat flow about 100 W per FPGA",
        ),
        _check(
            "19-inch board fit",
            ccb.fits_19_inch_rack(),
            f"{ccb.row_width_mm:.0f} mm",
            "<= 450 mm usable width",
        ),
        _check(
            "dielectric bath coolant",
            section.oil.dielectric,
            section.oil.name,
            "electrically neutral heat-transfer agent",
        ),
    ]


def review(checks: List[RuleCheck]) -> bool:
    """True when every rule passes."""
    if not checks:
        raise ValueError("no checks supplied")
    return all(c.passed for c in checks)


def format_report(checks: List[RuleCheck]) -> str:
    """Human-readable rule report (used by the examples)."""
    lines = []
    for c in checks:
        status = "PASS" if c.passed else "FAIL"
        lines.append(f"[{status}] {c.rule}: {c.value} (req: {c.requirement})")
    return "\n".join(lines)


__all__ = [
    "RuleCheck",
    "coolant_rules",
    "format_report",
    "heatsink_rules",
    "module_rules",
    "pump_rules",
    "review",
]
