"""The GPU-era immersion computational module (AI-factory workload catalog).

Applies the paper's immersion grammar to GPU-class accelerators
(:mod:`repro.devices.gpu`): the same bath + heat-exchange-section
architecture as SKAT, re-sized for ~700 W dies — two boards of eight
SXM-class packages instead of twelve boards of FPGAs, a liquid-metal
interface, a wide tall-pin sink, a stronger circulation pump and a
larger plate exchanger. The factories are module-level callables, so
rack/facility sweeps can pickle them across process backends.

Everything downstream is unchanged: :class:`ModuleSimulator`,
:class:`RackSimulator`, :class:`FacilitySimulator` and the batched
open-loop core run a GPU module exactly like a SKAT module — only the
device catalog and the cooling geometry differ.
"""

from __future__ import annotations

from repro.core.heatsink import PinFinHeatSink, SOLDER_PIN_TURBULENCE_FACTOR
from repro.core.immersion import ImmersionSection
from repro.core.module import ComputationalModule
from repro.core.rack import Rack
from repro.core.tim import LIQUID_METAL_INTERFACE
from repro.devices.board import Ccb
from repro.devices.families import FpgaFamily
from repro.devices.fpga import Fpga
from repro.devices.gpu import H100_SXM
from repro.devices.psu import ImmersionPsu
from repro.heatexchange.chiller import Chiller
from repro.heatexchange.plate import PlateHeatExchanger
from repro.hydraulics.elements import Pipe, Pump, PumpCurve

#: Design chilled-water flow per GPU module — twice the SKAT figure, the
#: bath carries ~40 % more heat in two boards.
GPU_WATER_FLOW_M3_S = 2.4e-3


#: Effective conductivity of the GPU sink's two-phase base: a sealed
#: vapor chamber with heat-pipe-cored pins, standard for ~700 W dies.
#: A solid copper base would lose ~0.045 K/W to spreading alone from a
#: 28.5 mm die into a 70 mm base — more than the entire junction budget.
GPU_SINK_CONDUCTIVITY_W_MK = 1500.0


def gpu_heatsink(family: FpgaFamily = H100_SXM) -> PinFinHeatSink:
    """The GPU-class sink: a vapor-chamber base of tall pins.

    Sized for ~700 W through one die — several times the wetted surface
    of the SKAT sink, a two-phase base to kill the spreading resistance,
    fed at a much higher approach velocity by the GPU pump.
    """
    return PinFinHeatSink(
        base_width_m=0.070,
        base_depth_m=0.070,
        base_thickness_m=0.005,
        pin_diameter_m=0.003,
        pin_height_m=0.014,
        pin_pitch_m=0.004,
        conductivity_w_mk=GPU_SINK_CONDUCTIVITY_W_MK,
        turbulence_factor=SOLDER_PIN_TURBULENCE_FACTOR,
        source_area_m2=family.die_area_m2,
    )


def gpu_hx() -> PlateHeatExchanger:
    """The GPU module's oil/water plate exchanger (enlarged vs SKAT)."""
    return PlateHeatExchanger(
        n_plates=44,
        plate_width_m=0.12,
        plate_height_m=0.35,
        channel_gap_m=3.0e-3,
    )


def gpu_pump() -> Pump:
    """The GPU module's external circulation pump.

    Rated well above the SKAT unit: the tall-pin sinks only reach their
    design resistance at high oil approach velocity.
    """
    return Pump(
        curve=PumpCurve(shutoff_pressure_pa=140.0e3, max_flow_m3_s=9.0e-3),
        efficiency=0.55,
        immersed=False,
    )


def gpu_module(
    utilization: float = 0.9,
    n_boards: int = 2,
    family: FpgaFamily = H100_SXM,
) -> ComputationalModule:
    """An immersion CM of GPU-class accelerators.

    Two boards of eight SXM-class packages (no separate controller — the
    48 mm packages fill the row), one 14 kW PSU per board, liquid-metal
    interfaces, and the GPU-sized sink/pump/exchanger set.
    """
    ccb = Ccb(
        Fpga(family, utilization=utilization),
        separate_controller=False,
        misc_power_w=120.0,  # NVLink-switch-class board overhead
    )
    ccb.require_fit()
    section = ImmersionSection(
        ccb=ccb,
        n_boards=n_boards,
        sink=gpu_heatsink(family),
        tim=LIQUID_METAL_INTERFACE,
        psu=ImmersionPsu(rated_output_w=14000.0, boards_served=1),
        n_psus=n_boards,
        board_channel_area_m2=0.070 * 0.015,
    )
    return ComputationalModule(
        name=f"GPU CM ({family.part})",
        section=section,
        pump=gpu_pump(),
        hx=gpu_hx(),
        loop_pipe=Pipe(length_m=2.0, diameter_m=0.05, minor_loss_k=5.0),
    )


def gpu_rack(n_modules: int = 4) -> Rack:
    """A rack of GPU modules on the chilled-water loop.

    The chiller skid is sized for the GPU heat density (~11 kW per
    module plus margin).
    """
    return Rack(
        module_factory=gpu_module,
        n_modules=n_modules,
        chiller=Chiller(
            setpoint_c=20.0, capacity_w=200.0e3, water_capacity_rate_w_k=40.0e3
        ),
    )


__all__ = [
    "GPU_WATER_FLOW_M3_S",
    "gpu_heatsink",
    "gpu_hx",
    "gpu_module",
    "gpu_pump",
    "gpu_rack",
]
