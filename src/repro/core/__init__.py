"""The paper's contribution: immersion-cooled reconfigurable computer systems.

This package assembles the substrates (fluids, thermal, hydraulics, heat
exchange, devices, reliability, control, performance) into the machines and
engineering solutions the paper presents:

- :mod:`repro.core.heatsink` — the SKAT solder-pin heatsink and baselines.
- :mod:`repro.core.tim` — thermal interfaces, including oil washout.
- :mod:`repro.core.aircooling` — the legacy Rigel-2/Taygeta air-cooled CMs.
- :mod:`repro.core.coldplate` — the rejected closed-loop alternative.
- :mod:`repro.core.immersion` — the open-loop immersion bath.
- :mod:`repro.core.module` — the 3U computational module (bath + pump + HX).
- :mod:`repro.core.rack` — the 47U rack with chiller.
- :mod:`repro.core.balancing` — Fig. 5 reverse-return hydraulic balancing.
- :mod:`repro.core.designrules` — the selection criteria as checks.
- :mod:`repro.core.skat` — factories for Rigel-2, Taygeta, SKAT, SKAT+.
- :mod:`repro.core.simulation` — coupled transient runs with failures.
"""

from repro.core.aircooling import AirCooledModule, AirCoolingReport
from repro.core.bathlevel import BathGeometry, BathInventory
from repro.core.commissioning import (
    CommissioningReport,
    Envelope,
    run_heat_experiment,
)
from repro.core.balancing import (
    BalanceReport,
    ManifoldLayout,
    RackManifoldSystem,
    redistribution_evenness,
)
from repro.core.boardnetwork import NetworkSolution, solve_module_network
from repro.core.coldplate import ColdPlateModule, ColdPlateReport, PlateStyle
from repro.core.heatmap import render_heatmap, render_profile
from repro.core.heatsink import BarePlate, PinFinHeatSink, StraightFinAirSink
from repro.core.immersion import ImmersionReport, ImmersionSection
from repro.core.module import ComputationalModule, ModuleReport
from repro.core.rack import Rack, RackReport
from repro.core.serviceability import (
    Architecture,
    annual_service_score,
    service_comparison,
)
from repro.core.racksim import RackSimResult, RackSimulator
from repro.core.simulation import ModuleSimulator, SimulationResult
from repro.core.skat import (
    rigel2,
    skat,
    skat_2,
    skat_plus,
    taygeta,
    ultrascale_in_air,
)
from repro.core.tim import (
    CONVENTIONAL_PASTE,
    DRY_CONTACT,
    SRC_OIL_STABLE_INTERFACE,
    ThermalInterface,
)

__all__ = [
    "AirCooledModule",
    "Architecture",
    "AirCoolingReport",
    "BalanceReport",
    "BarePlate",
    "BathGeometry",
    "BathInventory",
    "CONVENTIONAL_PASTE",
    "ColdPlateModule",
    "ColdPlateReport",
    "CommissioningReport",
    "ComputationalModule",
    "DRY_CONTACT",
    "Envelope",
    "ImmersionReport",
    "ImmersionSection",
    "ManifoldLayout",
    "ModuleReport",
    "ModuleSimulator",
    "NetworkSolution",
    "PinFinHeatSink",
    "PlateStyle",
    "Rack",
    "RackManifoldSystem",
    "RackReport",
    "RackSimResult",
    "RackSimulator",
    "SRC_OIL_STABLE_INTERFACE",
    "SimulationResult",
    "StraightFinAirSink",
    "ThermalInterface",
    "annual_service_score",
    "redistribution_evenness",
    "render_heatmap",
    "render_profile",
    "rigel2",
    "service_comparison",
    "run_heat_experiment",
    "skat",
    "skat_2",
    "solve_module_network",
    "skat_plus",
    "taygeta",
    "ultrascale_in_air",
]
