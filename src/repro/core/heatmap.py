"""ASCII heat maps of the computational section.

Renders the full-network temperature field from
:mod:`repro.core.boardnetwork` as a terminal heat map — boards as rows,
chip positions as columns — the quick-look a thermal engineer wants from a
heat experiment.
"""

from __future__ import annotations

from typing import List

from repro.core.boardnetwork import NetworkSolution
from repro.core.immersion import ImmersionSection

#: Shade ramp from coolest to hottest.
RAMP = " .:-=+*#%@"


def _shade(value: float, lo: float, hi: float) -> str:
    if hi <= lo:
        return RAMP[0]
    fraction = (value - lo) / (hi - lo)
    index = int(min(max(fraction, 0.0), 1.0) * (len(RAMP) - 1))
    return RAMP[index]


def junction_grid(section: ImmersionSection, solution: NetworkSolution) -> List[List[float]]:
    """Junction temperatures as ``[board][position]``."""
    return [
        [
            solution.temperatures_c[f"b{board}_j{position}"]
            for position in range(section.ccb.n_fpgas)
        ]
        for board in range(section.n_boards)
    ]


def render_heatmap(
    section: ImmersionSection, solution: NetworkSolution, title: str = "junction map"
) -> str:
    """The section's junction field as an ASCII map with a scale bar.

    Columns run along the oil path (coolest chips left), rows are boards.
    """
    grid = junction_grid(section, solution)
    flat = [t for row in grid for t in row]
    lo, hi = min(flat), max(flat)
    lines = [f"{title}  [{lo:.1f} C '{RAMP[0]}' .. {hi:.1f} C '{RAMP[-1]}']"]
    header = "        " + "".join(f"{p:>4d}" for p in range(section.ccb.n_fpgas))
    lines.append(header + "   <- position along oil path")
    for board, row in enumerate(grid):
        cells = "".join(f"   {_shade(t, lo, hi)}" for t in row)
        lines.append(f"board{board:>2d} {cells}   max {max(row):5.1f} C")
    return "\n".join(lines)


def render_profile(section: ImmersionSection, solution: NetworkSolution) -> str:
    """The worst board's junction profile as a bar chart."""
    positions = sorted(solution.junction_by_position)
    temps = [solution.junction_by_position[p] for p in positions]
    lo = min(temps) - 1.0
    lines = ["junction profile along the oil path (worst board):"]
    for position, temp in zip(positions, temps):
        bar = "#" * int((temp - lo) * 8)
        lines.append(f"  pos {position}: {temp:5.1f} C |{bar}")
    return "\n".join(lines)


__all__ = ["RAMP", "junction_grid", "render_heatmap", "render_profile"]
