"""Thermal interface materials, including oil-washout degradation.

Section 2 lists a key failure mode of existing immersion products: "the
thermal paste between FPGA chips and heat-sinks is washed out during
long-term maintenance". SRC's answer is "an effective thermal interface
[whose] coefficient of heat conductivity can remain permanently high".
We model both: a conventional silicone paste whose resistance drifts up
exponentially toward a dry-joint asymptote as the oil dissolves it, and the
oil-stable SRC interface with negligible drift.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.thermal.resistances import interface


@dataclass(frozen=True)
class ThermalInterface:
    """A thermal interface layer between the package lid and the sink base.

    Parameters
    ----------
    name:
        Material label.
    resistivity_m2k_w:
        Fresh thermal impedance (contact + bond line), m^2 K/W.
    washout_timescale_h:
        E-folding time of oil washout; ``math.inf`` for oil-stable
        interfaces.
    washed_out_multiplier:
        Resistance multiplier the joint tends to once fully washed out
        (partial dry contact).
    """

    name: str
    resistivity_m2k_w: float
    washout_timescale_h: float = math.inf
    washed_out_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.resistivity_m2k_w <= 0:
            raise ValueError("interface resistivity must be positive")
        if self.washout_timescale_h <= 0:
            raise ValueError("washout timescale must be positive")
        if self.washed_out_multiplier < 1.0:
            raise ValueError("washout cannot reduce resistance")

    def degradation_multiplier(self, hours_in_oil: float) -> float:
        """Resistance multiplier after a service time in the bath.

        Rises from 1 toward ``washed_out_multiplier`` with the washout
        e-folding time; exactly 1 forever for oil-stable interfaces.
        """
        if hours_in_oil < 0:
            raise ValueError("service time must be non-negative")
        if math.isinf(self.washout_timescale_h):
            return 1.0
        span = self.washed_out_multiplier - 1.0
        return 1.0 + span * (1.0 - math.exp(-hours_in_oil / self.washout_timescale_h))

    def resistance_k_w(self, contact_area_m2: float, hours_in_oil: float = 0.0) -> float:
        """Interface resistance over a contact area after a service time."""
        fresh = interface(self.resistivity_m2k_w, contact_area_m2)
        return fresh * self.degradation_multiplier(hours_in_oil)


#: Conventional silicone thermal paste: good when fresh, but the bath
#: dissolves it — resistance triples over ~4000 h of immersion.
CONVENTIONAL_PASTE = ThermalInterface(
    name="conventional silicone paste",
    resistivity_m2k_w=2.0e-5,
    washout_timescale_h=4000.0,
    washed_out_multiplier=3.0,
)

#: The SRC oil-stable interface: slightly higher fresh impedance than the
#: best paste, but "its coefficient of heat conductivity can remain
#: permanently high" — no washout term.
SRC_OIL_STABLE_INTERFACE = ThermalInterface(
    name="SRC oil-stable interface",
    resistivity_m2k_w=5.0e-5,
    washout_timescale_h=math.inf,
    washed_out_multiplier=1.0,
)

#: Dry metal-to-metal contact — the end state of a fully washed-out joint
#: and the worst-case bound for the failure analyses.
DRY_CONTACT = ThermalInterface(
    name="dry contact",
    resistivity_m2k_w=2.0e-4,
    washout_timescale_h=math.inf,
    washed_out_multiplier=1.0,
)

#: Gallium-alloy liquid-metal interface for the GPU-class dies of the
#: AI-factory workload catalog (:mod:`repro.devices.gpu`). An order of
#: magnitude below the best paste, and metallic, so the bath cannot wash
#: it out — the only interface class that keeps a ~700 W die inside the
#: OCP junction band at hot-water coolant setpoints.
LIQUID_METAL_INTERFACE = ThermalInterface(
    name="gallium liquid-metal interface",
    resistivity_m2k_w=6.0e-6,
    washout_timescale_h=math.inf,
    washed_out_multiplier=1.0,
)


__all__ = [
    "CONVENTIONAL_PASTE",
    "DRY_CONTACT",
    "LIQUID_METAL_INTERFACE",
    "SRC_OIL_STABLE_INTERFACE",
    "ThermalInterface",
]
