"""Oil inventory, thermal expansion and the level-sensor physics.

The control subsystem the paper requires includes "sensors of level ...
of the heat-transfer agent" (Section 2). The level in a hermetic bath is
not constant: mineral oil expands roughly 7 x 10^-4 per kelvin, so a cold
fill rises measurably between cold start and operating temperature — and
a *drop* below the thermal-expansion envelope is the leak signature the
level alarm must catch without false-tripping on normal warm-up.

This module models the bath inventory and produces the alarm thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fluids.library import MINERAL_OIL_MD45
from repro.fluids.properties import Fluid


@dataclass(frozen=True)
class BathGeometry:
    """The computational section's tank.

    Parameters
    ----------
    length_m, width_m:
        Free-surface footprint of the bath.
    depth_m:
        Internal depth.
    displaced_volume_m3:
        Volume taken by boards, PSUs and structure below the surface.
    """

    length_m: float = 0.70
    width_m: float = 0.44
    depth_m: float = 0.11
    displaced_volume_m3: float = 0.012

    def __post_init__(self) -> None:
        if min(self.length_m, self.width_m, self.depth_m) <= 0:
            raise ValueError("bath dimensions must be positive")
        if self.displaced_volume_m3 < 0:
            raise ValueError("displaced volume must be non-negative")
        if self.displaced_volume_m3 >= self.gross_volume_m3:
            raise ValueError("internals cannot displace the whole bath")

    @property
    def surface_area_m2(self) -> float:
        """Free-surface area, m^2."""
        return self.length_m * self.width_m

    @property
    def gross_volume_m3(self) -> float:
        """Empty-tank volume, m^3."""
        return self.surface_area_m2 * self.depth_m

    @property
    def oil_capacity_m3(self) -> float:
        """Oil volume at a completely full tank, m^3."""
        return self.gross_volume_m3 - self.displaced_volume_m3


@dataclass(frozen=True)
class BathInventory:
    """A filled bath: fixed oil *mass*, temperature-dependent level.

    Parameters
    ----------
    geometry:
        The tank.
    fill_temperature_c:
        Temperature at which the bath was filled.
    fill_fraction:
        Level fraction at fill (the paper's machines fill to ~95 % cold so
        warm expansion does not overflow).
    oil:
        The heat-transfer agent.
    """

    geometry: BathGeometry = BathGeometry()
    fill_temperature_c: float = 20.0
    fill_fraction: float = 0.95
    oil: Fluid = MINERAL_OIL_MD45

    def __post_init__(self) -> None:
        if not 0.1 <= self.fill_fraction <= 1.0:
            raise ValueError("fill fraction must be within [0.1, 1.0]")

    @property
    def oil_mass_kg(self) -> float:
        """Conserved oil mass from the fill conditions, kg."""
        volume = self.geometry.oil_capacity_m3 * self.fill_fraction
        return volume * self.oil.density(self.fill_temperature_c)

    def oil_volume_m3(self, temperature_c: float, leaked_kg: float = 0.0) -> float:
        """Oil volume at a temperature after an optional mass loss."""
        if leaked_kg < 0:
            raise ValueError("leaked mass must be non-negative")
        mass = self.oil_mass_kg - leaked_kg
        if mass <= 0:
            return 0.0
        return mass / self.oil.density(temperature_c)

    def level_fraction(self, temperature_c: float, leaked_kg: float = 0.0) -> float:
        """Level-sensor reading (fraction of full) at a bath temperature."""
        volume = self.oil_volume_m3(temperature_c, leaked_kg)
        return min(volume / self.geometry.oil_capacity_m3, 1.0)

    def thermal_mass_j_k(self, temperature_c: float) -> float:
        """Bath heat capacitance ``m cp``, J/K — feeds the transient
        simulator's oil state."""
        return self.oil_mass_kg * self.oil.specific_heat(temperature_c)

    def expansion_headroom_fraction(self, max_temperature_c: float) -> float:
        """Remaining level headroom at the hottest allowed bath state.

        Negative means the warm bath would overflow the hermetic tank —
        a fill-procedure error the commissioning check flags.
        """
        return 1.0 - self.level_fraction(max_temperature_c)

    def leak_alarm_threshold(
        self, min_operating_c: float = 20.0, margin_fraction: float = 0.01
    ) -> float:
        """Level threshold that alarms on leaks but not on cold oil.

        The lowest legitimate level occurs at the coldest operating
        temperature; anything below it minus a sensor margin means mass
        left the tank.
        """
        if margin_fraction < 0:
            raise ValueError("margin must be non-negative")
        return self.level_fraction(min_operating_c) - margin_fraction

    def detectable_leak_kg(
        self, temperature_c: float, min_operating_c: float = 20.0, margin_fraction: float = 0.01
    ) -> float:
        """Smallest leaked mass the level alarm catches at a bath state."""
        threshold = self.leak_alarm_threshold(min_operating_c, margin_fraction)
        # Find the mass loss that brings the level to the threshold.
        target_volume = threshold * self.geometry.oil_capacity_m3
        full_volume = self.oil_volume_m3(temperature_c)
        missing_volume = max(full_volume - target_volume, 0.0)
        return missing_volume * self.oil.density(temperature_c)


__all__ = ["BathGeometry", "BathInventory"]
