"""Hydraulic balancing of the rack heat-exchange system (Fig. 5).

The paper's engineering solution: arrange the supply and return manifolds
so that "the closed trajectory of the heat-transfer agent flow is similar
for all loops, and the distance between each loop and the pump is the same:
pump - inlet of the supply manifold - supply manifold - circulation loop -
return manifold - outlet of the return manifold - return pipe - chiller -
pump". This is the reverse-return (Tichelmann) layout: the return manifold
exits at the *far* end, so every loop's path crosses the same total
manifold length. The conventional direct-return layout (return exits at the
near end) short-circuits the first loop and starves the last.

This module builds both layouts as hydraulic networks, solves the per-loop
flows, and runs the paper's failure experiment: shut one loop and check the
remaining flows change *evenly*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

import numpy as np

from repro.fluids.library import WATER
from repro.fluids.properties import Fluid
from repro.hydraulics.elements import (
    HeatExchangerPassage,
    Pipe,
    Pump,
    PumpCurve,
    Valve,
)
from repro.hydraulics.cache import SolverCounters
from repro.hydraulics.manifold import build_return_manifold_network
from repro.hydraulics.network import HydraulicNetwork, HydraulicsError
from repro.hydraulics.solver import (
    NetworkSolver,
    SolveResult,
    junction_residuals,
    solve_network,
)


class ManifoldLayout(Enum):
    """Where the return manifold exits relative to the supply inlet."""

    DIRECT_RETURN = "direct"  # same end: unequal path lengths
    REVERSE_RETURN = "reverse"  # far end: the paper's Fig. 5 solution


@dataclass(frozen=True)
class BalanceReport:
    """Per-loop flow distribution and its evenness metrics."""

    layout: ManifoldLayout
    loop_flows_m3_s: List[float]
    failed_loops: List[int]

    @property
    def active_flows(self) -> List[float]:
        """Flows of the loops still in service."""
        return [q for i, q in enumerate(self.loop_flows_m3_s) if i not in self.failed_loops]

    @property
    def total_flow_m3_s(self) -> float:
        """Pump flow, m^3/s."""
        return sum(self.loop_flows_m3_s)

    @property
    def imbalance_ratio(self) -> float:
        """Max/min flow among active loops; 1.0 is perfect balance."""
        flows = self.active_flows
        low = min(flows)
        if low <= 0:
            return math.inf
        return max(flows) / low

    @property
    def coefficient_of_variation(self) -> float:
        """Std/mean of active-loop flows; 0 is perfect balance."""
        flows = np.asarray(self.active_flows)
        mean = float(np.mean(flows))
        if mean == 0:
            return math.inf
        return float(np.std(flows)) / mean


@dataclass
class RackManifoldSystem:
    """The Fig. 5 rack loop: pump, chiller piping, manifolds, CM loops.

    Parameters
    ----------
    n_loops:
        Circulation loops (one per CM; Fig. 5 draws six).
    layout:
        Direct or reverse return.
    pump:
        The primary-loop pump (Fig. 5 item 1).
    segment_pipe_length_m, manifold_diameter_m:
        Geometry of each manifold segment between adjacent taps (one 3U CM
        of vertical run per segment).
    loop_passage:
        Hydraulic resistance of one circulation loop (the CM heat
        exchanger, Fig. 5 item 15, plus its hoses).
    riser_pipe_length_m, riser_diameter_m:
        The return pipe (Fig. 5 item 12) plus chiller circuit.
    balancing_valves:
        Optional per-loop trim-valve openings ("each circulation loop may
        be complemented with a balancing valve for finer balance-tuning");
        None leaves the loops valveless but still closable for servicing.
    fluid:
        Primary heat-transfer agent (water or antifreeze).
    """

    n_loops: int = 6
    layout: ManifoldLayout = ManifoldLayout.REVERSE_RETURN
    pump: Pump = field(
        default_factory=lambda: Pump(
            curve=PumpCurve(shutoff_pressure_pa=120.0e3, max_flow_m3_s=2.0e-2),
            efficiency=0.6,
        )
    )
    segment_pipe_length_m: float = 0.15
    manifold_diameter_m: float = 0.04
    loop_passage: HeatExchangerPassage = field(
        default_factory=lambda: HeatExchangerPassage(
            r_linear_pa_per_m3_s=2.0e6, r_quadratic_pa_per_m3_s2=2.0e10
        )
    )
    riser_pipe_length_m: float = 8.0
    riser_diameter_m: float = 0.05
    balancing_valves: Optional[List[float]] = None
    fluid: Fluid = WATER
    temperature_c: float = 20.0
    solver: NetworkSolver = field(default_factory=NetworkSolver, repr=False)
    _network: HydraulicNetwork = field(init=False, repr=False)
    _valve_names: List[str] = field(init=False, repr=False)
    _last_result: Optional[SolveResult] = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        if self.n_loops < 2:
            raise ValueError("a manifold system needs at least 2 loops")
        if self.balancing_valves is not None and len(self.balancing_valves) != self.n_loops:
            raise ValueError("one balancing-valve opening per loop required")
        self._build()

    def _segment(self) -> Pipe:
        return Pipe(
            length_m=self.segment_pipe_length_m,
            diameter_m=self.manifold_diameter_m,
            minor_loss_k=0.3,
        )

    def _build(self) -> None:
        n = self.n_loops
        openings = (
            [1.0] * n if self.balancing_valves is None else self.balancing_valves
        )
        riser = Pipe(
            length_m=self.riser_pipe_length_m,
            diameter_m=self.riser_diameter_m,
            minor_loss_k=12.0,  # chiller circuit and bends
        )
        plan = build_return_manifold_network(
            n_loops=n,
            reverse_return=self.layout is ManifoldLayout.REVERSE_RETURN,
            pump=self.pump,
            segment_factory=self._segment,
            valves=[
                Valve(k_open=2.0, diameter_m=0.025, opening=opening)
                for opening in openings
            ],
            passages=[self.loop_passage] * n,
            riser=riser,
        )
        self._network = plan.network
        self._valve_names = plan.valve_names

    @property
    def network(self) -> HydraulicNetwork:
        """The underlying hydraulic network (for inspection)."""
        return self._network

    def fail_loop(self, index: int) -> None:
        """Valve a loop off for servicing (the paper's failure scenario)."""
        self._check_index(index)
        self._network.replace_element(
            self._valve_names[index], Valve(k_open=2.0, diameter_m=0.025, opening=0.0)
        )

    def restore_loop(self, index: int, opening: float = 1.0) -> None:
        """Return a serviced loop to operation."""
        self._check_index(index)
        self._network.replace_element(
            self._valve_names[index], Valve(k_open=2.0, diameter_m=0.025, opening=opening)
        )

    @property
    def solver_counters(self) -> SolverCounters:
        """The owned solver's counters (cache hits, fallbacks, ...)."""
        return self.solver.counters

    def reset_solver(self) -> None:
        """Drop cached solutions, warm-start state and counters.

        Call between independent experiments on the same system object
        when run-to-run isolation matters more than speed.
        """
        self.solver.reset()

    def solve(self, tolerance_m3_s: float = 1.0e-9) -> BalanceReport:
        """Solve the network and report the per-loop flow distribution.

        Re-solves are warm-started from the previous pressure field, and
        previously seen valve/pump states are replayed from the solver's
        solution cache — both exact to solver tolerance, see
        :class:`repro.hydraulics.solver.NetworkSolver`. ``tolerance_m3_s``
        is the acceptable worst-junction imbalance; the rack simulator's
        retry-with-backoff relaxes it when a post-failure manifold state
        refuses to converge at the default.
        """
        result: SolveResult = solve_network(
            self._network,
            self.fluid,
            self.temperature_c,
            tolerance_m3_s=tolerance_m3_s,
            solver=self.solver,
        )
        self._last_result = result
        failed = [
            i
            for i, name in enumerate(self._valve_names)
            if self._network.branch(name).element.is_closed
        ]
        flows = [
            0.0 if i in failed else result.flow(f"loop_{i}")
            for i in range(self.n_loops)
        ]
        return BalanceReport(
            layout=self.layout, loop_flows_m3_s=flows, failed_loops=failed
        )

    def solve_batch(
        self,
        opening_fraction=None,
        pump_speed_fraction=None,
        temperature_c=None,
        tolerance_m3_s: float = 1.0e-9,
    ):
        """Batched view of :meth:`solve` over N valve/pump/temperature rows.

        Delegates to :func:`repro.batch.manifold.solve_manifold_batch`
        with this system as the topology template (the system object is
        not mutated); ``batch.report(i)`` rebuilds the exact serial
        :class:`BalanceReport`. ``opening_fraction=None`` reads the
        current valve state — a plain :meth:`solve` as an N=1 batch.
        The scalar path above stays the differential oracle.
        """
        from repro.batch.manifold import solve_manifold_batch

        return solve_manifold_batch(
            self,
            opening_fraction,
            pump_speed_fraction=pump_speed_fraction,
            temperature_c=temperature_c,
            tolerance_m3_s=tolerance_m3_s,
        )

    def junction_residuals_m3_s(self) -> Dict[str, float]:
        """Per-junction continuity residuals of the last :meth:`solve`.

        The flow-continuity invariant the verification layer enforces:
        every manifold junction's external injection balances the net
        branch flow leaving it, within the solve tolerance. Raises when
        no solve has run yet.
        """
        if self._last_result is None:
            raise HydraulicsError("no solution yet — call solve() first")
        return junction_residuals(self._network, self._last_result)

    def failure_redistribution(self, index: int) -> Dict[str, BalanceReport]:
        """The paper's experiment: flows before and after one loop fails.

        Returns ``{"before": ..., "after": ...}``; the loop is restored
        afterwards so the system object can be reused.
        """
        before = self.solve()
        self.fail_loop(index)
        after = self.solve()
        self.restore_loop(index)
        return {"before": before, "after": after}

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n_loops:
            raise ValueError(f"loop index {index} outside [0, {self.n_loops})")


def redistribution_evenness(before: BalanceReport, after: BalanceReport) -> float:
    """How evenly a failure's flow was redistributed: the coefficient of
    variation of the per-surviving-loop flow *increase*. 0 means perfectly
    even — the paper's claim for the reverse-return layout."""
    increases = [
        qa - qb
        for i, (qb, qa) in enumerate(zip(before.loop_flows_m3_s, after.loop_flows_m3_s))
        if i not in after.failed_loops
    ]
    arr = np.asarray(increases)
    mean = float(np.mean(arr))
    if mean == 0:
        return math.inf
    return float(np.std(arr)) / abs(mean)


__all__ = [
    "BalanceReport",
    "ManifoldLayout",
    "RackManifoldSystem",
    "redistribution_evenness",
]
