"""The open-loop immersion bath: boards and PSUs in circulating oil.

The computational section of the new-generation CM: "a hermetic container
with dielectric cooling liquid, and electronic components ... completely
immersed into an electrically neutral liquid heat-transfer agent"
(Section 3). The model resolves, for a given oil supply temperature and
circulation flow, every FPGA's junction temperature (including the oil
preheat along each board's chip row), the bath outlet temperature, and the
hydraulic resistance the circulation pump must overcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.heatsink import PinFinHeatSink
from repro.core.tim import ThermalInterface, SRC_OIL_STABLE_INTERFACE
from repro.devices.board import Ccb
from repro.devices.psu import ImmersionPsu
from repro.fluids.library import MINERAL_OIL_MD45
from repro.fluids.properties import Fluid


@dataclass(frozen=True)
class ImmersedChipReport:
    """Thermal state of one immersed FPGA position along the oil flow."""

    position: int
    local_oil_c: float
    junction_c: float
    power_w: float


@dataclass(frozen=True)
class ImmersionReport:
    """Steady state of the computational section at given oil conditions."""

    oil_supply_c: float
    oil_return_c: float
    oil_flow_m3_s: float
    chips_per_board: List[ImmersedChipReport]
    max_junction_c: float
    electronics_heat_w: float
    psu_heat_w: float
    total_heat_w: float
    board_pressure_drop_pa: float
    chip_resistance_k_w: float

    @property
    def thermal_gradient_k(self) -> float:
        """Junction spread along a board's chip row."""
        return (
            self.chips_per_board[-1].junction_c - self.chips_per_board[0].junction_c
        )

    @property
    def oil_rise_k(self) -> float:
        """Bulk oil temperature rise across the computational section."""
        return self.oil_return_c - self.oil_supply_c


@dataclass(frozen=True)
class ImmersionSection:
    """The computational section of an immersion-cooled CM.

    Parameters
    ----------
    ccb:
        The board design (all boards identical).
    n_boards:
        Boards in the bath ("one computational module can contain 12 to 16
        computational circuit boards").
    sink:
        Per-chip pin-fin heatsink.
    tim:
        Package-to-sink interface.
    psu:
        The immersion PSU type.
    n_psus:
        PSU count (SKAT carries three 4 kW units).
    flow_fraction_over_boards:
        Share of the circulated oil actually ducted across the board
        heatsinks (the rest bypasses through the open bath).
    board_channel_area_m2:
        Oil flow cross-section over one board's sink row.
    tim_service_hours:
        Bath service time for the interface washout model.
    """

    ccb: Ccb
    n_boards: int = 12
    sink: PinFinHeatSink = field(default_factory=PinFinHeatSink)
    tim: ThermalInterface = SRC_OIL_STABLE_INTERFACE
    psu: ImmersionPsu = field(default_factory=ImmersionPsu)
    n_psus: int = 3
    flow_fraction_over_boards: float = 0.85
    board_channel_area_m2: float = 0.060 * 0.015
    tim_service_hours: float = 0.0
    oil: Fluid = MINERAL_OIL_MD45

    def __post_init__(self) -> None:
        if not 1 <= self.n_boards <= 20:
            raise ValueError("bath holds between 1 and 20 boards")
        if self.n_psus < 1:
            raise ValueError("need at least one PSU")
        if not 0.0 < self.flow_fraction_over_boards <= 1.0:
            raise ValueError("flow fraction must be in (0, 1]")
        if self.board_channel_area_m2 <= 0:
            raise ValueError("channel area must be positive")
        if self.tim_service_hours < 0:
            raise ValueError("service time must be non-negative")

    def board_approach_velocity(self, oil_flow_m3_s: float) -> float:
        """Oil approach velocity at each board's sink row."""
        if oil_flow_m3_s < 0:
            raise ValueError("oil flow must be non-negative")
        per_board = oil_flow_m3_s * self.flow_fraction_over_boards / self.n_boards
        return per_board / self.board_channel_area_m2

    def chip_resistance_k_w(self, oil_flow_m3_s: float, oil_temperature_c: float) -> float:
        """Junction-to-local-oil resistance: package + interface + sink."""
        family = self.ccb.fpga.family
        velocity = self.board_approach_velocity(oil_flow_m3_s)
        perf = self.sink.performance(velocity, self.oil, oil_temperature_c)
        r_tim = self.tim.resistance_k_w(family.die_area_m2, self.tim_service_hours)
        return family.theta_jc_k_w + r_tim + perf.total_resistance_k_w

    def solve(self, oil_supply_c: float, oil_flow_m3_s: float) -> ImmersionReport:
        """Steady state of the bath at an oil supply temperature and flow.

        Each board sees the supply oil (boards are hydraulically parallel);
        along a board's row of chips the oil warms chip by chip, so the
        last position runs hottest — the gradient the SKAT circulation
        design must keep small.
        """
        if oil_flow_m3_s <= 0:
            raise ValueError("oil flow must be positive")
        fpga = self.ccb.fpga
        per_board_flow = (
            oil_flow_m3_s * self.flow_fraction_over_boards / self.n_boards
        )
        oil_capacity = self.oil.heat_capacity_rate(per_board_flow, oil_supply_c)

        chips: List[ImmersedChipReport] = []
        upstream_heat = 0.0
        resistance = self.chip_resistance_k_w(oil_flow_m3_s, oil_supply_c)
        for position in range(self.ccb.n_fpgas):
            local_oil = oil_supply_c + upstream_heat / oil_capacity
            point = fpga.operate(resistance, local_oil)
            chips.append(
                ImmersedChipReport(
                    position=position,
                    local_oil_c=local_oil,
                    junction_c=point.junction_c,
                    power_w=point.power_w,
                )
            )
            upstream_heat += point.power_w

        board_heat = upstream_heat + self.ccb.misc_power_w
        if self.ccb.separate_controller:
            board_heat += chips[0].power_w / 3.0
        electronics = board_heat * self.n_boards
        psu_output_each = electronics / self.n_psus
        psu_heat = sum(
            self.psu.dissipation_w(min(psu_output_each, self.psu.rated_output_w))
            for _ in range(self.n_psus)
        )
        total = electronics + psu_heat

        velocity = self.board_approach_velocity(oil_flow_m3_s)
        board_dp = self.sink.performance(velocity, self.oil, oil_supply_c).pressure_drop_pa

        bulk_capacity = self.oil.heat_capacity_rate(oil_flow_m3_s, oil_supply_c)
        return ImmersionReport(
            oil_supply_c=oil_supply_c,
            oil_return_c=oil_supply_c + total / bulk_capacity,
            oil_flow_m3_s=oil_flow_m3_s,
            chips_per_board=chips,
            max_junction_c=max(c.junction_c for c in chips),
            electronics_heat_w=electronics,
            psu_heat_w=psu_heat,
            total_heat_w=total,
            board_pressure_drop_pa=board_dp,
            chip_resistance_k_w=resistance,
        )


__all__ = ["ImmersedChipReport", "ImmersionReport", "ImmersionSection"]
