"""Serviceability: what maintenance costs on each architecture.

A recurring thread of the paper: closed-loop systems need "special liquid
connectors providing pressure-tight connections and simple mounting/
demounting", the IMMERS systems need "complex maintenance stoppages ...
to remove separate components and devices", while the SKAT design aims at
"maintenance of the reconfigurable computational module [by] its
connection to the source of the secondary cooling liquid (by means of
valves) [and] to a power supply block" — i.e. a CM swaps out as a unit
while the rack keeps running (the Fig. 5 redistribution experiment).

This module models the standard service operations per architecture and
produces the downtime ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List


class Architecture(Enum):
    """The three cooling architectures under comparison."""

    AIR = "air"
    COLD_PLATE = "cold_plate"
    IMMERSION = "immersion"


@dataclass(frozen=True)
class ServiceOperation:
    """One maintenance operation on one architecture.

    Parameters
    ----------
    name:
        Operation label.
    duration_h:
        Hands-on time, hours.
    module_downtime_h:
        Downtime of the serviced CM (>= hands-on time when the machine
        must drain/dry).
    rack_downtime_h:
        Downtime of the *other* CMs in the rack (0 when the Fig. 5 layout
        isolates the serviced loop).
    steps:
        Procedure outline for the runbook.
    """

    name: str
    duration_h: float
    module_downtime_h: float
    rack_downtime_h: float
    steps: tuple

    def __post_init__(self) -> None:
        if self.duration_h < 0 or self.module_downtime_h < 0 or self.rack_downtime_h < 0:
            raise ValueError("durations must be non-negative")
        if self.module_downtime_h < self.duration_h:
            raise ValueError("module downtime cannot be below hands-on time")


def _op(name, duration, module_dt, rack_dt, *steps):
    return ServiceOperation(name, duration, module_dt, rack_dt, tuple(steps))


#: The service catalog: the same three operations on each architecture.
SERVICE_CATALOG: Dict[Architecture, List[ServiceOperation]] = {
    Architecture.AIR: [
        _op(
            "replace one board",
            0.5,
            0.5,
            0.0,
            "power down CM",
            "slide board out of card cage",
            "slide replacement in, power up",
        ),
        _op(
            "replace cooling mover (fan tray)",
            0.3,
            0.3,
            0.0,
            "hot-swap fan tray",
        ),
        _op(
            "annual cooling service (filters, fans)",
            1.0,
            1.0,
            0.0,
            "swap filters",
            "check fan bearings",
        ),
    ],
    Architecture.COLD_PLATE: [
        _op(
            "replace one board",
            4.0,
            10.0,
            0.0,
            "isolate board loop at quick disconnects",
            "drain board plates",
            "swap board and plates",
            "refill, bleed air, leak-test every connection",
            "dry-out verification before power-up",
        ),
        _op(
            "replace cooling mover (loop pump)",
            2.0,
            6.0,
            2.0,
            "stop the shared loop",
            "swap pump cartridge",
            "refill and bleed the loop",
        ),
        _op(
            "annual cooling service (coolant, sensors)",
            6.0,
            12.0,
            0.0,
            "exchange inhibited coolant",
            "verify every leak/humidity sensor",
            "re-torque pressure-tight connections",
        ),
    ],
    Architecture.IMMERSION: [
        _op(
            "replace one board",
            1.0,
            1.5,
            0.0,
            "valve the CM off the rack loop (survivors rebalance, Fig. 5)",
            "open bath cover, lift board out dripping into the tray",
            "insert replacement, close cover, reopen valves",
        ),
        _op(
            "replace cooling mover (oil pump)",
            1.5,
            2.0,
            0.0,
            "valve the CM off",
            "swap pump in the heat-exchange section",
        ),
        _op(
            "annual cooling service (oil filtration, level)",
            2.0,
            2.0,
            0.0,
            "circulate through the filter cart",
            "top up oil to the fill mark",
            "verify level/flow/temperature sensors",
        ),
    ],
}


@dataclass(frozen=True)
class ServiceScore:
    """Annualized service burden for one architecture."""

    architecture: Architecture
    annual_module_downtime_h: float
    annual_rack_downtime_h: float
    annual_hands_on_h: float


def annual_service_score(
    architecture: Architecture,
    board_replacements_per_year: float = 2.0,
    mover_replacements_per_year: float = 0.5,
) -> ServiceScore:
    """Annualize the catalog with typical event rates.

    Rates default to a busy production machine: a couple of board events
    and half a pump/fan event per year, plus the annual service.
    """
    if board_replacements_per_year < 0 or mover_replacements_per_year < 0:
        raise ValueError("event rates must be non-negative")
    catalog = SERVICE_CATALOG[architecture]
    board_op, mover_op, annual_op = catalog
    rates = (board_replacements_per_year, mover_replacements_per_year, 1.0)
    module_dt = sum(op.module_downtime_h * rate for op, rate in zip(catalog, rates))
    rack_dt = sum(op.rack_downtime_h * rate for op, rate in zip(catalog, rates))
    hands_on = sum(op.duration_h * rate for op, rate in zip(catalog, rates))
    return ServiceScore(
        architecture=architecture,
        annual_module_downtime_h=module_dt,
        annual_rack_downtime_h=rack_dt,
        annual_hands_on_h=hands_on,
    )


def service_comparison() -> Dict[Architecture, ServiceScore]:
    """All three architectures at the default event rates."""
    return {arch: annual_service_score(arch) for arch in Architecture}


def render_runbook(architecture: Architecture) -> str:
    """The architecture's service runbook as text."""
    lines = [f"service runbook — {architecture.value}"]
    for op in SERVICE_CATALOG[architecture]:
        lines.append(
            f"  {op.name} ({op.duration_h:.1f} h hands-on, "
            f"{op.module_downtime_h:.1f} h module downtime"
            + (f", {op.rack_downtime_h:.1f} h rack downtime" if op.rack_downtime_h else "")
            + ")"
        )
        for i, step in enumerate(op.steps, 1):
            lines.append(f"    {i}. {step}")
    return "\n".join(lines)


__all__ = [
    "Architecture",
    "SERVICE_CATALOG",
    "ServiceOperation",
    "ServiceScore",
    "annual_service_score",
    "render_runbook",
    "service_comparison",
]
