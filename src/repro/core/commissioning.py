"""Commissioning: the staged heat experiment the paper ran on its prototype.

"For the purpose of testing technical and technological solutions, and
determining the expected technical and economical characteristics and
service performance ... we designed a number of models, experimental and
technological prototypes" (Section 3). The commissioning procedure
formalized here is what produced the paper's measured rows: fill checks,
a staged utilization ramp with the envelope verified at each stage, and a
final report of the measured operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.core.bathlevel import BathInventory
from repro.core.module import ComputationalModule, ModuleReport


@dataclass(frozen=True)
class StageResult:
    """One utilization stage of the heat experiment."""

    utilization: float
    max_fpga_c: float
    bath_mean_c: float
    oil_flow_m3_s: float
    per_chip_power_w: float
    passed: bool
    notes: str = ""


@dataclass(frozen=True)
class CommissioningReport:
    """The full commissioning record."""

    machine_name: str
    fill_check_passed: bool
    fill_notes: str
    stages: List[StageResult]
    final: Optional[ModuleReport]

    @property
    def passed(self) -> bool:
        """Whether the machine is cleared for service."""
        return self.fill_check_passed and all(s.passed for s in self.stages)

    def render(self) -> str:
        """Human-readable commissioning protocol."""
        lines = [
            f"commissioning protocol: {self.machine_name}",
            f"  fill check: {'PASS' if self.fill_check_passed else 'FAIL'} ({self.fill_notes})",
            "  heat experiment stages:",
        ]
        for s in self.stages:
            verdict = "PASS" if s.passed else "FAIL"
            lines.append(
                f"    util {s.utilization:.0%}: maxTj {s.max_fpga_c:5.1f} C, "
                f"bath {s.bath_mean_c:4.1f} C, {s.per_chip_power_w:5.1f} W/chip "
                f"[{verdict}]{' ' + s.notes if s.notes else ''}"
            )
        lines.append(f"  result: {'CLEARED FOR SERVICE' if self.passed else 'NOT CLEARED'}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Envelope:
    """The acceptance envelope the stages are verified against.

    Defaults encode the paper's measured SKAT envelope with a small test
    margin.
    """

    max_fpga_c: float = 60.0
    max_bath_c: float = 32.0
    min_oil_flow_m3_s: float = 1.0e-3

    def check(self, report: ModuleReport) -> List[str]:
        """Violations at a module operating point (empty = pass)."""
        violations = []
        if report.max_fpga_c > self.max_fpga_c:
            violations.append(
                f"maxTj {report.max_fpga_c:.1f} C > {self.max_fpga_c:.1f} C"
            )
        if report.bath_mean_c > self.max_bath_c:
            violations.append(
                f"bath {report.bath_mean_c:.1f} C > {self.max_bath_c:.1f} C"
            )
        if report.oil_flow_m3_s < self.min_oil_flow_m3_s:
            violations.append(
                f"oil flow {report.oil_flow_m3_s * 1000:.2f} L/s below minimum"
            )
        return violations


def fill_check(
    inventory: BathInventory, max_bath_temperature_c: float = 45.0
) -> tuple:
    """Verify the cold fill leaves warm-expansion headroom.

    Returns ``(passed, notes)``. The hermetic container must not overflow
    at the hottest bath state the trip thresholds allow.
    """
    headroom = inventory.expansion_headroom_fraction(max_bath_temperature_c)
    cold_level = inventory.level_fraction(inventory.fill_temperature_c)
    passed = headroom > 0.0 and cold_level >= 0.85
    notes = (
        f"cold level {cold_level:.1%}, headroom at {max_bath_temperature_c:.0f} C: "
        f"{headroom:+.1%}"
    )
    return passed, notes


def run_heat_experiment(
    module: ComputationalModule,
    water_in_c: float,
    water_flow_m3_s: float,
    stages: Optional[List[float]] = None,
    envelope: Envelope = Envelope(),
    inventory: Optional[BathInventory] = None,
) -> CommissioningReport:
    """Run the staged heat experiment on a module.

    The utilization ramp (default 25 % -> 95 %) mirrors commissioning
    practice: each stage must settle inside the envelope before the next
    is applied; the final stage's report becomes the machine's measured
    operating point.
    """
    if stages is None:
        stages = [0.25, 0.5, 0.75, 0.9, 0.95]
    if not stages:
        raise ValueError("need at least one stage")
    if any(not 0.0 < u <= 1.0 for u in stages):
        raise ValueError("stage utilizations must be in (0, 1]")

    inventory = inventory or BathInventory()
    fill_passed, fill_notes = fill_check(inventory)

    results: List[StageResult] = []
    final: Optional[ModuleReport] = None
    for utilization in stages:
        staged_module = _with_utilization(module, utilization)
        report = staged_module.solve_steady(water_in_c, water_flow_m3_s)
        violations = envelope.check(report)
        chips = report.immersion.chips_per_board
        results.append(
            StageResult(
                utilization=utilization,
                max_fpga_c=report.max_fpga_c,
                bath_mean_c=report.bath_mean_c,
                oil_flow_m3_s=report.oil_flow_m3_s,
                per_chip_power_w=sum(c.power_w for c in chips) / len(chips),
                passed=not violations,
                notes="; ".join(violations),
            )
        )
        if violations:
            break  # commissioning stops at the first failed stage
        final = report
    return CommissioningReport(
        machine_name=module.name,
        fill_check_passed=fill_passed,
        fill_notes=fill_notes,
        stages=results,
        final=final,
    )


def _with_utilization(module: ComputationalModule, utilization: float) -> ComputationalModule:
    """A copy of the module with every field FPGA at a new utilization."""
    fpga = replace(module.section.ccb.fpga, utilization=utilization)
    ccb = replace(module.section.ccb, fpga=fpga)
    section = replace(module.section, ccb=ccb)
    return replace(module, section=section)


__all__ = [
    "CommissioningReport",
    "Envelope",
    "StageResult",
    "fill_check",
    "run_heat_experiment",
]
