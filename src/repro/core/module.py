"""The new-generation computational module (CM): bath + heat-exchange section.

Section 3's design: a 3U, 19-inch module whose computational section holds
12-16 immersed CCBs and PSUs, mechanically joined to a heat-exchange
section holding the circulation pump and a plate heat exchanger. The oil
runs a self-contained closed loop: bath -> pump -> plate HX -> bath; the HX
rejects the heat into the rack's chilled-water loop.

:meth:`ComputationalModule.solve_steady` closes the whole energy balance:
pump operating point on the oil circuit, bath chip temperatures (leakage
feedback included), and the oil/water temperatures at the exchanger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from scipy.optimize import brentq

from repro.core.immersion import ImmersionReport, ImmersionSection
from repro.fluids.library import WATER
from repro.fluids.properties import Fluid
from repro.heatexchange.plate import HxOperatingPoint, PlateHeatExchanger
from repro.hydraulics.elements import Pipe, Pump
from repro.hydraulics.solver import operating_point

#: Rack-unit height, mm.
RACK_UNIT_MM = 44.45


@dataclass(frozen=True)
class ModuleReport:
    """Resolved steady state of a computational module."""

    immersion: ImmersionReport
    hx: HxOperatingPoint
    oil_flow_m3_s: float
    oil_cold_c: float
    oil_hot_c: float
    water_in_c: float
    water_flow_m3_s: float
    pump_electrical_w: float
    total_heat_to_water_w: float
    module_electrical_w: float

    @property
    def max_fpga_c(self) -> float:
        """Hottest junction in the module."""
        return self.immersion.max_junction_c

    @property
    def bath_mean_c(self) -> float:
        """Mean bath temperature — what the bath temperature sensor of the
        control subsystem reads (between the cold supply and hot return)."""
        return 0.5 * (self.oil_cold_c + self.oil_hot_c)

    @property
    def oil_below_30c(self) -> bool:
        """The paper's operating criterion: "the temperature of the
        heat-transfer agent does not exceed 30 C" (bath sensor)."""
        return self.bath_mean_c <= 30.0


@dataclass(frozen=True)
class ComputationalModule:
    """An immersion-cooled CM with a self-contained oil loop.

    Parameters
    ----------
    name:
        Machine name ("SKAT", "SKAT+").
    section:
        The computational (bath) section.
    pump:
        Oil circulation pump. ``pump.immersed`` marks the SKAT+ design
        whose electrical losses heat the oil.
    hx:
        The plate heat exchanger joining oil to chilled water.
    loop_pipe:
        Lumped piping of the oil circuit (bath plenums, fittings).
    height_u:
        Module height in rack units (the design criterion is 3U).
    water:
        Secondary-side fluid.
    """

    name: str
    section: ImmersionSection
    pump: Pump
    hx: PlateHeatExchanger
    loop_pipe: Pipe = field(
        default_factory=lambda: Pipe(length_m=2.0, diameter_m=0.04, minor_loss_k=6.0)
    )
    height_u: float = 3.0
    water: Fluid = WATER

    def oil_system_pressure_drop_pa(self, flow_m3_s: float, oil_temperature_c: float) -> float:
        """Total oil-circuit resistance at a flow: piping + HX + board bank.

        The board sinks are hydraulically parallel to each other but in
        series with the loop; their (identical) drop at the per-board share
        is charged once.
        """
        oil = self.section.oil
        dp_pipe = -self.loop_pipe.pressure_change_pa(flow_m3_s, oil, oil_temperature_c)
        dp_hx = self.hx.pressure_drop_pa(flow_m3_s, oil, oil_temperature_c)
        velocity = self.section.board_approach_velocity(flow_m3_s)
        dp_boards = self.section.sink.performance(
            velocity, oil, oil_temperature_c
        ).pressure_drop_pa
        return dp_pipe + dp_hx + dp_boards

    def oil_loop_flow(self, oil_temperature_c: float) -> float:
        """Pump/system operating point of the self-contained oil loop."""
        return operating_point(
            self.pump.curve,
            lambda q: self.oil_system_pressure_drop_pa(q, oil_temperature_c),
            speed_fraction=self.pump.speed_fraction,
        )

    def solve_steady(
        self,
        water_in_c: float = 20.0,
        water_flow_m3_s: float = 8.0e-4,
        oil_guess_c: Optional[float] = None,
    ) -> ModuleReport:
        """Close the module's coupled energy balance.

        Finds the cold-oil temperature at which the heat generated in the
        bath (electronics + PSU losses + immersed-pump losses) equals the
        heat the plate exchanger rejects to the chilled water.
        """
        if water_flow_m3_s <= 0:
            raise ValueError("water flow must be positive")
        low = water_in_c + 0.05
        high = water_in_c + 60.0

        def heat_and_parts(oil_cold: float):
            flow = self.oil_loop_flow(oil_cold)
            report = self.section.solve(oil_cold, flow)
            pump_elec = self.pump.electrical_power_w(flow)
            bath_heat = report.total_heat_w + (pump_elec if self.pump.immersed else 0.0)
            oil = self.section.oil
            oil_hot = oil_cold + bath_heat / oil.heat_capacity_rate(flow, oil_cold)
            hx_point = self.hx.solve(
                oil, oil_hot, flow, self.water, water_in_c, water_flow_m3_s
            )
            return bath_heat, report, hx_point, flow, pump_elec, oil_hot

        def residual(oil_cold: float) -> float:
            bath_heat, _, hx_point, _, _, _ = heat_and_parts(oil_cold)
            return hx_point.q_w - bath_heat

        # The residual is negative when the oil is barely above the water
        # (nothing rejected yet) and rises with the oil temperature; scan
        # upward for the first sign change, then refine. Hitting a chip
        # thermal runaway while scanning means the exchanger cannot hold
        # the bath at any temperature the silicon survives.
        lower, upper = low, None
        t = low
        while t <= high:
            if residual(t) >= 0.0:
                upper = t
                break
            lower = t
            t += 2.0
        if upper is None:
            raise ValueError(
                f"{self.name}: no oil equilibrium below {high:.0f} C — "
                "exchanger cannot reject the bath heat"
            )
        oil_cold = brentq(residual, lower, upper, xtol=1e-6)
        bath_heat, report, hx_point, flow, pump_elec, oil_hot = heat_and_parts(oil_cold)

        module_electrical = (
            report.electronics_heat_w + report.psu_heat_w + pump_elec
        )
        return ModuleReport(
            immersion=report,
            hx=hx_point,
            oil_flow_m3_s=flow,
            oil_cold_c=oil_cold,
            oil_hot_c=oil_hot,
            water_in_c=water_in_c,
            water_flow_m3_s=water_flow_m3_s,
            pump_electrical_w=pump_elec,
            total_heat_to_water_w=hx_point.q_w,
            module_electrical_w=module_electrical,
        )

    def solve_steady_batch(
        self,
        water_in_c=20.0,
        water_flow_m3_s=8.0e-4,
        utilization=None,
    ):
        """Batched view of :meth:`solve_steady` over N water/load scenarios.

        Accepts scalars or length-N arrays for the water boundary
        conditions and an optional per-scenario FPGA utilization override,
        and returns a :class:`repro.batch.steady.ModuleSteadyBatch` whose
        ``report(i)`` rebuilds the exact serial :class:`ModuleReport`.
        A scalar call (``N=1``) is the thin batched view of this method;
        the scalar implementation above stays the differential oracle
        (``tests/test_batch_differential.py``).
        """
        from repro.batch.steady import solve_module_steady_batch

        return solve_module_steady_batch(
            self, water_in_c, water_flow_m3_s, utilization=utilization
        )

    @property
    def height_mm(self) -> float:
        """Module height, mm."""
        return self.height_u * RACK_UNIT_MM

    def volume_litre(self) -> float:
        """Module envelope volume (19-inch width x 3U x standard depth)."""
        width_m = 0.483
        depth_m = 0.8
        return width_m * (self.height_mm / 1000.0) * depth_m * 1000.0


__all__ = ["ComputationalModule", "ModuleReport", "RACK_UNIT_MM"]
