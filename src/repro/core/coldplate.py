"""Closed-loop cold-plate cooling — the alternative the paper rejects.

Section 2 describes both styles: "one cooling plate, one printed circuit
board" (SKIF-Avrora) and "one cooling plate, one (heated) chip" (IBM
Aquasar), and catalogs their liabilities: a complex piping system, a large
number of pressure-tight connections, conducting-liquid leaks that "can be
fatal", and the dew-point condensation problem. This model quantifies the
thermal performance *and* those liabilities so the architecture comparison
benches have both sides of the ledger.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.core.tim import ThermalInterface, CONVENTIONAL_PASTE
from repro.devices.board import Ccb
from repro.fluids.library import WATER
from repro.fluids.properties import Fluid
from repro.thermal.convection import duct_film
from repro.thermal.resistances import conduction_slab, spreading


class PlateStyle(Enum):
    """The two closed-loop styles the paper names."""

    PER_CHIP = "per_chip"  # IBM Aquasar: one plate per heated chip
    PER_BOARD = "per_board"  # SKIF-Avrora: one relief plate per board


def dew_point_c(air_c: float, relative_humidity: float) -> float:
    """Magnus-formula dew point of room air.

    The paper's condensation hazard: "if some parts of these plates are too
    cold and the air in the section of data processing is warmer and not
    very dry, then moisture can condense out of the air on the plates."
    """
    if not 0.0 < relative_humidity <= 1.0:
        raise ValueError("relative humidity must be in (0, 1]")
    a, b = 17.62, 243.12
    gamma = math.log(relative_humidity) + a * air_c / (b + air_c)
    return b * gamma / (a - gamma)


@dataclass(frozen=True)
class ColdPlateReport:
    """Thermal and risk report for a closed-loop cold-plate module."""

    max_junction_c: float
    chip_resistance_k_w: float
    plate_surface_c: float
    condensation_risk: bool
    dew_point_c: float
    n_pressure_tight_connections: int
    n_leak_sensors: int
    water_flow_m3_s: float
    pump_pressure_pa: float


@dataclass(frozen=True)
class ColdPlateModule:
    """A closed-loop water-cooled CM.

    Parameters
    ----------
    ccb:
        The board design.
    n_boards:
        Boards in the module.
    style:
        Per-chip or per-board plates.
    channel_diameter_m, channel_length_m:
        The water channel serving one chip's footprint.
    water_velocity_m_s:
        Design channel velocity.
    plate_thickness_m, plate_conductivity_w_mk:
        Plate body between the chip and the channel.
    tim:
        Chip-to-plate interface.
    supply_water_c:
        Chilled-water supply temperature.
    room_air_c, room_relative_humidity:
        Data-hall air state for the dew-point check.
    """

    ccb: Ccb
    n_boards: int = 12
    style: PlateStyle = PlateStyle.PER_CHIP
    channel_diameter_m: float = 0.006
    channel_length_m: float = 0.30
    water_velocity_m_s: float = 1.0
    plate_thickness_m: float = 0.004
    plate_conductivity_w_mk: float = 390.0
    tim: ThermalInterface = CONVENTIONAL_PASTE
    supply_water_c: float = 20.0
    room_air_c: float = 25.0
    room_relative_humidity: float = 0.55
    water: Fluid = WATER

    def __post_init__(self) -> None:
        if self.n_boards < 1:
            raise ValueError("module needs at least one board")
        if min(self.channel_diameter_m, self.channel_length_m, self.water_velocity_m_s) <= 0:
            raise ValueError("channel geometry and velocity must be positive")

    @property
    def n_plates(self) -> int:
        """Cold plates in the module."""
        per_board = self.ccb.package_sites if self.style is PlateStyle.PER_CHIP else 1
        return per_board * self.n_boards

    @property
    def n_pressure_tight_connections(self) -> int:
        """Hose connections: two per plate, two per board manifold, two per
        module manifold — the paper's "large number of pressure-tight
        connections"."""
        return 2 * self.n_plates + 2 * self.n_boards + 2

    @property
    def n_leak_sensors(self) -> int:
        """Humidity/leak sensors: one per board plus one per module (the
        "many internal humidity and leak sensors" of Section 2)."""
        return self.n_boards + 1

    def chip_resistance_k_w(self) -> float:
        """Junction-to-water resistance through plate and channel film."""
        family = self.ccb.fpga.family
        film = duct_film(
            self.water_velocity_m_s, self.channel_diameter_m, self.water, self.supply_water_c
        )
        channel_area = math.pi * self.channel_diameter_m * self.channel_length_m
        r_film = 1.0 / (film.h_w_m2k * channel_area)
        plate_area = (
            family.package_area_m2 * 1.5
            if self.style is PlateStyle.PER_CHIP
            else family.package_area_m2 * 2.5
        )
        r_spread = spreading(
            family.die_area_m2,
            plate_area,
            self.plate_thickness_m,
            self.plate_conductivity_w_mk,
            film.h_w_m2k * channel_area / plate_area,
        )
        r_body = conduction_slab(
            self.plate_thickness_m / 2.0, self.plate_conductivity_w_mk, plate_area
        )
        r_tim = self.tim.resistance_k_w(family.die_area_m2)
        return family.theta_jc_k_w + r_tim + r_spread + r_body + r_film

    def solve(self) -> ColdPlateReport:
        """Steady state plus the risk ledger.

        Water warms only slightly per chip at design flow, so the chips are
        solved against the supply temperature directly; the risk terms
        (connections, sensors, condensation) are what differentiate the
        architectures.
        """
        resistance = self.chip_resistance_k_w()
        point = self.ccb.fpga.operate(resistance, self.supply_water_c)

        # Coldest exposed metal is roughly the plate near the inlet.
        plate_surface = self.supply_water_c + 1.0
        dew = dew_point_c(self.room_air_c, self.room_relative_humidity)

        channel_flow = (
            self.water_velocity_m_s * math.pi * self.channel_diameter_m ** 2 / 4.0
        )
        total_flow = channel_flow * self.n_plates
        film_length_dp = 0.25 * self.channel_length_m / self.channel_diameter_m
        rho = self.water.density(self.supply_water_c)
        pump_dp = (film_length_dp + 8.0) * rho * self.water_velocity_m_s ** 2 / 2.0

        return ColdPlateReport(
            max_junction_c=point.junction_c,
            chip_resistance_k_w=resistance,
            plate_surface_c=plate_surface,
            condensation_risk=plate_surface <= dew,
            dew_point_c=dew,
            n_pressure_tight_connections=self.n_pressure_tight_connections,
            n_leak_sensors=self.n_leak_sensors,
            water_flow_m3_s=total_flow,
            pump_pressure_pa=pump_dp,
        )


__all__ = ["ColdPlateModule", "ColdPlateReport", "PlateStyle", "dew_point_c"]
