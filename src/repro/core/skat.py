"""Factory functions for the paper's concrete machines.

Four machines appear in the paper:

- **Rigel-2** — air-cooled CM of Virtex-6 FPGAs (Section 1 baseline),
- **Taygeta** — air-cooled CM of Virtex-7 FPGAs (Section 1 baseline),
- **SKAT** — the new-generation immersion CM of Kintex UltraScale FPGAs
  (Section 3): 12 CCBs x 8 FPGAs, three 4 kW immersion PSUs, external
  circulation pump, plate HX, 3U,
- **SKAT+** — the UltraScale+ follow-on (Section 4): no separate CCB
  controller (packages no longer fit otherwise), immersed pumps, enlarged
  heat-exchange surface and higher pump performance.

Each factory wires the calibrated geometry so the module reproduces the
paper's measured numbers.
"""

from __future__ import annotations

from repro.core.aircooling import AirCooledModule
from repro.core.heatsink import (
    PinFinHeatSink,
    SOLDER_PIN_TURBULENCE_FACTOR,
    StraightFinAirSink,
)
from repro.core.immersion import ImmersionSection
from repro.core.module import ComputationalModule
from repro.core.tim import SRC_OIL_STABLE_INTERFACE
from repro.devices.board import Ccb
from repro.devices.families import (
    KINTEX_ULTRASCALE_KU095,
    ULTRASCALE_2_PROJECTED,
    ULTRASCALE_PLUS_VU9P,
    VIRTEX6_LX240T,
    VIRTEX7_X485T,
    FpgaFamily,
)
from repro.devices.fpga import Fpga
from repro.devices.psu import ImmersionPsu
from repro.heatexchange.plate import PlateHeatExchanger
from repro.hydraulics.elements import Pipe, Pump, PumpCurve

#: Chilled-water supply the SKAT rack loop delivers to each CM exchanger.
SKAT_WATER_SUPPLY_C = 20.0
#: Design chilled-water flow per CM.
SKAT_WATER_FLOW_M3_S = 1.2e-3


def rigel2(utilization: float = 0.9, n_boards: int = 4) -> AirCooledModule:
    """The Rigel-2 air-cooled CM (Virtex-6, 1255 W, overheat 33.1 C)."""
    return AirCooledModule(
        ccb=Ccb(Fpga(VIRTEX6_LX240T, utilization=utilization)),
        n_boards=n_boards,
    )


def taygeta(utilization: float = 0.9, n_boards: int = 4) -> AirCooledModule:
    """The Taygeta air-cooled CM (Virtex-7, 1661 W, overheat 47.9 C)."""
    return AirCooledModule(
        ccb=Ccb(Fpga(VIRTEX7_X485T, utilization=utilization)),
        n_boards=n_boards,
    )


def ultrascale_in_air(utilization: float = 0.9) -> AirCooledModule:
    """The hypothetical UltraScale air-cooled CM of Section 1's projection.

    Even with an upgraded sink (taller fins, more airflow than the Taygeta
    cage could take), the junction lands in the 80...85 C range the paper
    predicts — past the reliability ceiling. This machine was never built;
    the model shows why.
    """
    upgraded_sink = StraightFinAirSink(
        base_width_m=0.075,
        base_depth_m=0.075,
        base_thickness_m=0.006,
        fin_height_m=0.050,
        fin_thickness_m=0.0008,
        fin_gap_m=0.0022,
        source_area_m2=KINTEX_ULTRASCALE_KU095.die_area_m2,
    )
    return AirCooledModule(
        ccb=Ccb(Fpga(KINTEX_ULTRASCALE_KU095, utilization=utilization)),
        n_boards=4,
        sink=upgraded_sink,
        channel_velocity_m_s=6.0,
        board_airflow_m3_s=0.10,
        cage_pressure_drop_pa=450.0,
    )


def skat_heatsink() -> PinFinHeatSink:
    """The SKAT solder-pin heatsink at its calibrated geometry."""
    return PinFinHeatSink(
        base_width_m=0.060,
        base_depth_m=0.060,
        base_thickness_m=0.003,
        pin_diameter_m=0.002,
        pin_height_m=0.007,
        pin_pitch_m=0.004,
        turbulence_factor=SOLDER_PIN_TURBULENCE_FACTOR,
        source_area_m2=KINTEX_ULTRASCALE_KU095.die_area_m2,
    )


def skat_plus_heatsink() -> PinFinHeatSink:
    """The SKAT+ sink: design item 1, "increase the effective surface of
    heat-exchange" — taller pins on a wider base for the 45 mm package."""
    return PinFinHeatSink(
        base_width_m=0.065,
        base_depth_m=0.065,
        base_thickness_m=0.003,
        pin_diameter_m=0.002,
        pin_height_m=0.011,
        pin_pitch_m=0.0038,
        turbulence_factor=SOLDER_PIN_TURBULENCE_FACTOR,
        source_area_m2=ULTRASCALE_PLUS_VU9P.die_area_m2,
    )


def skat_hx() -> PlateHeatExchanger:
    """The SKAT oil/water plate exchanger."""
    return PlateHeatExchanger(
        n_plates=28,
        plate_width_m=0.10,
        plate_height_m=0.30,
        channel_gap_m=3.0e-3,
    )


def skat_plus_hx() -> PlateHeatExchanger:
    """The SKAT+ exchanger: more plates, since the heat-exchange section
    loses its pump bay to the bath ("the heat-exchange section will house
    only the heat exchanger")."""
    return PlateHeatExchanger(
        n_plates=32,
        plate_width_m=0.10,
        plate_height_m=0.30,
        channel_gap_m=3.0e-3,
    )


def skat_pump() -> Pump:
    """The SKAT external circulation pump (heat-exchange section)."""
    return Pump(
        curve=PumpCurve(shutoff_pressure_pa=45.0e3, max_flow_m3_s=5.0e-3),
        efficiency=0.50,
        immersed=False,
    )


def skat_plus_pump() -> Pump:
    """The SKAT+ immersed pump: design items 2-3, higher performance and
    in-bath installation (its losses heat the oil)."""
    return Pump(
        curve=PumpCurve(shutoff_pressure_pa=60.0e3, max_flow_m3_s=6.5e-3),
        efficiency=0.50,
        immersed=True,
    )


def skat(utilization: float = 0.9, n_boards: int = 12) -> ComputationalModule:
    """The SKAT CM: the paper's built-and-measured machine.

    Paper anchors: 12 CCBs x 8 x XCKU095, three 4 kW PSUs, 91 W per FPGA,
    8736 W module, oil <= 30 C, max FPGA <= 55 C, 3U.
    """
    section = ImmersionSection(
        ccb=Ccb(Fpga(KINTEX_ULTRASCALE_KU095, utilization=utilization)),
        n_boards=n_boards,
        sink=skat_heatsink(),
        tim=SRC_OIL_STABLE_INTERFACE,
        psu=ImmersionPsu(rated_output_w=4000.0, boards_served=4),
        n_psus=3,
    )
    return ComputationalModule(
        name="SKAT",
        section=section,
        pump=skat_pump(),
        hx=skat_hx(),
        loop_pipe=Pipe(length_m=2.0, diameter_m=0.04, minor_loss_k=6.0),
    )


def skat_plus(
    utilization: float = 0.9,
    n_boards: int = 12,
    family: FpgaFamily = ULTRASCALE_PLUS_VU9P,
    modified_cooling: bool = True,
) -> ComputationalModule:
    """The SKAT+ CM: UltraScale+ boards with the Section 4 modifications.

    With ``modified_cooling=False`` the UltraScale+ boards are dropped into
    the unmodified SKAT cooling system — the configuration whose junction
    temperatures "approach again their critical values", motivating the
    redesign.
    """
    ccb = Ccb(
        Fpga(family, utilization=utilization),
        separate_controller=False,  # the 45 mm packages leave no room
    )
    ccb.require_fit()
    if modified_cooling:
        sink, hx, pump = skat_plus_heatsink(), skat_plus_hx(), skat_plus_pump()
    else:
        sink, hx, pump = skat_heatsink(), skat_hx(), skat_pump()
    section = ImmersionSection(
        ccb=ccb,
        n_boards=n_boards,
        sink=sink,
        tim=SRC_OIL_STABLE_INTERFACE,
        psu=ImmersionPsu(rated_output_w=4500.0, boards_served=4),
        n_psus=3,
    )
    return ComputationalModule(
        name="SKAT+" if modified_cooling else "SKAT+ (unmodified cooling)",
        section=section,
        pump=pump,
        hx=hx,
        loop_pipe=Pipe(length_m=2.0, diameter_m=0.045, minor_loss_k=5.0),
    )


def skat_2(utilization: float = 0.9) -> ComputationalModule:
    """A projected "UltraScale 2" CM on the SKAT+ cooling system — the
    future family the conclusions claim the power reserve covers."""
    return skat_plus(
        utilization=utilization,
        family=ULTRASCALE_2_PROJECTED,
        modified_cooling=True,
    )


__all__ = [
    "SKAT_WATER_FLOW_M3_S",
    "SKAT_WATER_SUPPLY_C",
    "rigel2",
    "skat",
    "skat_2",
    "skat_heatsink",
    "skat_hx",
    "skat_plus",
    "skat_plus_heatsink",
    "skat_plus_hx",
    "skat_plus_pump",
    "skat_pump",
    "taygeta",
    "ultrascale_in_air",
]
