"""Full-resolution thermal network of the computational section.

The production solver (:mod:`repro.core.immersion`) marches chip by chip
along the oil stream — fast, but it linearizes the oil path and ignores
chip-to-chip conduction through the board. This module builds the *full*
RC network of the bath — every junction, every sink, every local oil cell,
board conduction, 12 boards — and solves it with the generic sparse solver
from :mod:`repro.thermal.steady`.

Two uses:

- cross-validation: the marching solver must agree with the full network
  at the design point (asserted by the test suite);
- gradient studies: the full network resolves the in-board temperature
  field the paper worries about ("considerable thermal gradients" in
  under-designed immersion systems).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.immersion import ImmersionSection
from repro.thermal.network import ThermalNetwork
from repro.thermal.steady import boundary_heat_flows, solve_steady_state

#: Board in-plane conduction between adjacent chip sites, K/W. FR4 with
#: copper planes over a ~50 mm pitch: a weak but nonzero path.
BOARD_SITE_TO_SITE_K_W = 8.0


@dataclass(frozen=True)
class NetworkSolution:
    """Solved full-network state of the computational section."""

    temperatures_c: Dict[str, float]
    max_junction_c: float
    junction_by_position: Dict[int, float]
    oil_outlet_c: float
    total_heat_w: float

    @property
    def board_gradient_k(self) -> float:
        """First-to-last junction spread along the oil path."""
        positions = sorted(self.junction_by_position)
        return (
            self.junction_by_position[positions[-1]]
            - self.junction_by_position[positions[0]]
        )


def build_module_network(
    section: ImmersionSection,
    oil_supply_c: float,
    oil_flow_m3_s: float,
    chip_power_w: float,
) -> ThermalNetwork:
    """Assemble the full thermal network of the bath.

    Structure per board: one oil cell per chip position, each tied to the
    supply boundary through its *cumulative* advection resistance
    ``(k + 1) / (m_dot c_p)`` — for a uniformly heated stream this
    reproduces the exact advection profile ``T_k = T_s + sum(Q_j)/C``
    while keeping the network symmetric and solvable by the generic
    sparse solver. Each chip's junction hangs off its oil cell through
    the chip resistance, and adjacent chip sites couple through the board
    plane.

    ``chip_power_w`` is the (uniform) dissipation per field FPGA; the
    caller iterates it against the power model when self-consistency is
    wanted.
    """
    if oil_flow_m3_s <= 0 or chip_power_w < 0:
        raise ValueError("flow must be positive and power non-negative")
    network = ThermalNetwork()
    network.add_boundary("oil_supply", oil_supply_c)

    per_board_flow = oil_flow_m3_s * section.flow_fraction_over_boards / section.n_boards
    capacity = section.oil.heat_capacity_rate(per_board_flow, oil_supply_c)
    r_chip = section.chip_resistance_k_w(oil_flow_m3_s, oil_supply_c)

    for board in range(section.n_boards):
        for position in range(section.ccb.n_fpgas):
            oil_cell = f"b{board}_oil{position}"
            junction = f"b{board}_j{position}"
            network.add_node(oil_cell)
            network.add_node(junction, heat_w=chip_power_w)
            network.add_resistance(
                oil_cell,
                "oil_supply",
                (position + 1) / capacity,
                label="advection",
            )
            network.add_resistance(junction, oil_cell, r_chip, label="chip")
            if position > 0:
                network.add_resistance(
                    junction,
                    f"b{board}_j{position - 1}",
                    BOARD_SITE_TO_SITE_K_W,
                    label="board",
                )
    return network


def solve_module_network(
    section: ImmersionSection,
    oil_supply_c: float,
    oil_flow_m3_s: float,
    chip_power_w: float,
) -> NetworkSolution:
    """Build and solve the full network; aggregate per-position results."""
    network = build_module_network(section, oil_supply_c, oil_flow_m3_s, chip_power_w)
    temperatures = solve_steady_state(network)

    junctions: Dict[int, float] = {}
    for position in range(section.ccb.n_fpgas):
        values = [
            temperatures[f"b{board}_j{position}"] for board in range(section.n_boards)
        ]
        junctions[position] = max(values)

    # Bulk outlet: the flow-weighted board outlets mixed with the bypass
    # stream that never crossed the boards.
    outlet_cells = [
        temperatures[f"b{board}_oil{section.ccb.n_fpgas - 1}"]
        for board in range(section.n_boards)
    ]
    board_outlet = sum(outlet_cells) / len(outlet_cells)
    f = section.flow_fraction_over_boards
    oil_outlet = f * board_outlet + (1.0 - f) * oil_supply_c

    flows = boundary_heat_flows(network, temperatures)
    return NetworkSolution(
        temperatures_c=temperatures,
        max_junction_c=max(max(junctions.values()), 0.0),
        junction_by_position=junctions,
        oil_outlet_c=oil_outlet,
        total_heat_w=flows["oil_supply"],
    )


__all__ = [
    "BOARD_SITE_TO_SITE_K_W",
    "NetworkSolution",
    "build_module_network",
    "solve_module_network",
]
