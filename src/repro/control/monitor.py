"""Telemetry logging for simulation runs.

A small append-only time-series store: the coupled simulator records every
channel each step, and the benchmarks/examples query series, extrema and
threshold crossings from it. Beyond sampled channels it carries two
run-scoped facilities:

- **counters** — monotonically accumulated named tallies (solver cache
  hits, scalar fallbacks, alarm episodes) that describe the run as a
  whole rather than a point in time;
- :class:`AlarmLog` — an alarm history that deduplicates the repeated
  re-raising of the same condition every evaluation cycle into discrete
  episodes, the way an operator's annunciator panel would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.obs import get_registry, sanitize_metric_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.control.controller import Alarm


@dataclass
class TelemetryLog:
    """An append-only log of named channels sampled over time."""

    _times: List[float] = field(default_factory=list)
    _records: List[Dict[str, float]] = field(default_factory=list)
    _counters: Dict[str, float] = field(default_factory=dict)

    def record(self, time_s: float, values: Dict[str, float]) -> None:
        """Append one sample; time must not decrease."""
        if self._times and time_s < self._times[-1]:
            raise ValueError(
                f"time went backwards: {time_s} after {self._times[-1]}"
            )
        self._times.append(float(time_s))
        self._records.append({k: float(v) for k, v in values.items()})
        get_registry().inc("telemetry_samples_total")

    def __len__(self) -> int:
        return len(self._times)

    @property
    def channels(self) -> List[str]:
        """All channel names seen so far."""
        names: List[str] = []
        seen = set()
        for record in self._records:
            for key in record:
                if key not in seen:
                    seen.add(key)
                    names.append(key)
        return names

    def series(self, channel: str) -> Tuple[np.ndarray, np.ndarray]:
        """(times, values) for one channel, skipping samples without it."""
        times, values = [], []
        for t, record in zip(self._times, self._records):
            if channel in record:
                times.append(t)
                values.append(record[channel])
        if not times:
            raise KeyError(f"channel {channel!r} never recorded")
        return np.asarray(times), np.asarray(values)

    def latest(self, channel: str) -> float:
        """Most recent value of a channel."""
        for record in reversed(self._records):
            if channel in record:
                return record[channel]
        raise KeyError(f"channel {channel!r} never recorded")

    def maximum(self, channel: str) -> float:
        """Largest value a channel reached."""
        _, values = self.series(channel)
        return float(np.max(values))

    def minimum(self, channel: str) -> float:
        """Smallest value a channel reached."""
        _, values = self.series(channel)
        return float(np.min(values))

    def first_crossing(self, channel: str, threshold: float) -> Optional[float]:
        """Time when the channel first reached ``threshold``, or None."""
        times, values = self.series(channel)
        above = np.nonzero(values >= threshold)[0]
        if len(above) == 0:
            return None
        return float(times[above[0]])

    def increment(self, counter: str, amount: float = 1.0) -> None:
        """Accumulate a named run-scoped counter (negative amounts rejected).

        Each increment is mirrored into the process metrics registry as
        ``telemetry_<counter>_total``, so a log's counters also feed the
        process-wide totals.
        """
        if not counter:
            raise ValueError("counter name must be non-empty")
        if amount < 0:
            raise ValueError("counters only accumulate; amount must be >= 0")
        self._counters[counter] = self._counters.get(counter, 0.0) + float(amount)
        get_registry().inc(
            f"telemetry_{sanitize_metric_name(counter)}_total", float(amount)
        )

    def set_counters(self, values: Dict[str, float]) -> None:
        """Merge a batch of counter values (e.g. ``SolverCounters.as_dict()``).

        Each value *replaces* the stored one — use for counters that are
        already cumulative at the source. Replacement semantics cannot be
        mirrored into the accumulate-only process registry, so callers
        that want process totals publish those separately (the simulators
        do, under their own prefixes).
        """
        for name, value in values.items():
            if not name:
                raise ValueError("counter name must be non-empty")
            self._counters[name] = float(value)

    def counter(self, name: str) -> float:
        """Current value of one counter (0 if never touched)."""
        return self._counters.get(name, 0.0)

    @property
    def counters(self) -> Dict[str, float]:
        """A copy of all run-scoped counters."""
        return dict(self._counters)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """min/max/last per channel — the run's one-look report.

        When run-scoped counters were recorded they appear under the
        ``"counters"`` key.
        """
        out: Dict[str, Dict[str, float]] = {}
        for channel in self.channels:
            _, values = self.series(channel)
            out[channel] = {
                "min": float(np.min(values)),
                "max": float(np.max(values)),
                "last": float(values[-1]),
            }
        if self._counters:
            out["counters"] = dict(self._counters)
        return out


@dataclass(frozen=True)
class AlarmRecord:
    """One deduplicated alarm episode."""

    time_s: float
    alarm: "Alarm"


@dataclass
class AlarmLog:
    """Alarm history with consecutive-repeat deduplication.

    The supervisory controller re-raises an active condition on every
    evaluation cycle; feeding those through :meth:`observe` collapses them
    into *episodes*: an alarm is new only when its (source, severity) pair
    was not active on the previous observation. A condition that clears
    and later re-trips counts as a fresh episode.
    """

    _history: List[AlarmRecord] = field(default_factory=list)
    _active: Set[Tuple[str, str]] = field(default_factory=set)
    _last_time_s: Optional[float] = field(default=None, repr=False)

    @staticmethod
    def _key(alarm: "Alarm") -> Tuple[str, str]:
        return (alarm.source, alarm.severity.value)

    def observe(self, time_s: float, alarms: Iterable["Alarm"]) -> List["Alarm"]:
        """Record one evaluation cycle's alarms; return the new episodes."""
        if self._last_time_s is not None and time_s < self._last_time_s:
            raise ValueError(
                f"time went backwards: {time_s} after {self._last_time_s}"
            )
        self._last_time_s = time_s
        now = {self._key(a): a for a in alarms}
        fresh = [alarm for key, alarm in now.items() if key not in self._active]
        for alarm in fresh:
            self._history.append(AlarmRecord(time_s=time_s, alarm=alarm))
        self._active = set(now)
        if fresh:
            get_registry().inc("alarm_episodes_total", len(fresh))
        return fresh

    @property
    def episodes(self) -> int:
        """Number of distinct alarm episodes so far."""
        return len(self._history)

    @property
    def history(self) -> List[AlarmRecord]:
        """All episodes in raise order."""
        return list(self._history)

    @property
    def active(self) -> Set[Tuple[str, str]]:
        """(source, severity) pairs active at the last observation."""
        return set(self._active)

    def episodes_from(self, source: str) -> int:
        """Episodes raised by one source."""
        return sum(1 for r in self._history if r.alarm.source == source)


__all__ = ["AlarmLog", "AlarmRecord", "TelemetryLog"]
