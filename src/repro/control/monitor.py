"""Telemetry logging for simulation runs.

A small append-only time-series store: the coupled simulator records every
channel each step, and the benchmarks/examples query series, extrema and
threshold crossings from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass
class TelemetryLog:
    """An append-only log of named channels sampled over time."""

    _times: List[float] = field(default_factory=list)
    _records: List[Dict[str, float]] = field(default_factory=list)

    def record(self, time_s: float, values: Dict[str, float]) -> None:
        """Append one sample; time must not decrease."""
        if self._times and time_s < self._times[-1]:
            raise ValueError(
                f"time went backwards: {time_s} after {self._times[-1]}"
            )
        self._times.append(float(time_s))
        self._records.append({k: float(v) for k, v in values.items()})

    def __len__(self) -> int:
        return len(self._times)

    @property
    def channels(self) -> List[str]:
        """All channel names seen so far."""
        names: List[str] = []
        seen = set()
        for record in self._records:
            for key in record:
                if key not in seen:
                    seen.add(key)
                    names.append(key)
        return names

    def series(self, channel: str) -> Tuple[np.ndarray, np.ndarray]:
        """(times, values) for one channel, skipping samples without it."""
        times, values = [], []
        for t, record in zip(self._times, self._records):
            if channel in record:
                times.append(t)
                values.append(record[channel])
        if not times:
            raise KeyError(f"channel {channel!r} never recorded")
        return np.asarray(times), np.asarray(values)

    def latest(self, channel: str) -> float:
        """Most recent value of a channel."""
        for record in reversed(self._records):
            if channel in record:
                return record[channel]
        raise KeyError(f"channel {channel!r} never recorded")

    def maximum(self, channel: str) -> float:
        """Largest value a channel reached."""
        _, values = self.series(channel)
        return float(np.max(values))

    def minimum(self, channel: str) -> float:
        """Smallest value a channel reached."""
        _, values = self.series(channel)
        return float(np.min(values))

    def first_crossing(self, channel: str, threshold: float) -> Optional[float]:
        """Time when the channel first reached ``threshold``, or None."""
        times, values = self.series(channel)
        above = np.nonzero(values >= threshold)[0]
        if len(above) == 0:
            return None
        return float(times[above[0]])

    def summary(self) -> Dict[str, Dict[str, float]]:
        """min/max/last per channel — the run's one-look report."""
        out: Dict[str, Dict[str, float]] = {}
        for channel in self.channels:
            _, values = self.series(channel)
            out[channel] = {
                "min": float(np.min(values)),
                "max": float(np.max(values)),
                "last": float(values[-1]),
            }
        return out


__all__ = ["TelemetryLog"]
