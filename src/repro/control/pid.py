"""PID regulator for the cooling loops.

The threshold supervisor in :mod:`repro.control.controller` handles
alarms and trips; continuous regulation — holding the bath temperature by
trimming the pump speed, or holding the chilled-water supply by modulating
the chiller — is a PID job. The implementation is a standard discrete
positional PID with anti-windup clamping and output limits, suitable for
the slow (tens of seconds) thermal loops of the machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PidController:
    """A discrete positional PID controller.

    Parameters
    ----------
    kp, ki, kd:
        Proportional, integral and derivative gains. Error convention:
        ``error = setpoint - measurement``, so for a *cooling* actuator
        (more pump speed -> lower temperature) use negative gains or
        invert the output at the call site via ``reverse_acting=True``.
    setpoint:
        Target process value.
    output_min, output_max:
        Actuator limits; the integral term is clamped so the output can
        always come off the limit (anti-windup).
    reverse_acting:
        True when increasing the actuator *decreases* the process value
        (pump speed vs temperature) — the controller negates the error.
    """

    kp: float
    ki: float
    kd: float
    setpoint: float
    output_min: float = 0.0
    output_max: float = 1.0
    reverse_acting: bool = False
    _integral: float = field(init=False, default=0.0, repr=False)
    _last_error: float = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        if self.output_max <= self.output_min:
            raise ValueError("output_max must exceed output_min")
        if self.kp < 0 or self.ki < 0 or self.kd < 0:
            raise ValueError("gains must be non-negative (use reverse_acting)")

    def reset(self) -> None:
        """Clear the integral and derivative memory."""
        self._integral = 0.0
        self._last_error = None

    def update(self, measurement: float, dt_s: float) -> float:
        """One control step; returns the clamped actuator command."""
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        error = self.setpoint - measurement
        if self.reverse_acting:
            error = -error

        proportional = self.kp * error

        self._integral += self.ki * error * dt_s
        # Anti-windup: keep the integral inside the span the output can use.
        span = self.output_max - self.output_min
        self._integral = max(-span, min(self._integral, span))

        if self._last_error is None or self.kd == 0.0:
            derivative = 0.0
        else:
            derivative = self.kd * (error - self._last_error) / dt_s
        self._last_error = error

        raw = proportional + self._integral + derivative
        return max(self.output_min, min(self.output_min + span / 2.0 + raw, self.output_max))


def bath_temperature_pid(setpoint_c: float = 29.0) -> PidController:
    """A tuned PID holding the bath temperature with pump speed.

    Reverse acting: more speed, colder bath. Gains are tuned for the SKAT
    bath's ~1e5 J/K thermal mass and the pump's authority of a few kelvin.
    """
    return PidController(
        kp=0.15,
        ki=0.002,
        kd=0.0,
        setpoint=setpoint_c,
        output_min=0.3,  # never stop circulation entirely
        output_max=1.0,
        reverse_acting=True,
    )


def chiller_setpoint_pid(setpoint_c: float = 29.0) -> PidController:
    """A tuned PID holding the bath temperature with the chiller setpoint.

    Direct acting on the water temperature command (bath too hot -> lower
    water setpoint). Output is the chilled-water setpoint in Celsius.
    """
    return PidController(
        kp=1.2,
        ki=0.01,
        kd=0.0,
        setpoint=setpoint_c,
        output_min=12.0,
        output_max=24.0,
        reverse_acting=False,
    )


__all__ = ["PidController", "bath_temperature_pid", "chiller_setpoint_pid"]
