"""The supervisory cooling controller.

Implements the control subsystem the paper requires: it watches the
heat-transfer-agent level, flow and temperature sensors plus the component
temperature sensors, raises graded alarms, trims pump speed and chiller
setpoint, and orders an emergency shutdown before junctions reach their
limits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional


class AlarmSeverity(Enum):
    """Alarm grading: warnings log, critical alarms act."""

    WARNING = "warning"
    CRITICAL = "critical"


@dataclass(frozen=True)
class Alarm:
    """One raised alarm."""

    severity: AlarmSeverity
    source: str
    message: str


@dataclass(frozen=True)
class Thresholds:
    """Alarm and trip thresholds for a CM cooling system.

    Defaults encode the SKAT operating envelope: oil is expected to stay
    below 30 C, FPGAs below 55 C in normal operation, with the reliability
    ceiling at 70 C and the junction trip below the family's absolute
    limit.
    """

    coolant_warn_c: float = 35.0
    coolant_trip_c: float = 45.0
    component_warn_c: float = 70.0
    component_trip_c: float = 85.0
    min_flow_m3_s: float = 5.0e-4
    min_level_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.coolant_trip_c <= self.coolant_warn_c:
            raise ValueError("coolant trip must exceed warn")
        if self.component_trip_c <= self.component_warn_c:
            raise ValueError("component trip must exceed warn")
        if self.min_flow_m3_s < 0 or not 0.0 <= self.min_level_fraction <= 1.0:
            raise ValueError("invalid flow/level thresholds")


@dataclass(frozen=True)
class ControlAction:
    """Controller output for one evaluation cycle."""

    alarms: List[Alarm]
    pump_speed_fraction: float
    chiller_setpoint_c: float
    shutdown: bool

    @property
    def has_critical(self) -> bool:
        """Whether any critical alarm was raised."""
        return any(a.severity is AlarmSeverity.CRITICAL for a in self.alarms)


@dataclass
class CoolingController:
    """Threshold supervisor with simple proportional pump trimming.

    Parameters
    ----------
    thresholds:
        The alarm/trip envelope.
    nominal_pump_speed:
        Pump speed commanded in the normal band.
    nominal_setpoint_c:
        Chilled-water setpoint in the normal band.
    """

    thresholds: Thresholds = field(default_factory=Thresholds)
    nominal_pump_speed: float = 1.0
    nominal_setpoint_c: float = 20.0
    _latched_shutdown: bool = field(init=False, default=False, repr=False)

    def evaluate(
        self,
        coolant_c: float,
        component_temps_c: Dict[str, float],
        flow_m3_s: float,
        level_fraction: float,
        ambient_c: Optional[float] = None,
    ) -> ControlAction:
        """Evaluate one cycle of sensor readings.

        Shutdown latches: once tripped, the controller keeps commanding
        shutdown until :meth:`reset` (matching real safety practice).
        """
        t = self.thresholds
        alarms: List[Alarm] = []

        if coolant_c >= t.coolant_trip_c:
            alarms.append(Alarm(AlarmSeverity.CRITICAL, "coolant", f"coolant {coolant_c:.1f} C at trip"))
        elif coolant_c >= t.coolant_warn_c:
            alarms.append(Alarm(AlarmSeverity.WARNING, "coolant", f"coolant {coolant_c:.1f} C high"))

        hottest_name, hottest = None, -1.0e9
        for name, temp in component_temps_c.items():
            if temp > hottest:
                hottest_name, hottest = name, temp
        if hottest_name is not None:
            if hottest >= t.component_trip_c:
                alarms.append(
                    Alarm(AlarmSeverity.CRITICAL, hottest_name, f"{hottest_name} {hottest:.1f} C at trip")
                )
            elif hottest >= t.component_warn_c:
                alarms.append(
                    Alarm(AlarmSeverity.WARNING, hottest_name, f"{hottest_name} {hottest:.1f} C high")
                )

        if flow_m3_s < t.min_flow_m3_s:
            alarms.append(
                Alarm(AlarmSeverity.CRITICAL, "flow", f"flow {flow_m3_s * 1000:.2f} L/s below minimum")
            )
        if level_fraction < t.min_level_fraction:
            alarms.append(
                Alarm(AlarmSeverity.CRITICAL, "level", f"level {level_fraction:.0%} below minimum")
            )

        critical = any(a.severity is AlarmSeverity.CRITICAL for a in alarms)
        if critical:
            self._latched_shutdown = True

        # Proportional trim: run the pump harder as coolant approaches the
        # warning band; drop the setpoint 2 C when warned.
        speed = self.nominal_pump_speed
        setpoint = self.nominal_setpoint_c
        margin = t.coolant_warn_c - coolant_c
        if 0.0 < margin < 5.0:
            speed = min(1.0, self.nominal_pump_speed + 0.05 * (5.0 - margin))
        elif margin <= 0.0:
            speed = 1.0
            setpoint = self.nominal_setpoint_c - 2.0

        return ControlAction(
            alarms=alarms,
            pump_speed_fraction=0.0 if self._latched_shutdown else speed,
            chiller_setpoint_c=setpoint,
            shutdown=self._latched_shutdown,
        )

    def reset(self) -> None:
        """Clear a latched shutdown after the operator intervenes."""
        self._latched_shutdown = False


__all__ = ["Alarm", "AlarmSeverity", "ControlAction", "CoolingController", "Thresholds"]
