"""Monitoring and control substrate.

"The liquid cooling system must have a control subsystem containing sensors
of level, flow, and temperature of the heat-transfer agent, and a
temperature sensor for cooling components" (Section 2). This package
provides those sensors (with noise and fault models), the supervisory
controller that acts on them, and a telemetry log for simulation runs.
"""

from repro.control.sensors import (
    FlowSensor,
    LevelSensor,
    Sensor,
    SensorError,
    TemperatureSensor,
)
from repro.control.controller import (
    Alarm,
    AlarmSeverity,
    ControlAction,
    CoolingController,
    Thresholds,
)
from repro.control.monitor import TelemetryLog
from repro.control.pid import PidController, bath_temperature_pid, chiller_setpoint_pid
from repro.control.supervisor import (
    RecoveryAction,
    Supervisor,
    SupervisorDecision,
    SupervisorState,
)

__all__ = [
    "Alarm",
    "AlarmSeverity",
    "ControlAction",
    "CoolingController",
    "FlowSensor",
    "LevelSensor",
    "PidController",
    "RecoveryAction",
    "Sensor",
    "SensorError",
    "Supervisor",
    "SupervisorDecision",
    "SupervisorState",
    "TelemetryLog",
    "TemperatureSensor",
    "Thresholds",
    "bath_temperature_pid",
    "chiller_setpoint_pid",
]
