"""Sensor models for the cooling control subsystem.

Each sensor wraps a physical truth value with measurement range, resolution,
Gaussian noise and an injectable fault (bias or stuck reading). Noise is
drawn from an owned, seeded generator so simulation runs are reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


class SensorError(ValueError):
    """Raised for out-of-range configuration or readings."""


@dataclass
class Sensor:
    """A generic analog sensor.

    Parameters
    ----------
    name:
        Sensor identifier used in telemetry and alarms.
    lo, hi:
        Measurement range; readings clip to it (real transmitters rail).
    noise_std:
        Standard deviation of additive Gaussian noise, in sensor units.
    resolution:
        Quantization step of the digital readout (0 for none).
    seed:
        Seed for the sensor's private random generator.
    """

    name: str
    lo: float
    hi: float
    noise_std: float = 0.0
    resolution: float = 0.0
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)
    _bias: float = field(init=False, default=0.0, repr=False)
    _stuck_at: Optional[float] = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SensorError("sensor name must be non-empty")
        if self.hi <= self.lo:
            raise SensorError(f"{self.name}: range high must exceed low")
        if self.noise_std < 0 or self.resolution < 0:
            raise SensorError(f"{self.name}: noise and resolution must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def read(self, truth: float) -> float:
        """Produce a reading for the physical truth value.

        A stuck transmitter reports its frozen value regardless of the
        truth. Otherwise a non-finite truth (NaN/inf from a diverged
        solve) raises :class:`SensorError` instead of quietly railing —
        the supervisor surfaces it as a ``sensor_fault`` alarm rather
        than letting NaN propagate into the controller.
        """
        if self._stuck_at is not None:
            return self._stuck_at
        if not math.isfinite(truth):
            raise SensorError(f"{self.name}: non-finite truth value {truth!r}")
        value = truth + self._bias
        if self.noise_std > 0:
            value += float(self._rng.normal(0.0, self.noise_std))
        if self.resolution > 0:
            value = round(value / self.resolution) * self.resolution
        return float(min(max(value, self.lo), self.hi))

    def inject_bias(self, offset: float) -> None:
        """Apply a constant offset fault (drifted calibration)."""
        self._bias = offset

    def stick_at(self, value: float) -> None:
        """Freeze the sensor at a value (failed transmitter)."""
        self._stuck_at = value

    def clear_faults(self) -> None:
        """Remove injected faults."""
        self._bias = 0.0
        self._stuck_at = None

    @property
    def faulted(self) -> bool:
        """Whether any fault is currently injected."""
        return self._bias != 0.0 or self._stuck_at is not None


def TemperatureSensor(
    name: str, lo: float = -10.0, hi: float = 150.0, noise_std: float = 0.1, seed: int = 0
) -> Sensor:
    """A PT100-class temperature sensor (Celsius)."""
    return Sensor(name=name, lo=lo, hi=hi, noise_std=noise_std, resolution=0.1, seed=seed)


def FlowSensor(
    name: str, lo: float = 0.0, hi: float = 0.02, noise_std: float = 5.0e-5, seed: int = 0
) -> Sensor:
    """A turbine/ultrasonic flow sensor (m^3/s)."""
    return Sensor(name=name, lo=lo, hi=hi, noise_std=noise_std, resolution=1.0e-5, seed=seed)


def LevelSensor(
    name: str, lo: float = 0.0, hi: float = 1.0, noise_std: float = 0.002, seed: int = 0
) -> Sensor:
    """A bath level sensor (fraction of full)."""
    return Sensor(name=name, lo=lo, hi=hi, noise_std=noise_std, resolution=0.001, seed=seed)


__all__ = ["FlowSensor", "LevelSensor", "Sensor", "SensorError", "TemperatureSensor"]
