"""Supervisory graceful-degradation state machine.

The :class:`~repro.control.controller.CoolingController` grades alarms and
latches an emergency shutdown; this module adds the layer the paper's
production machines need above it — a per-step supervisor that *recovers*
before giving up. It consumes the controller's alarms plus redundant-sensor
votes and walks a bounded mitigation ladder:

``NORMAL -> DEGRADED -> THROTTLED -> SAFE_SHUTDOWN``

- a lost-flow trip is answered by failing over to a standby pump (once);
- a temperature excursion is answered by throttling the FPGA workload
  along the paper's 85-95 % utilization range and dropping the chiller
  setpoint for extra margin;
- a lost bath level (a leak) has no automatic recovery — the machine is
  taken to SAFE_SHUTDOWN before the pump runs dry;
- a blind sensor bank (every redundant reading rejected) likewise forces
  SAFE_SHUTDOWN: the supervisor never controls on data it cannot trust.

States only escalate within a run; SAFE_SHUTDOWN latches like the
controller's trip and is cleared only by :meth:`Supervisor.reset` (the
operator intervening). Every mitigation is recorded as a
:class:`RecoveryAction` so campaign reports can measure time-to-mitigation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, List, Optional, Tuple, Union

from repro.control.controller import (
    Alarm,
    AlarmSeverity,
    CoolingController,
)
from repro.resilience.voting import VoteResult


class SupervisorState(Enum):
    """The graceful-degradation ladder; values order the escalation."""

    NORMAL = 0
    DEGRADED = 1
    THROTTLED = 2
    SAFE_SHUTDOWN = 3


@dataclass(frozen=True)
class RecoveryAction:
    """One supervisory intervention, timestamped for the campaign report."""

    time_s: float
    kind: str
    detail: str


@dataclass(frozen=True)
class SupervisorDecision:
    """The supervisor's output for one evaluation cycle."""

    state: SupervisorState
    alarms: List[Alarm]
    pump_speed_fraction: float
    active_pump: str
    utilization: float
    chiller_setpoint_c: float
    shutdown: bool
    new_actions: Tuple[RecoveryAction, ...] = ()

    @property
    def throttled(self) -> bool:
        """Whether the workload is currently throttled below nominal."""
        return self.state in (SupervisorState.THROTTLED, SupervisorState.SAFE_SHUTDOWN)


#: Alarm sources the supervisor treats as temperature excursions (anything
#: else critical that is not flow/level/sensor is a component sensor name).
_PLANT_SOURCES = frozenset({"flow", "level", "sensor", "coolant"})


@dataclass
class Supervisor:
    """Closed-loop recovery supervisor wrapping a cooling controller.

    Parameters
    ----------
    controller:
        The alarm/trip authority; the supervisor owns it (resetting its
        latch when a mitigation substitutes for a shutdown).
    nominal_utilization:
        FPGA utilization of the unthrottled workload.
    throttle_step, throttle_floor:
        Workload throttling ladder: each temperature escalation sheds one
        step until the floor — the bottom of the paper's 85-95 % range.
    primary_pump, standby_pump:
        Names of the duty and standby circulation pumps (failure-event
        targets are matched against the *active* name).
    max_pump_failovers:
        How many times the supervisor may switch pumps (one standby).
    standby_speed_fraction:
        Delivered speed capability of the standby pump.
    chiller_fallback_delta_c, chiller_setpoint_floor_c, max_chiller_fallbacks:
        Chilled-water setpoint fallback: each temperature escalation drops
        the setpoint by the delta, bounded by the floor and the budget.
    """

    controller: CoolingController = field(default_factory=CoolingController)
    nominal_utilization: float = 0.9
    throttle_step: float = 0.05
    throttle_floor: float = 0.85
    primary_pump: str = "oil_pump"
    standby_pump: str = "standby_pump"
    max_pump_failovers: int = 1
    standby_speed_fraction: float = 1.0
    chiller_fallback_delta_c: float = 4.0
    chiller_setpoint_floor_c: float = 12.0
    max_chiller_fallbacks: int = 2
    _state: SupervisorState = field(init=False, default=SupervisorState.NORMAL, repr=False)
    _active_pump: str = field(init=False, default="", repr=False)
    _failovers_used: int = field(init=False, default=0, repr=False)
    _fallbacks_used: int = field(init=False, default=0, repr=False)
    _utilization: float = field(init=False, default=0.0, repr=False)
    _chiller_setpoint_c: float = field(init=False, default=0.0, repr=False)
    _sensor_flagged: bool = field(init=False, default=False, repr=False)
    _actions: List[RecoveryAction] = field(init=False, default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.throttle_floor <= self.nominal_utilization <= 1.0:
            raise ValueError("need 0 < throttle_floor <= nominal_utilization <= 1")
        if self.throttle_step <= 0:
            raise ValueError("throttle step must be positive")
        if not 0.0 < self.standby_speed_fraction <= 1.0:
            raise ValueError("standby speed fraction must be in (0, 1]")
        if self.max_pump_failovers < 0 or self.max_chiller_fallbacks < 0:
            raise ValueError("mitigation budgets must be non-negative")
        self.reset()

    def reset(self) -> None:
        """Operator intervention: restore the pristine NORMAL state."""
        self._state = SupervisorState.NORMAL
        self._active_pump = self.primary_pump
        self._failovers_used = 0
        self._fallbacks_used = 0
        self._utilization = self.nominal_utilization
        self._chiller_setpoint_c = self.controller.nominal_setpoint_c
        self._sensor_flagged = False
        self._actions = []
        self.controller.reset()

    @property
    def state(self) -> SupervisorState:
        """Current ladder state."""
        return self._state

    @property
    def active_pump(self) -> str:
        """Name of the pump currently driving the loop."""
        return self._active_pump

    @property
    def utilization(self) -> float:
        """Currently commanded FPGA utilization."""
        return self._utilization

    @property
    def actions(self) -> List[RecoveryAction]:
        """Every recovery action taken since the last reset, in order."""
        return list(self._actions)

    def record(
        self,
        time_s: float,
        kind: str,
        detail: str,
        state: Optional[SupervisorState] = None,
    ) -> None:
        """Log an externally observed recovery (e.g. a solver retry or a
        per-module shutdown performed by the rack simulator), optionally
        escalating the ladder."""
        self._actions.append(RecoveryAction(time_s=time_s, kind=kind, detail=detail))
        if state is not None:
            self._escalate(state)

    def _escalate(self, state: SupervisorState) -> None:
        if state.value > self._state.value:
            self._state = state

    def _throttle(self, time_s: float, reason: str) -> bool:
        """Shed one workload step; False when already at the floor."""
        floor = self.throttle_floor
        if self._utilization <= floor + 1e-12:
            return False
        new = max(floor, self._utilization - self.throttle_step)
        self.record(
            time_s,
            "throttle",
            f"utilization {self._utilization:.2f} -> {new:.2f} ({reason})",
        )
        self._utilization = new
        self._escalate(SupervisorState.THROTTLED)
        return True

    def _chiller_fallback(self, time_s: float, reason: str) -> bool:
        """Drop the chilled-water setpoint one step; False when exhausted."""
        if self._fallbacks_used >= self.max_chiller_fallbacks:
            return False
        floor = self.chiller_setpoint_floor_c
        if self._chiller_setpoint_c <= floor + 1e-12:
            return False
        new = max(floor, self._chiller_setpoint_c - self.chiller_fallback_delta_c)
        self.record(
            time_s,
            "chiller_fallback",
            f"setpoint {self._chiller_setpoint_c:.1f} -> {new:.1f} C ({reason})",
        )
        self._chiller_setpoint_c = new
        self._fallbacks_used += 1
        self._escalate(SupervisorState.DEGRADED)
        return True

    def _pump_failover(self, time_s: float, reason: str) -> bool:
        """Switch to the standby pump; False when none remains."""
        if self._failovers_used >= self.max_pump_failovers:
            return False
        self.record(
            time_s,
            "pump_failover",
            f"{self._active_pump} -> {self.standby_pump} ({reason})",
        )
        self._active_pump = self.standby_pump
        self._failovers_used += 1
        self._escalate(SupervisorState.DEGRADED)
        return True

    def flow_interlock(self, time_s: float, flow_m3_s: float) -> bool:
        """Fast loss-of-flow interlock: auto-start the standby pump.

        Real redundant pump skids switch over on a hardware interlock
        within seconds — far faster than the thermal supervision cycle —
        so the simulators call this *within* the time step, before the
        chips see stagnant oil. Returns True when a failover happened on
        this call (the caller must re-apply pump actuation for the step).
        """
        if self._state is SupervisorState.SAFE_SHUTDOWN:
            return False
        if flow_m3_s >= self.controller.thresholds.min_flow_m3_s:
            return False
        return self._pump_failover(time_s, "loss-of-flow interlock")

    def _safe_shutdown(self, time_s: float, reason: str) -> None:
        if self._state is not SupervisorState.SAFE_SHUTDOWN:
            self.record(time_s, "safe_shutdown", reason)
        self._state = SupervisorState.SAFE_SHUTDOWN

    def _shutdown_decision(self, alarms: List[Alarm]) -> SupervisorDecision:
        return SupervisorDecision(
            state=self._state,
            alarms=alarms,
            pump_speed_fraction=0.0,
            active_pump=self._active_pump,
            utilization=self._utilization,
            chiller_setpoint_c=self._chiller_setpoint_c,
            shutdown=True,
        )

    def step(
        self,
        time_s: float,
        coolant: Union[float, VoteResult],
        component_temps_c: Dict[str, float],
        flow_m3_s: float,
        level_fraction: float = 1.0,
    ) -> SupervisorDecision:
        """Evaluate one cycle: vote guards, alarms, then the mitigation
        ladder. ``coolant`` is a pre-voted :class:`VoteResult` from a
        redundant bank, or a plain trusted reading."""
        if self._state is SupervisorState.SAFE_SHUTDOWN:
            return self._shutdown_decision([])
        actions_before = len(self._actions)

        if isinstance(coolant, VoteResult):
            vote = coolant
        else:
            vote = VoteResult(value=float(coolant), valid_count=1)

        extra_alarms: List[Alarm] = []
        if vote.failed:
            extra_alarms.append(
                Alarm(
                    AlarmSeverity.CRITICAL,
                    "sensor",
                    f"sensor_fault: coolant bank blind ({len(vote.rejected)} rejected)",
                )
            )
            self._safe_shutdown(
                time_s, "no plausible coolant reading — cannot control blind"
            )
            return replace(
                self._shutdown_decision(extra_alarms),
                new_actions=tuple(self._actions[actions_before:]),
            )
        if vote.degraded and not self._sensor_flagged:
            self._sensor_flagged = True
            self.record(
                time_s,
                "sensor_vote",
                f"sensor_fault outvoted ({len(vote.rejected)} rejected, "
                f"{len(vote.suspects)} suspect)",
                state=SupervisorState.DEGRADED,
            )
        if vote.degraded:
            extra_alarms.append(
                Alarm(
                    AlarmSeverity.WARNING,
                    "sensor",
                    f"sensor_fault: {len(vote.rejected)} rejected, "
                    f"{len(vote.suspects)} suspect of {vote.valid_count + len(vote.rejected)}",
                )
            )

        action = self.controller.evaluate(
            coolant_c=vote.value,
            component_temps_c=component_temps_c,
            flow_m3_s=flow_m3_s,
            level_fraction=level_fraction,
        )
        alarms = action.alarms + extra_alarms
        speed = action.pump_speed_fraction
        setpoint = min(action.chiller_setpoint_c, self._chiller_setpoint_c)

        if action.shutdown:
            critical = {
                a.source for a in action.alarms if a.severity is AlarmSeverity.CRITICAL
            }
            mitigated = False
            if "level" in critical:
                # A leak: there is no automatic recovery that refills the
                # bath; stop before the pump runs dry.
                self._safe_shutdown(time_s, "bath level below minimum (leak)")
            elif "flow" in critical:
                mitigated = self._pump_failover(time_s, "loss of circulation flow")
                if not mitigated:
                    self._safe_shutdown(time_s, "flow lost, no standby pump left")
            else:
                # Coolant or component temperature at trip: shed load and
                # buy margin; only give up when the ladder is exhausted.
                source = ", ".join(sorted(critical)) or "temperature"
                fell_back = self._chiller_fallback(time_s, f"{source} at trip")
                throttled = self._throttle(time_s, f"{source} at trip")
                mitigated = fell_back or throttled
                if not mitigated:
                    self._safe_shutdown(
                        time_s, f"{source} at trip with mitigations exhausted"
                    )
            if self._state is SupervisorState.SAFE_SHUTDOWN:
                return replace(
                    self._shutdown_decision(alarms),
                    new_actions=tuple(self._actions[actions_before:]),
                )
            # A mitigation substituted for the trip: clear the latch and
            # keep (or restore) circulation.
            self.controller.reset()
            speed = self.controller.nominal_pump_speed
            setpoint = self._chiller_setpoint_c
        else:
            # Pre-emptive mitigation on warnings, before anything trips.
            warn = {
                a.source for a in action.alarms if a.severity is AlarmSeverity.WARNING
            }
            component_warn = sorted(warn - _PLANT_SOURCES)
            if component_warn:
                self._throttle(time_s, f"{', '.join(component_warn)} high")
            if "coolant" in warn:
                self._chiller_fallback(time_s, "coolant high")
            setpoint = min(setpoint, self._chiller_setpoint_c)

        if self._active_pump == self.standby_pump:
            speed = min(speed, self.standby_speed_fraction)

        return SupervisorDecision(
            state=self._state,
            alarms=alarms,
            pump_speed_fraction=speed,
            active_pump=self._active_pump,
            utilization=self._utilization,
            chiller_setpoint_c=setpoint,
            shutdown=False,
            new_actions=tuple(self._actions[actions_before:]),
        )


__all__ = [
    "RecoveryAction",
    "Supervisor",
    "SupervisorDecision",
    "SupervisorState",
]
