"""Water/propylene-glycol mixtures for the primary (rack) loop.

Section 4 allows "water, antifreeze, etc." as the primary heat-transfer
agent. The fixed :data:`repro.fluids.library.GLYCOL30` entry covers the
common 30 % blend; this module generates a :class:`~repro.fluids.properties.Fluid`
for *any* glycol mass fraction, interpolating the property fits between
pure water and a 60 % blend, and exposes the freeze-protection curve the
blend is chosen by.

The interpolation is engineering-grade (linear in mass fraction for
density/heat/conductivity, log-linear for viscosity), which matches
handbook tables to a few percent over 0-60 % and 0-90 degrees Celsius.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fluids.library import WATER
from repro.fluids.properties import Fluid, PropertyModel

#: Highest glycol mass fraction the fits cover.
MAX_GLYCOL_FRACTION = 0.6

#: Property anchors for a 60 % propylene-glycol blend (handbook class).
_G60_DENSITY = (1053.0, -0.45, -0.0015)
_G60_CP = (3280.0, 3.4)
_G60_K = (0.30, 0.0006)
_G60_MU_A = 1.1e-6
_G60_MU_B = 2850.0


def freeze_point_c(glycol_fraction: float) -> float:
    """Freezing point of the blend, Celsius.

    Quadratic fit to the propylene-glycol freeze curve: 0 % -> 0 C,
    30 % -> about -14 C, 60 % -> about -48 C.
    """
    _check_fraction(glycol_fraction)
    return -(28.0 * glycol_fraction + 75.0 * glycol_fraction ** 2)


def fraction_for_freeze_protection(required_c: float) -> float:
    """Smallest glycol fraction protecting down to ``required_c``.

    Inverts :func:`freeze_point_c`; raises if no fraction up to 60 %
    suffices (glycol systems are not specified below roughly -45 C).
    """
    if required_c >= 0.0:
        return 0.0
    # Solve 75 x^2 + 28 x + required = 0 for the positive root.
    disc = 28.0 ** 2 - 4.0 * 75.0 * required_c
    x = (-28.0 + math.sqrt(disc)) / (2.0 * 75.0)
    if x > MAX_GLYCOL_FRACTION:
        raise ValueError(
            f"freeze protection to {required_c:.0f} C needs a glycol fraction "
            f"of {x:.2f}, beyond the {MAX_GLYCOL_FRACTION:.0%} validity limit"
        )
    return x


@dataclass(frozen=True)
class _Interpolated(PropertyModel):
    """Linear blend of two property models in glycol mass fraction."""

    water_model: PropertyModel
    g60_poly: tuple
    fraction: float

    def __call__(self, temperature_c: float) -> float:
        water = self.water_model(temperature_c)
        g60 = 0.0
        power = 1.0
        for c in self.g60_poly:
            g60 += c * power
            power *= temperature_c
        w = self.fraction / MAX_GLYCOL_FRACTION
        return (1.0 - w) * water + w * g60


@dataclass(frozen=True)
class _LogViscosity(PropertyModel):
    """Log-linear viscosity blend (viscosity mixes geometrically)."""

    water_model: PropertyModel
    fraction: float

    def __call__(self, temperature_c: float) -> float:
        water = self.water_model(temperature_c)
        t_k = temperature_c + 273.15
        g60 = _G60_MU_A * math.exp(_G60_MU_B / t_k)
        w = self.fraction / MAX_GLYCOL_FRACTION
        return math.exp((1.0 - w) * math.log(water) + w * math.log(g60))


def glycol_mixture(glycol_fraction: float) -> Fluid:
    """Build a Fluid for a propylene-glycol/water blend.

    Parameters
    ----------
    glycol_fraction:
        Glycol mass fraction, 0 (pure water) to 0.6.
    """
    _check_fraction(glycol_fraction)
    if glycol_fraction == 0.0:
        return WATER
    return Fluid(
        name=f"glycol{glycol_fraction * 100:.0f}",
        density_model=_Interpolated(WATER.density_model, _G60_DENSITY, glycol_fraction),
        specific_heat_model=_Interpolated(WATER.specific_heat_model, _G60_CP, glycol_fraction),
        conductivity_model=_Interpolated(WATER.conductivity_model, _G60_K, glycol_fraction),
        viscosity_model=_LogViscosity(WATER.viscosity_model, glycol_fraction),
        dielectric=False,
        dielectric_strength_kv_mm=0.0,
        cost_usd_per_litre=0.5 + 5.0 * glycol_fraction,
        t_min_c=max(freeze_point_c(glycol_fraction) + 2.0, -45.0),
        t_max_c=99.0,
        notes=(
            f"{glycol_fraction:.0%} propylene glycol; freeze point "
            f"{freeze_point_c(glycol_fraction):.0f} C"
        ),
    )


def _check_fraction(glycol_fraction: float) -> None:
    if not 0.0 <= glycol_fraction <= MAX_GLYCOL_FRACTION:
        raise ValueError(
            f"glycol fraction must be within [0, {MAX_GLYCOL_FRACTION}], "
            f"got {glycol_fraction}"
        )


__all__ = [
    "MAX_GLYCOL_FRACTION",
    "fraction_for_freeze_protection",
    "freeze_point_c",
    "glycol_mixture",
]
