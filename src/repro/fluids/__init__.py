"""Fluid property substrate.

Temperature-dependent thermophysical property models for the heat-transfer
agents discussed in the paper: air (the legacy cooling medium), water and
water/glycol (closed-loop liquid cooling), and dielectric liquids — above all
the mineral oil MD-4.5 used as the secondary heat-transfer agent in the SKAT
immersion cooling system.

Public API
----------
``Fluid``
    A named fluid with callable property models.
``PropertyModel`` and concrete models (``Constant``, ``Polynomial``,
``Andrade``, ``Sutherland``)
    Building blocks for temperature-dependent properties.
``AIR``, ``WATER``, ``GLYCOL30``, ``MINERAL_OIL_MD45``, ``SYNTHETIC_ESTER``
    The fluid library.
``mouromtseff_number``
    Coolant figure of merit used by the design-rule checks.
"""

from repro.fluids.properties import (
    Andrade,
    Constant,
    Fluid,
    Polynomial,
    PropertyModel,
    Sutherland,
    CELSIUS_TO_KELVIN,
)
from repro.fluids.ageing import OilAgeing, aged_fluid, hours_until_rules_fail
from repro.fluids.mixtures import (
    fraction_for_freeze_protection,
    freeze_point_c,
    glycol_mixture,
)
from repro.fluids.library import (
    AIR,
    GLYCOL30,
    MINERAL_OIL_MD45,
    SYNTHETIC_ESTER,
    WATER,
    all_fluids,
    coolant_comparison_table,
    mouromtseff_number,
)

__all__ = [
    "AIR",
    "Andrade",
    "CELSIUS_TO_KELVIN",
    "Constant",
    "Fluid",
    "GLYCOL30",
    "MINERAL_OIL_MD45",
    "Polynomial",
    "PropertyModel",
    "SYNTHETIC_ESTER",
    "Sutherland",
    "WATER",
    "OilAgeing",
    "aged_fluid",
    "all_fluids",
    "coolant_comparison_table",
    "fraction_for_freeze_protection",
    "freeze_point_c",
    "glycol_mixture",
    "hours_until_rules_fail",
    "mouromtseff_number",
]
