"""Temperature-dependent thermophysical property models.

All temperatures at the public API are in degrees Celsius (the paper quotes
every temperature in Celsius); models that are physically formulated on the
absolute scale convert internally.

Units are SI throughout:

===================  =========
density              kg/m^3
specific heat        J/(kg K)
thermal conductivity W/(m K)
dynamic viscosity    Pa s
===================  =========
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

CELSIUS_TO_KELVIN = 273.15


class PropertyModel:
    """Base class for a scalar property as a function of temperature.

    Subclasses implement :meth:`__call__` taking a temperature in Celsius
    and returning the property value in SI units.
    """

    def __call__(self, temperature_c: float) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class Constant(PropertyModel):
    """A property that does not vary with temperature.

    Parameters
    ----------
    value:
        The property value (SI units).
    """

    value: float

    def __call__(self, temperature_c: float) -> float:
        return self.value


@dataclass(frozen=True)
class Polynomial(PropertyModel):
    """Polynomial in Celsius temperature: ``sum(c[i] * T**i)``.

    Coefficients are given lowest order first, i.e. ``coefficients[0]`` is
    the value at 0 degrees Celsius.
    """

    coefficients: Sequence[float]

    def __call__(self, temperature_c: float) -> float:
        result = 0.0
        power = 1.0
        for coefficient in self.coefficients:
            result += coefficient * power
            power *= temperature_c
        return result


@dataclass(frozen=True)
class Andrade(PropertyModel):
    """Andrade (Vogel-type) viscosity model ``mu = a * exp(b / (T_K - c))``.

    The standard model for liquid viscosity, which falls steeply with
    temperature — the dominant temperature effect for mineral oil, where
    viscosity roughly halves for every 15–20 degrees Celsius of warming.

    Parameters
    ----------
    a:
        Pre-exponential factor, Pa s.
    b:
        Activation temperature, K.
    c:
        Vogel offset, K (0 recovers the pure Andrade form).
    """

    a: float
    b: float
    c: float = 0.0

    def __call__(self, temperature_c: float) -> float:
        temperature_k = temperature_c + CELSIUS_TO_KELVIN
        return self.a * math.exp(self.b / (temperature_k - self.c))


@dataclass(frozen=True)
class Sutherland(PropertyModel):
    """Sutherland's law for gas viscosity.

    ``mu = mu_ref * (T/T_ref)^1.5 * (T_ref + S) / (T + S)`` with absolute
    temperatures. Standard for air over the range relevant to electronics
    cooling.
    """

    mu_ref: float
    t_ref_k: float
    s: float

    def __call__(self, temperature_c: float) -> float:
        temperature_k = temperature_c + CELSIUS_TO_KELVIN
        ratio = temperature_k / self.t_ref_k
        return self.mu_ref * ratio ** 1.5 * (self.t_ref_k + self.s) / (temperature_k + self.s)


@dataclass(frozen=True)
class IdealGasDensity(PropertyModel):
    """Ideal-gas density ``rho = p / (R_specific * T_K)`` at fixed pressure.

    Parameters
    ----------
    pressure_pa:
        Absolute pressure, Pa.
    specific_gas_constant:
        J/(kg K); 287.05 for dry air.
    """

    pressure_pa: float = 101325.0
    specific_gas_constant: float = 287.05

    def __call__(self, temperature_c: float) -> float:
        temperature_k = temperature_c + CELSIUS_TO_KELVIN
        return self.pressure_pa / (self.specific_gas_constant * temperature_k)


@dataclass(frozen=True)
class Fluid:
    """A heat-transfer agent with temperature-dependent properties.

    The paper's selection criteria for the immersion heat-transfer agent
    (Section 2) ask for "the best possible dielectric strength, high heat
    transfer capacity, the maximum possible heat capacity, and low
    viscosity"; the attributes here carry exactly those quantities so the
    design rules in :mod:`repro.core.designrules` can be executed.

    Parameters
    ----------
    name:
        Human-readable fluid name.
    density_model, specific_heat_model, conductivity_model, viscosity_model:
        Property models (see :class:`PropertyModel`).
    dielectric:
        True when the fluid is electrically non-conducting and may contact
        live electronics (mineral oil, esters); False for water/glycol,
        whose leakage "can be fatal for both separate electronic components
        and the whole computer system" (Section 2).
    dielectric_strength_kv_mm:
        Breakdown field strength, kV/mm (0 for conducting fluids).
    flash_point_c:
        Flash point for fire-safety checks; ``math.inf`` for nonflammable.
    pour_point_c:
        Lowest temperature at which the fluid still flows.
    cost_usd_per_litre:
        Rough unit cost, used by the design-rule "reasonable cost" check.
    t_min_c, t_max_c:
        Validity range of the property fits.
    """

    name: str
    density_model: PropertyModel
    specific_heat_model: PropertyModel
    conductivity_model: PropertyModel
    viscosity_model: PropertyModel
    dielectric: bool
    dielectric_strength_kv_mm: float = 0.0
    flash_point_c: float = math.inf
    pour_point_c: float = -273.15
    cost_usd_per_litre: float = 0.0
    t_min_c: float = -20.0
    t_max_c: float = 150.0
    notes: str = field(default="", compare=False)

    def _check_range(self, temperature_c: float) -> None:
        if not (self.t_min_c <= temperature_c <= self.t_max_c):
            raise ValueError(
                f"{self.name}: temperature {temperature_c:.1f} C outside the "
                f"validity range [{self.t_min_c:.1f}, {self.t_max_c:.1f}] C"
            )

    def density(self, temperature_c: float) -> float:
        """Mass density, kg/m^3."""
        self._check_range(temperature_c)
        return self.density_model(temperature_c)

    def specific_heat(self, temperature_c: float) -> float:
        """Isobaric specific heat capacity, J/(kg K)."""
        self._check_range(temperature_c)
        return self.specific_heat_model(temperature_c)

    def conductivity(self, temperature_c: float) -> float:
        """Thermal conductivity, W/(m K)."""
        self._check_range(temperature_c)
        return self.conductivity_model(temperature_c)

    def viscosity(self, temperature_c: float) -> float:
        """Dynamic viscosity, Pa s."""
        self._check_range(temperature_c)
        return self.viscosity_model(temperature_c)

    def kinematic_viscosity(self, temperature_c: float) -> float:
        """Kinematic viscosity ``nu = mu / rho``, m^2/s."""
        return self.viscosity(temperature_c) / self.density(temperature_c)

    def prandtl(self, temperature_c: float) -> float:
        """Prandtl number ``Pr = mu * cp / k`` (dimensionless)."""
        return (
            self.viscosity(temperature_c)
            * self.specific_heat(temperature_c)
            / self.conductivity(temperature_c)
        )

    def volumetric_heat_capacity(self, temperature_c: float) -> float:
        """``rho * cp``, J/(m^3 K) — the paper's "heat capacity of liquids
        ... better than that of air (from 1500 to 4000 times)" compares
        exactly this quantity."""
        return self.density(temperature_c) * self.specific_heat(temperature_c)

    def thermal_diffusivity(self, temperature_c: float) -> float:
        """``alpha = k / (rho * cp)``, m^2/s."""
        return self.conductivity(temperature_c) / self.volumetric_heat_capacity(temperature_c)

    def volume_flow_for_heat(
        self, heat_w: float, delta_t_k: float, temperature_c: float
    ) -> float:
        """Volumetric flow (m^3/s) needed to absorb ``heat_w`` with a coolant
        temperature rise of ``delta_t_k``.

        This is the arithmetic behind the paper's "to cool one modern FPGA
        chip, 1 m^3 of air or 0.00025 m^3 (250 ml) of water per minute is
        required".
        """
        if heat_w < 0:
            raise ValueError("heat_w must be non-negative")
        if delta_t_k <= 0:
            raise ValueError("delta_t_k must be positive")
        return heat_w / (self.volumetric_heat_capacity(temperature_c) * delta_t_k)

    def heat_capacity_rate(
        self, volume_flow_m3_s: float, temperature_c: float
    ) -> float:
        """Capacity rate ``C = rho * V_dot * cp``, W/K (used by e-NTU)."""
        return self.volumetric_heat_capacity(temperature_c) * volume_flow_m3_s


__all__ = [
    "Andrade",
    "CELSIUS_TO_KELVIN",
    "Constant",
    "Fluid",
    "IdealGasDensity",
    "Polynomial",
    "PropertyModel",
    "Sutherland",
]
