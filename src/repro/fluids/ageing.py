"""Oil ageing: parameter drift over service and the filtration answer.

Among the paper's coolant criteria is "stability of the main parameters".
Mineral oil in a hot bath oxidizes: viscosity creeps up, the dielectric
strength decays as moisture and particulates accumulate, and acidity
rises. This module models those drifts (standard lubricant-ageing forms),
the filtration/drying maintenance that arrests them, and the re-check of
the Section 2 coolant rules over the service life.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.fluids.properties import Fluid, PropertyModel

#: Arrhenius-style doubling of oxidation rate per this many kelvin.
OXIDATION_DOUBLING_K = 10.0
#: Reference bath temperature for the nominal ageing rates.
REFERENCE_BATH_C = 30.0


@dataclass(frozen=True)
class OilAgeing:
    """Ageing state model for a dielectric bath oil.

    Parameters
    ----------
    viscosity_growth_per_khour:
        Fractional viscosity increase per 1000 h at the reference bath
        temperature (oxidative thickening).
    dielectric_decay_per_khour:
        Fractional dielectric-strength loss per 1000 h at reference
        (moisture/particulate ingress), arrested by filtration.
    filterable_fraction:
        Share of the accumulated degradation that a filtration/drying pass
        removes (particulates and water yes; oxidized molecules no).
    """

    viscosity_growth_per_khour: float = 0.01
    dielectric_decay_per_khour: float = 0.02
    filterable_fraction: float = 0.7

    def __post_init__(self) -> None:
        if self.viscosity_growth_per_khour < 0 or self.dielectric_decay_per_khour < 0:
            raise ValueError("drift rates must be non-negative")
        if not 0.0 <= self.filterable_fraction <= 1.0:
            raise ValueError("filterable fraction must be within [0, 1]")

    def acceleration(self, bath_c: float) -> float:
        """Oxidation-rate multiplier vs the reference bath temperature."""
        return 2.0 ** ((bath_c - REFERENCE_BATH_C) / OXIDATION_DOUBLING_K)

    def effective_hours(
        self, hours: float, bath_c: float, filtration_interval_h: float = math.inf
    ) -> float:
        """Degradation-equivalent hours after temperature acceleration and
        periodic filtration.

        Filtration removes ``filterable_fraction`` of the *accumulated*
        degradation each interval, so with regular service the equivalent
        age saturates instead of growing linearly.
        """
        if hours < 0:
            raise ValueError("service time must be non-negative")
        accelerated = hours * self.acceleration(bath_c)
        if math.isinf(filtration_interval_h):
            return accelerated
        if filtration_interval_h <= 0:
            raise ValueError("filtration interval must be positive")
        interval = filtration_interval_h * self.acceleration(bath_c)
        keep = 1.0 - self.filterable_fraction
        # Geometric accumulation over whole intervals plus the tail.
        n_intervals = int(accelerated // interval)
        residual = accelerated - n_intervals * interval
        if keep == 1.0 or n_intervals == 0:
            carried = n_intervals * interval * keep if keep < 1.0 else n_intervals * interval
        else:
            carried = interval * keep * (1.0 - keep ** n_intervals) / (1.0 - keep)
        return carried + residual

    def viscosity_multiplier(self, effective_hours: float) -> float:
        """Viscosity growth factor at an equivalent age."""
        return 1.0 + self.viscosity_growth_per_khour * effective_hours / 1000.0

    def dielectric_multiplier(self, effective_hours: float) -> float:
        """Dielectric-strength retention factor (decays toward 0.3 floor)."""
        decay = self.dielectric_decay_per_khour * effective_hours / 1000.0
        return max(1.0 - decay, 0.3)


@dataclass(frozen=True)
class _ScaledViscosity(PropertyModel):
    base: PropertyModel
    factor: float

    def __call__(self, temperature_c: float) -> float:
        return self.factor * self.base(temperature_c)


def aged_fluid(
    fluid: Fluid,
    hours: float,
    bath_c: float = REFERENCE_BATH_C,
    ageing: OilAgeing = OilAgeing(),
    filtration_interval_h: float = math.inf,
) -> Fluid:
    """A copy of the fluid with its parameters drifted by service.

    The returned fluid plugs into every model the fresh one does, so the
    life-of-machine question is one call: re-run the coolant rules or the
    module solve with the aged oil.
    """
    effective = ageing.effective_hours(hours, bath_c, filtration_interval_h)
    visc_factor = ageing.viscosity_multiplier(effective)
    diel_factor = ageing.dielectric_multiplier(effective)
    return replace(
        fluid,
        name=f"{fluid.name}_aged{hours:.0f}h",
        viscosity_model=_ScaledViscosity(fluid.viscosity_model, visc_factor),
        dielectric_strength_kv_mm=fluid.dielectric_strength_kv_mm * diel_factor,
        notes=f"{fluid.notes} [aged {hours:.0f} h at {bath_c:.0f} C]",
    )


def hours_until_rules_fail(
    fluid: Fluid,
    bath_c: float = REFERENCE_BATH_C,
    ageing: OilAgeing = OilAgeing(),
    filtration_interval_h: float = math.inf,
    horizon_h: float = 2.0e5,
    step_h: float = 2000.0,
) -> float:
    """First service time at which the Section 2 coolant rules fail.

    Returns ``math.inf`` when the oil passes through the whole horizon
    (the regular-filtration case should).
    """
    from repro.core.designrules import coolant_rules, review

    t = 0.0
    while t <= horizon_h:
        aged = aged_fluid(fluid, t, bath_c, ageing, filtration_interval_h)
        if not review(coolant_rules(aged, operating_c=bath_c)):
            return t
        t += step_h
    return math.inf


__all__ = [
    "OXIDATION_DOUBLING_K",
    "OilAgeing",
    "REFERENCE_BATH_C",
    "aged_fluid",
    "hours_until_rules_fail",
]
