"""The fluid library: the concrete heat-transfer agents of the paper.

Section 2 of the paper compares air against liquid heat-transfer agents
(water for closed-loop systems, dielectric liquids — "as a rule ... a white
mineral oil" — for open-loop immersion systems) and Section 4 names the
secondary agent of the SKAT rack loop explicitly: oil MD-4.5.

Property fits are standard engineering correlations valid over the
electronics-cooling range (roughly 0–100 degrees Celsius); sources are the
usual handbook values (Incropera/VDI for air and water, transformer-oil
class data for the mineral oil).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.fluids.properties import (
    Andrade,
    Fluid,
    IdealGasDensity,
    Polynomial,
    Sutherland,
)

#: Dry air at atmospheric pressure — the legacy cooling medium whose limits
#: (Section 1) motivate the whole paper.
AIR = Fluid(
    name="air",
    density_model=IdealGasDensity(pressure_pa=101325.0),
    specific_heat_model=Polynomial((1006.0, 0.02)),
    conductivity_model=Polynomial((0.0243, 7.0e-5)),
    viscosity_model=Sutherland(mu_ref=1.716e-5, t_ref_k=273.15, s=110.4),
    dielectric=True,  # air does not short circuits, but it also barely cools
    dielectric_strength_kv_mm=3.0,
    cost_usd_per_litre=0.0,
    t_min_c=-50.0,
    t_max_c=300.0,
    notes="Legacy cooling medium; heat capacity per volume ~3500x below water.",
)

#: Liquid water — the closed-loop (cold plate) heat-transfer agent and the
#: primary agent of the SKAT rack loop (chilled water).
WATER = Fluid(
    name="water",
    density_model=Polynomial((999.8, -0.03, -0.004)),
    specific_heat_model=Polynomial((4217.0, -2.75, 0.043)),
    conductivity_model=Polynomial((0.561, 0.002, -7.5e-6)),
    # Vogel fit: mu = 2.414e-5 * 10^(247.8/(T_K - 140))
    viscosity_model=Andrade(a=2.414e-5, b=247.8 * math.log(10.0), c=140.0),
    dielectric=False,
    dielectric_strength_kv_mm=0.0,
    cost_usd_per_litre=0.001,
    t_min_c=0.5,
    t_max_c=99.0,
    notes="Electrically conducting: leaks are fatal to immersed electronics.",
)

#: 30 % propylene glycol in water — the freeze-protected closed-loop variant
#: ("water or glycol solutions", Section 2).
GLYCOL30 = Fluid(
    name="glycol30",
    density_model=Polynomial((1030.0, -0.38, -0.0015)),
    specific_heat_model=Polynomial((3780.0, 2.2)),
    conductivity_model=Polynomial((0.42, 0.0009)),
    viscosity_model=Andrade(a=3.0e-6, b=2004.0),
    dielectric=False,
    dielectric_strength_kv_mm=0.0,
    cost_usd_per_litre=2.0,
    t_min_c=-15.0,
    t_max_c=99.0,
    notes="Antifreeze option for the primary loop of the rack heat-exchange system.",
)

#: Mineral oil MD-4.5 — the paper's secondary heat-transfer agent for the
#: immersion bath (Section 4, Fig. 5 description). White-mineral-oil /
#: transformer-oil class properties.
MINERAL_OIL_MD45 = Fluid(
    name="mineral_oil_md45",
    density_model=Polynomial((870.0, -0.64)),
    specific_heat_model=Polynomial((1860.0, 4.0)),
    conductivity_model=Polynomial((0.134, -7.0e-5)),
    viscosity_model=Andrade(a=2.36e-6, b=1326.0, c=150.0),
    dielectric=True,
    dielectric_strength_kv_mm=14.0,
    flash_point_c=180.0,
    pour_point_c=-45.0,
    cost_usd_per_litre=8.0,
    t_min_c=-20.0,
    t_max_c=160.0,
    notes="The SKAT immersion coolant: dielectric, cheap, moderate viscosity.",
)

#: A synthetic dielectric ester — the expensive single-vendor coolant the
#: paper criticises in the IMMERS systems ("high cost of the cooling liquid,
#: produced by only one manufacturer").
SYNTHETIC_ESTER = Fluid(
    name="synthetic_ester",
    density_model=Polynomial((970.0, -0.7)),
    specific_heat_model=Polynomial((1880.0, 2.3)),
    conductivity_model=Polynomial((0.144, -5.0e-5)),
    viscosity_model=Andrade(a=7.96e-6, b=1326.0, c=150.0),
    dielectric=True,
    dielectric_strength_kv_mm=20.0,
    flash_point_c=260.0,
    pour_point_c=-56.0,
    cost_usd_per_litre=25.0,
    t_min_c=-30.0,
    t_max_c=150.0,
    notes="Single-vendor coolant of the IMMERS-class systems; 3x the oil cost.",
)


def all_fluids() -> List[Fluid]:
    """Every fluid in the library, air first."""
    return [AIR, WATER, GLYCOL30, MINERAL_OIL_MD45, SYNTHETIC_ESTER]


def mouromtseff_number(fluid: Fluid, temperature_c: float) -> float:
    """Mouromtseff figure of merit for turbulent internal forced convection.

    ``Mo = rho^0.8 * k^0.6 * cp^0.4 / mu^0.4`` — higher is better. This is
    the standard single-number ranking of heat-transfer agents and is what
    the paper's qualitative criteria ("high heat transfer capacity, the
    maximum possible heat capacity, and low viscosity") reduce to.
    """
    rho = fluid.density(temperature_c)
    k = fluid.conductivity(temperature_c)
    cp = fluid.specific_heat(temperature_c)
    mu = fluid.viscosity(temperature_c)
    return rho ** 0.8 * k ** 0.6 * cp ** 0.4 / mu ** 0.4


def coolant_comparison_table(temperature_c: float = 30.0) -> List[Dict[str, float]]:
    """Property table for all library fluids, with ratios relative to air.

    Regenerates the raw material of the paper's Section 2 comparison: the
    volumetric heat capacity advantage of liquids over air ("from 1500 to
    4000 times") and the figure-of-merit ordering that justifies immersion
    in mineral oil.

    Returns one row per fluid with keys ``name``, ``density``, ``cp``,
    ``conductivity``, ``viscosity``, ``prandtl``,
    ``volumetric_heat_capacity``, ``heat_capacity_ratio_vs_air``,
    ``mouromtseff`` and ``mouromtseff_ratio_vs_air``.
    """
    air_vhc = AIR.volumetric_heat_capacity(temperature_c)
    air_mo = mouromtseff_number(AIR, temperature_c)
    rows: List[Dict[str, float]] = []
    for fluid in all_fluids():
        vhc = fluid.volumetric_heat_capacity(temperature_c)
        mo = mouromtseff_number(fluid, temperature_c)
        rows.append(
            {
                "name": fluid.name,
                "density": fluid.density(temperature_c),
                "cp": fluid.specific_heat(temperature_c),
                "conductivity": fluid.conductivity(temperature_c),
                "viscosity": fluid.viscosity(temperature_c),
                "prandtl": fluid.prandtl(temperature_c),
                "volumetric_heat_capacity": vhc,
                "heat_capacity_ratio_vs_air": vhc / air_vhc,
                "mouromtseff": mo,
                "mouromtseff_ratio_vs_air": mo / air_mo,
            }
        )
    return rows


__all__ = [
    "AIR",
    "GLYCOL30",
    "MINERAL_OIL_MD45",
    "SYNTHETIC_ESTER",
    "WATER",
    "all_fluids",
    "coolant_comparison_table",
    "mouromtseff_number",
]
