"""Darcy friction-factor correlations for pipe flow.

The pressure drop along every pipe in the rack loop is
``dp = f (L/D) (rho V^2 / 2)`` with the Darcy friction factor ``f``
depending on the Reynolds number and relative roughness. Mineral oil MD-4.5
at bath temperature is viscous enough that parts of the CM loop run laminar
while the chilled-water rack loop runs turbulent, so the correlations must
cover both regimes smoothly — we use Churchill's all-regime equation as the
default.
"""

from __future__ import annotations

import math


def laminar(re: float) -> float:
    """Laminar (Hagen-Poiseuille) friction factor ``f = 64/Re``."""
    if re <= 0:
        raise ValueError("Reynolds number must be positive")
    return 64.0 / re


def swamee_jain(re: float, relative_roughness: float) -> float:
    """Swamee-Jain explicit approximation to Colebrook for turbulent flow.

    Valid for 5e3 < Re < 1e8 and 1e-6 < eps/D < 1e-2.
    """
    if re < 4000.0:
        raise ValueError("Swamee-Jain requires turbulent flow (Re >= 4000)")
    if relative_roughness < 0:
        raise ValueError("relative roughness must be non-negative")
    term = relative_roughness / 3.7 + 5.74 / re ** 0.9
    return 0.25 / math.log10(term) ** 2


def churchill(re: float, relative_roughness: float) -> float:
    """Churchill's all-regime friction-factor equation.

    Smoothly spans laminar, transitional and turbulent flow, which keeps the
    network solver's residuals continuous as flows redistribute through the
    transition region (e.g. during loop-failure experiments).
    """
    if re <= 0:
        raise ValueError("Reynolds number must be positive")
    if relative_roughness < 0:
        raise ValueError("relative roughness must be non-negative")
    if re < 100.0:
        # Deep laminar: Churchill reduces to 64/Re, and evaluating the
        # full expression there overflows the float range.
        return 64.0 / re
    a = (2.457 * math.log(1.0 / ((7.0 / re) ** 0.9 + 0.27 * relative_roughness))) ** 16
    b = (37530.0 / re) ** 16
    return 8.0 * ((8.0 / re) ** 12 + 1.0 / (a + b) ** 1.5) ** (1.0 / 12.0)


def friction_factor(re: float, relative_roughness: float = 0.0) -> float:
    """Default friction factor: Churchill for any positive Reynolds number.

    Returns 0 for Re == 0 (no flow, no loss) so the solver can evaluate the
    zero-flow state.
    """
    if re == 0:
        return 0.0
    return churchill(re, relative_roughness)


__all__ = ["churchill", "friction_factor", "laminar", "swamee_jain"]
