"""Incompressible flow-network substrate.

The rack-level heat-exchange system of the paper (Fig. 5) is a hydraulic
network: a pump, supply and return manifolds, one circulation loop per
computational module, and a chiller. Whether the loops receive equal flow —
and what happens when one loop is shut for servicing — is decided purely by
this network's pressure/flow solution, which is what this package computes.

- :mod:`repro.hydraulics.friction` — Darcy friction-factor correlations.
- :mod:`repro.hydraulics.elements` — pipes, fittings, valves, pumps,
  heat-exchanger passages.
- :mod:`repro.hydraulics.network` — the network container.
- :mod:`repro.hydraulics.solver` — nodal Newton solver (fast path +
  robust fallback) and single-loop operating-point helpers.
- :mod:`repro.hydraulics.cache` — solution cache and solver counters
  behind the warm-started fast path.
"""

from repro.hydraulics.elements import (
    CheckValve,
    HeatExchangerPassage,
    HydraulicElement,
    MinorLoss,
    Pipe,
    Pump,
    PumpCurve,
    Valve,
)
from repro.hydraulics.cache import SolutionCache, SolverCounters, network_state_key
from repro.hydraulics.network import HydraulicNetwork, HydraulicsError
from repro.hydraulics.solver import (
    NetworkSolver,
    SolveResult,
    junction_residuals,
    operating_point,
    solve_network,
    solve_network_robust,
)
from repro.hydraulics.curves import (
    CatalogPump,
    fit_pump_curve,
    npsh_available_m,
    select_pump,
    speed_for_duty,
)
from repro.hydraulics.transient import (
    LoopTransient,
    coast_down,
    loop_inertance,
    spin_up,
)
from repro.hydraulics import friction

__all__ = [
    "CatalogPump",
    "CheckValve",
    "HeatExchangerPassage",
    "HydraulicElement",
    "HydraulicNetwork",
    "HydraulicsError",
    "LoopTransient",
    "MinorLoss",
    "NetworkSolver",
    "Pipe",
    "Pump",
    "PumpCurve",
    "SolutionCache",
    "SolveResult",
    "SolverCounters",
    "Valve",
    "coast_down",
    "fit_pump_curve",
    "friction",
    "junction_residuals",
    "loop_inertance",
    "network_state_key",
    "npsh_available_m",
    "select_pump",
    "speed_for_duty",
    "operating_point",
    "solve_network",
    "solve_network_robust",
    "spin_up",
]
