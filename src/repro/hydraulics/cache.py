"""Solution caching and instrumentation for the hydraulic fast path.

The balancing and transient experiments re-solve the same small networks
thousands of times with only a handful of distinct operating states (valve
positions, pump speeds, fluid temperature). This module provides the three
pieces the fast path needs:

- :class:`SolverCounters` — lightweight counters (solve calls, Newton
  residual evaluations, cache hits, scalar fallbacks) that the simulators
  surface through :class:`repro.control.monitor.TelemetryLog`;
- :func:`network_state_key` — a hashable fingerprint of (topology, element
  states, fluid, temperature bucket) under which a converged solution may
  be replayed exactly;
- :class:`SolutionCache` — a bounded LRU of converged
  :class:`~repro.hydraulics.solver.SolveResult` objects.

Temperatures are bucketed (default 0.25 C) before entering the key: fluid
properties drift far less than the solver tolerance across a bucket, and
bucketing is what lets a quasi-static transient — whose bath temperature
creeps a few millikelvin per step — hit the cache at all. The *solution*
stored is the one converged at the first temperature seen in the bucket.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.fluids.properties import Fluid
from repro.hydraulics.network import HydraulicNetwork

#: Default temperature bucket width for cache keys, Celsius.
DEFAULT_TEMPERATURE_BUCKET_C = 0.25


@dataclass
class SolverCounters:
    """Counters for one solver's (or simulator's) lifetime.

    Attributes
    ----------
    solves:
        Total :meth:`~repro.hydraulics.solver.NetworkSolver.solve` calls.
    cache_hits, cache_misses:
        Solution-cache outcomes (hits skip the Newton solve entirely).
    warm_starts, cold_starts:
        Newton solves started from a previous pressure field vs from zero.
    residual_evaluations:
        Residual-function evaluations across all Newton solves (the
        dominant cost; scipy's ``nfev``).
    fast_path_solves:
        Solves completed by the vectorized/analytic-inversion path.
    scalar_fallbacks:
        Solves that dropped back to the bracketed scalar formulation.
    bracket_inversions:
        Per-branch bracketed (brentq) flow inversions performed.
    """

    solves: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    warm_starts: int = 0
    cold_starts: int = 0
    residual_evaluations: int = 0
    fast_path_solves: int = 0
    scalar_fallbacks: int = 0
    bracket_inversions: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Counter values keyed by name (telemetry-friendly)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def hit_rate(self) -> float:
        """Cache hits per solve (0 when nothing was solved)."""
        if self.solves == 0:
            return 0.0
        return self.cache_hits / self.solves

    def publish(self, registry: Any = None, prefix: str = "hydraulics_") -> None:
        """Mirror the current values into a metrics registry as counters.

        With no explicit registry the process-wide one is used
        (:func:`repro.obs.get_registry`); under the default no-op registry
        this is a handful of no-op calls. :class:`NetworkSolver` publishes
        per-solve *deltas* automatically, so call this only for counters
        accumulated outside a solver (e.g. the stateless solve path).
        """
        from repro.obs import get_registry

        target = registry if registry is not None else get_registry()
        for name, value in self.as_dict().items():
            if value:
                target.inc(prefix + name, value)


def _freeze(value: Any) -> Hashable:
    """Reduce an element/field value to a hashable fingerprint."""
    if is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple((f.name, _freeze(getattr(value, f.name))) for f in fields(value)),
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (int, float, str, bool, type(None))):
        return value
    # Unhashable exotic objects fall back to identity: same object, same
    # key — conservative (a mutated object aliases), so element classes
    # used with the cache should be dataclasses.
    return id(value)


def element_state_key(element: Any) -> Hashable:
    """Fingerprint of one hydraulic element's full state."""
    return _freeze(element)


def temperature_bucket(
    temperature_c: float, bucket_c: float = DEFAULT_TEMPERATURE_BUCKET_C
) -> int:
    """The integer temperature bucket a cache key uses."""
    if bucket_c <= 0:
        raise ValueError("temperature bucket must be positive")
    return int(round(temperature_c / bucket_c))


def network_state_key(
    network: HydraulicNetwork,
    fluid: Fluid,
    temperature_c: float,
    bucket_c: float = DEFAULT_TEMPERATURE_BUCKET_C,
) -> Tuple[Hashable, ...]:
    """Hashable key identifying a network's exact solvable state.

    Covers topology (junctions, injections, reference), every branch's
    element state (valve openings, pump speeds, geometry), the fluid, and
    the bucketed temperature. Two states with equal keys have identical
    solutions up to the property drift within one temperature bucket.
    """
    junctions = tuple(
        (name, network.injection(name)) for name in network.junction_names
    )
    branches = tuple(
        (b.name, b.node_a, b.node_b, element_state_key(b.element))
        for b in network.branches
    )
    return (
        junctions,
        branches,
        network.reference,
        fluid.name,
        temperature_bucket(temperature_c, bucket_c),
    )


class SolutionCache:
    """A bounded LRU cache of converged network solutions.

    Values are stored and returned as-is; :class:`SolveResult` is a frozen
    dataclass whose consumers treat the flow/pressure mappings as
    read-only, so no defensive copying is done on the hot path.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize <= 0:
            raise ValueError("cache size must be positive")
        self.maxsize = maxsize
        self._store: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value for ``key`` (refreshing it), or None."""
        try:
            value = self._store[key]
        except KeyError:
            return None
        self._store.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert a value, evicting the least-recently-used beyond capacity."""
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self.maxsize:
            self._store.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached solution."""
        self._store.clear()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store


__all__ = [
    "DEFAULT_TEMPERATURE_BUCKET_C",
    "SolutionCache",
    "SolverCounters",
    "element_state_key",
    "network_state_key",
    "temperature_bucket",
]
