"""Pump-curve tooling: affinity scaling, curve fitting, duty selection.

Section 2 lists the pump selection criteria ("performance parameters ...
the pump must have the minimal permissible positive suction head"); this
module provides the working tools a cooling designer needs around the
:class:`~repro.hydraulics.elements.PumpCurve` model:

- fit a quadratic curve through vendor data points;
- apply the affinity laws for speed selection;
- compute NPSH margin against the oil's vapor characteristics;
- pick the smallest catalog pump meeting a duty point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.fluids.properties import Fluid
from repro.hydraulics.elements import PumpCurve


def fit_pump_curve(points: Sequence[Tuple[float, float]]) -> PumpCurve:
    """Least-squares fit of ``dp = dp0 (1 - (q/qmax)^2)`` through data.

    Parameters
    ----------
    points:
        ``(flow_m3_s, head_pa)`` pairs from a vendor datasheet; at least
        two distinct flows required.
    """
    if len(points) < 2:
        raise ValueError("need at least two curve points")
    flows = np.asarray([p[0] for p in points], dtype=float)
    heads = np.asarray([p[1] for p in points], dtype=float)
    if np.any(flows < 0) or np.any(heads < 0):
        raise ValueError("flows and heads must be non-negative")
    if np.allclose(flows, flows[0]):
        raise ValueError("curve points must span distinct flows")
    # Linear least squares in (dp0, c): head = dp0 - c q^2.
    a = np.column_stack([np.ones_like(flows), -flows ** 2])
    (dp0, c), *_ = np.linalg.lstsq(a, heads, rcond=None)
    if dp0 <= 0 or c <= 0:
        raise ValueError("data does not describe a falling quadratic curve")
    qmax = math.sqrt(dp0 / c)
    return PumpCurve(shutoff_pressure_pa=float(dp0), max_flow_m3_s=float(qmax))


def speed_for_duty(curve: PumpCurve, duty_flow_m3_s: float, duty_head_pa: float) -> float:
    """Affinity-law speed fraction putting the duty point on the curve.

    Solves ``s^2 head(q/s) = duty_head`` at ``q = duty_flow``:
    ``s^2 dp0 - dp0 (q/qmax)^2 = duty_head``. Returns the required speed
    fraction; raises if the duty is beyond the pump even at full speed.
    """
    if duty_flow_m3_s < 0 or duty_head_pa < 0:
        raise ValueError("duty point must be non-negative")
    ratio2 = (duty_flow_m3_s / curve.max_flow_m3_s) ** 2
    s2 = duty_head_pa / curve.shutoff_pressure_pa + ratio2
    speed = math.sqrt(s2)
    if speed > 1.0 + 1e-9:
        raise ValueError(
            f"duty ({duty_flow_m3_s * 1000:.2f} L/s at {duty_head_pa / 1000:.1f} kPa) "
            f"needs {speed:.2f}x rated speed"
        )
    return min(speed, 1.0)


def npsh_available_m(
    fluid: Fluid,
    temperature_c: float,
    static_head_m: float,
    suction_loss_pa: float,
    ambient_pressure_pa: float = 101325.0,
    vapor_pressure_pa: float = None,
) -> float:
    """Net positive suction head available at the pump inlet, metres.

    ``NPSHa = (p_ambient - p_vapor)/(rho g) + z_static - h_losses``.
    Mineral oil's negligible vapor pressure is why immersed pumps in the
    bath enjoy generous suction margins — part of the paper's case for
    them (Section 4, "increase the reliability of the liquid cooling
    system by means of immersed pumps").
    """
    rho = fluid.density(temperature_c)
    if vapor_pressure_pa is None:
        # Water: Antoine-class estimate; oils: effectively zero.
        if fluid.name == "water":
            t = temperature_c
            vapor_pressure_pa = 610.94 * math.exp(17.625 * t / (t + 243.04))
        else:
            vapor_pressure_pa = 10.0
    g = 9.81
    return (
        (ambient_pressure_pa - vapor_pressure_pa) / (rho * g)
        + static_head_m
        - suction_loss_pa / (rho * g)
    )


@dataclass(frozen=True)
class CatalogPump:
    """A catalog entry for pump selection."""

    model: str
    curve: PumpCurve
    npsh_required_m: float
    price_usd: float
    oil_rated: bool


def select_pump(
    catalog: List[CatalogPump],
    duty_flow_m3_s: float,
    duty_head_pa: float,
    npsh_available_m_value: float,
    require_oil_rating: bool = True,
) -> CatalogPump:
    """Pick the cheapest catalog pump satisfying the paper's criteria.

    A pump qualifies when (a) its full-speed curve clears the duty head at
    the duty flow, (b) its NPSH requirement fits the available suction
    head, and (c) it is rated for oil products when required.

    Raises
    ------
    ValueError
        If no catalog pump qualifies.
    """
    if not catalog:
        raise ValueError("empty pump catalog")
    qualifying = []
    for pump in catalog:
        if require_oil_rating and not pump.oil_rated:
            continue
        if pump.npsh_required_m > npsh_available_m_value:
            continue
        if pump.curve.head_pa(duty_flow_m3_s) < duty_head_pa:
            continue
        qualifying.append(pump)
    if not qualifying:
        raise ValueError(
            f"no catalog pump meets {duty_flow_m3_s * 1000:.2f} L/s at "
            f"{duty_head_pa / 1000:.1f} kPa with NPSHa {npsh_available_m_value:.1f} m"
        )
    return min(qualifying, key=lambda p: p.price_usd)


#: A small representative catalog of oil-service circulation pumps.
DEFAULT_CATALOG: List[CatalogPump] = [
    CatalogPump(
        model="G-25",
        curve=PumpCurve(shutoff_pressure_pa=30.0e3, max_flow_m3_s=3.0e-3),
        npsh_required_m=2.0,
        price_usd=420.0,
        oil_rated=True,
    ),
    CatalogPump(
        model="G-40",
        curve=PumpCurve(shutoff_pressure_pa=45.0e3, max_flow_m3_s=5.0e-3),
        npsh_required_m=2.5,
        price_usd=680.0,
        oil_rated=True,
    ),
    CatalogPump(
        model="G-60i",
        curve=PumpCurve(shutoff_pressure_pa=60.0e3, max_flow_m3_s=6.5e-3),
        npsh_required_m=1.0,  # immersed: flooded suction
        price_usd=950.0,
        oil_rated=True,
    ),
    CatalogPump(
        model="W-50 (water only)",
        curve=PumpCurve(shutoff_pressure_pa=55.0e3, max_flow_m3_s=6.0e-3),
        npsh_required_m=3.0,
        price_usd=510.0,
        oil_rated=False,
    ),
]


__all__ = [
    "CatalogPump",
    "DEFAULT_CATALOG",
    "fit_pump_curve",
    "npsh_available_m",
    "select_pump",
    "speed_for_duty",
]
