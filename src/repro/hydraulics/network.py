"""The hydraulic network container.

Junctions are named nodes holding a pressure; elements connect ordered
pairs of junctions. One junction is designated the *reference* (gauge
pressure zero — in a real rack loop this is the expansion tank connection).
External volumetric in/outflows can be attached to junctions, though the
closed loops of the paper's machines normally have none.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.hydraulics.elements import HydraulicElement


class HydraulicsError(ValueError):
    """Raised for structurally invalid hydraulic networks."""


@dataclass(frozen=True)
class Branch:
    """An element installed between two junctions.

    ``name`` identifies the branch in results; positive flow runs from
    ``node_a`` to ``node_b``.
    """

    name: str
    node_a: str
    node_b: str
    element: HydraulicElement


@dataclass
class HydraulicNetwork:
    """A mutable hydraulic network builder and container."""

    _junctions: Dict[str, float] = field(default_factory=dict)  # name -> injection m3/s
    _branches: List[Branch] = field(default_factory=list)
    _branch_names: Dict[str, int] = field(default_factory=dict)
    _reference: Optional[str] = None
    # Junction -> [(branch index, orientation)] adjacency, memoized across
    # solves (the solver walks incidence once per junction per residual
    # evaluation) and invalidated by any structural mutation.
    _adjacency: Optional[Dict[str, List[Tuple[int, int]]]] = field(
        default=None, repr=False, compare=False
    )

    def _invalidate(self) -> None:
        self._adjacency = None

    def add_junction(self, name: str, injection_m3_s: float = 0.0) -> None:
        """Add a junction with an optional external volumetric inflow."""
        if not name:
            raise HydraulicsError("junction name must be non-empty")
        if name in self._junctions:
            raise HydraulicsError(f"duplicate junction {name!r}")
        self._junctions[name] = injection_m3_s
        self._invalidate()

    def set_reference(self, name: str) -> None:
        """Pin the named junction to zero gauge pressure."""
        self._require(name)
        self._reference = name

    def add_branch(
        self, name: str, node_a: str, node_b: str, element: HydraulicElement
    ) -> None:
        """Install an element between two existing junctions."""
        if not name:
            raise HydraulicsError("branch name must be non-empty")
        if name in self._branch_names:
            raise HydraulicsError(f"duplicate branch {name!r}")
        self._require(node_a)
        self._require(node_b)
        if node_a == node_b:
            raise HydraulicsError(f"branch {name!r} forms a self-loop on {node_a!r}")
        self._branch_names[name] = len(self._branches)
        self._branches.append(Branch(name, node_a, node_b, element))
        self._invalidate()

    def replace_element(self, branch_name: str, element: HydraulicElement) -> None:
        """Swap the element on a branch (failure injection, valve actuation)."""
        try:
            i = self._branch_names[branch_name]
        except KeyError:
            raise HydraulicsError(f"unknown branch {branch_name!r}") from None
        old = self._branches[i]
        self._branches[i] = Branch(old.name, old.node_a, old.node_b, element)

    def branch(self, name: str) -> Branch:
        """Look up a branch by name."""
        try:
            return self._branches[self._branch_names[name]]
        except KeyError:
            raise HydraulicsError(f"unknown branch {name!r}") from None

    @property
    def junction_names(self) -> List[str]:
        """All junction names in insertion order."""
        return list(self._junctions)

    @property
    def reference(self) -> Optional[str]:
        """The zero-pressure junction, if set."""
        return self._reference

    @property
    def branches(self) -> List[Branch]:
        """All installed branches."""
        return list(self._branches)

    def injection(self, name: str) -> float:
        """External inflow at a junction, m^3/s."""
        self._require(name)
        return self._junctions[name]

    def open_branches(self) -> List[Branch]:
        """Branches whose element currently passes flow."""
        return [b for b in self._branches if not b.element.is_closed]

    def incident(self, junction: str) -> Iterator[Tuple[Branch, int]]:
        """Yield ``(branch, orientation)`` for open branches at a junction.

        Orientation is +1 when the junction is the branch's ``node_a``
        (positive flow leaves) and -1 when it is ``node_b``. Adjacency is
        memoized (and invalidated on mutation); openness is re-checked on
        every call so valve actuation through :meth:`replace_element` is
        always respected.
        """
        self._require(junction)
        if self._adjacency is None:
            adjacency: Dict[str, List[Tuple[int, int]]] = {
                name: [] for name in self._junctions
            }
            for i, branch in enumerate(self._branches):
                adjacency[branch.node_a].append((i, +1))
                adjacency[branch.node_b].append((i, -1))
            self._adjacency = adjacency
        for i, orientation in self._adjacency[junction]:
            branch = self._branches[i]
            if not branch.element.is_closed:
                yield branch, orientation

    def validate(self) -> None:
        """Check the network is solvable.

        Requires a reference junction, at least one branch, net zero
        external injection, and every junction connected to the reference
        through open branches.
        """
        if not self._junctions:
            raise HydraulicsError("empty network")
        if self._reference is None:
            raise HydraulicsError("no reference junction set")
        if not self._branches:
            raise HydraulicsError("network has no branches")
        total_injection = sum(self._junctions.values())
        if abs(total_injection) > 1e-12:
            raise HydraulicsError(
                f"external injections must sum to zero, got {total_injection:g} m^3/s"
            )
        reached = {self._reference}
        frontier = [self._reference]
        while frontier:
            current = frontier.pop()
            for branch, _ in self.incident(current):
                other = branch.node_b if branch.node_a == current else branch.node_a
                if other not in reached:
                    reached.add(other)
                    frontier.append(other)
        unreached = [j for j in self._junctions if j not in reached]
        if unreached:
            raise HydraulicsError(
                "junctions disconnected from the reference (all paths closed): "
                + ", ".join(sorted(unreached))
            )

    def _require(self, name: str) -> None:
        if name not in self._junctions:
            raise HydraulicsError(f"unknown junction {name!r}")


__all__ = ["Branch", "HydraulicNetwork", "HydraulicsError"]
