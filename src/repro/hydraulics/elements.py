"""Hydraulic network elements.

Every element connects two junctions and defines the pressure change seen by
the fluid travelling in the element's positive direction (node *a* to node
*b*) as a function of the signed volumetric flow:

- passive elements (pipes, fittings, valves, heat-exchanger passages) lose
  pressure: ``pressure_change(q) = -dp_loss(q)``, odd and monotonically
  decreasing in q;
- pumps add head: ``pressure_change(q) = +head(q)``, also monotonically
  decreasing (head falls with flow along the pump curve).

Monotonicity is what guarantees the network solver a unique flow for any
pressure difference, and it is asserted by the property tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.fluids.properties import Fluid
from repro.hydraulics.friction import friction_factor


class HydraulicElement:
    """Base class for a two-port hydraulic element."""

    def pressure_change_pa(self, flow_m3_s: float, fluid: Fluid, temperature_c: float) -> float:
        """Pressure change (p_b - p_a) along positive flow direction, Pa."""
        raise NotImplementedError

    def flow_at_pressure_change_pa(
        self, dp_pa: float, fluid: Fluid, temperature_c: float
    ) -> Optional[float]:
        """Inverse of :meth:`pressure_change_pa`, when cheaply available.

        Returns the unique signed flow at which the element produces the
        given pressure change, or ``None`` when the element has no fast
        inverse — the network solver then falls back to its bracketed
        scalar root find for that branch. Implementations must agree with
        :meth:`pressure_change_pa` to solver precision (the fast path
        cross-checks and falls back otherwise).
        """
        return None

    @property
    def is_closed(self) -> bool:
        """True when the element blocks all flow (a shut valve)."""
        return False


def _invert_quadratic_loss(dp_pa: float, c: float) -> Optional[float]:
    """Invert ``dp = -c q |q|`` for q (None when the element is lossless)."""
    if c <= 0.0 or not math.isfinite(c):
        return None
    return -math.copysign(math.sqrt(abs(dp_pa) / c), dp_pa)


@dataclass
class Pipe(HydraulicElement):
    """A straight circular pipe with optional lumped minor losses.

    Parameters
    ----------
    length_m:
        Pipe length.
    diameter_m:
        Inner diameter.
    roughness_m:
        Absolute wall roughness (default: drawn tube, 1.5 micrometres).
    minor_loss_k:
        Sum of minor-loss coefficients (elbows, entries, exits) charged on
        the pipe velocity head.
    """

    length_m: float
    diameter_m: float
    roughness_m: float = 1.5e-6
    minor_loss_k: float = 0.0

    def __post_init__(self) -> None:
        if self.length_m <= 0 or self.diameter_m <= 0:
            raise ValueError("pipe length and diameter must be positive")
        if self.roughness_m < 0 or self.minor_loss_k < 0:
            raise ValueError("roughness and minor-loss coefficient must be non-negative")

    @property
    def area_m2(self) -> float:
        """Flow cross-section, m^2."""
        return math.pi * self.diameter_m ** 2 / 4.0

    def velocity_m_s(self, flow_m3_s: float) -> float:
        """Mean velocity at the given volumetric flow."""
        return flow_m3_s / self.area_m2

    def reynolds(self, flow_m3_s: float, fluid: Fluid, temperature_c: float) -> float:
        """Reynolds number on the pipe diameter (absolute value of flow)."""
        velocity = abs(self.velocity_m_s(flow_m3_s))
        return velocity * self.diameter_m / fluid.kinematic_viscosity(temperature_c)

    def pressure_change_pa(self, flow_m3_s: float, fluid: Fluid, temperature_c: float) -> float:
        if flow_m3_s == 0.0:
            return 0.0
        rho = fluid.density(temperature_c)
        velocity = self.velocity_m_s(abs(flow_m3_s))
        re = self.reynolds(flow_m3_s, fluid, temperature_c)
        f = friction_factor(re, self.roughness_m / self.diameter_m)
        head = (f * self.length_m / self.diameter_m + self.minor_loss_k) * rho * velocity ** 2 / 2.0
        return -math.copysign(head, flow_m3_s)

    def flow_at_pressure_change_pa(
        self, dp_pa: float, fluid: Fluid, temperature_c: float
    ) -> Optional[float]:
        """Fixed-point inversion of the loss curve (Colebrook-style).

        Iterates velocity -> Reynolds -> friction factor -> velocity; the
        friction factor varies slowly with velocity, so the map contracts
        in a handful of iterations across laminar, transitional and
        turbulent regimes. Returns None (scalar fallback) if it fails to
        settle.
        """
        if dp_pa == 0.0:
            return 0.0
        rho = fluid.density(temperature_c)
        nu = fluid.kinematic_viscosity(temperature_c)
        head = abs(dp_pa)
        rel_roughness = self.roughness_m / self.diameter_m
        f = 0.02  # generic turbulent seed; the loop self-corrects
        velocity = 0.0
        for _ in range(80):
            geometry = f * self.length_m / self.diameter_m + self.minor_loss_k
            new_velocity = math.sqrt(2.0 * head / (rho * geometry))
            if abs(new_velocity - velocity) <= 1e-13 * new_velocity:
                velocity = new_velocity
                break
            velocity = new_velocity
            f = friction_factor(velocity * self.diameter_m / nu, rel_roughness)
        else:
            return None
        return -math.copysign(velocity * self.area_m2, dp_pa)


@dataclass
class MinorLoss(HydraulicElement):
    """A pure minor loss (fitting, entry, tee) on a reference diameter."""

    k: float
    diameter_m: float

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError("loss coefficient must be non-negative")
        if self.diameter_m <= 0:
            raise ValueError("diameter must be positive")

    @property
    def area_m2(self) -> float:
        """Reference flow cross-section, m^2."""
        return math.pi * self.diameter_m ** 2 / 4.0

    def pressure_change_pa(self, flow_m3_s: float, fluid: Fluid, temperature_c: float) -> float:
        rho = fluid.density(temperature_c)
        velocity = flow_m3_s / self.area_m2
        return -self.k * rho * velocity * abs(velocity) / 2.0

    def flow_at_pressure_change_pa(
        self, dp_pa: float, fluid: Fluid, temperature_c: float
    ) -> Optional[float]:
        if dp_pa == 0.0:
            return 0.0
        c = self.k * fluid.density(temperature_c) / (2.0 * self.area_m2 ** 2)
        return _invert_quadratic_loss(dp_pa, c)


@dataclass
class Valve(HydraulicElement):
    """A valve with an opening fraction.

    The loss coefficient scales as ``k_open / opening^2`` — the standard
    equal-percentage-ish behaviour, adequate for the balancing experiments
    where valves are either trim devices or fully shut (loop serviced).

    ``opening = 0`` closes the element entirely.
    """

    k_open: float
    diameter_m: float
    opening: float = 1.0

    def __post_init__(self) -> None:
        if self.k_open <= 0:
            raise ValueError("open loss coefficient must be positive")
        if self.diameter_m <= 0:
            raise ValueError("diameter must be positive")
        if not 0.0 <= self.opening <= 1.0:
            raise ValueError("opening must be within [0, 1]")

    @property
    def is_closed(self) -> bool:
        return self.opening == 0.0

    @property
    def effective_k(self) -> float:
        """Loss coefficient at the current opening."""
        if self.is_closed:
            return math.inf
        return self.k_open / self.opening ** 2

    @property
    def area_m2(self) -> float:
        """Reference flow cross-section, m^2."""
        return math.pi * self.diameter_m ** 2 / 4.0

    def pressure_change_pa(self, flow_m3_s: float, fluid: Fluid, temperature_c: float) -> float:
        if self.is_closed:
            raise ValueError("closed valve carries no flow; solver must skip it")
        rho = fluid.density(temperature_c)
        velocity = flow_m3_s / self.area_m2
        return -self.effective_k * rho * velocity * abs(velocity) / 2.0

    def flow_at_pressure_change_pa(
        self, dp_pa: float, fluid: Fluid, temperature_c: float
    ) -> Optional[float]:
        if self.is_closed:
            raise ValueError("closed valve carries no flow; solver must skip it")
        if dp_pa == 0.0:
            return 0.0
        c = self.effective_k * fluid.density(temperature_c) / (2.0 * self.area_m2 ** 2)
        return _invert_quadratic_loss(dp_pa, c)


@dataclass
class HeatExchangerPassage(HydraulicElement):
    """One side of a heat exchanger as a lumped quadratic+linear resistance.

    ``dp = r_linear * q + r_quadratic * q |q|`` — the linear term captures
    the laminar/port contribution (important for viscous oil), the quadratic
    term the turbulent core. Coefficients come from the plate-HX sizing in
    :mod:`repro.heatexchange.plate` or from vendor curves.
    """

    r_linear_pa_per_m3_s: float = 0.0
    r_quadratic_pa_per_m3_s2: float = 0.0

    def __post_init__(self) -> None:
        if self.r_linear_pa_per_m3_s < 0 or self.r_quadratic_pa_per_m3_s2 < 0:
            raise ValueError("resistance coefficients must be non-negative")
        if self.r_linear_pa_per_m3_s == 0 and self.r_quadratic_pa_per_m3_s2 == 0:
            raise ValueError("passage needs a nonzero resistance")

    def pressure_change_pa(self, flow_m3_s: float, fluid: Fluid, temperature_c: float) -> float:
        q = flow_m3_s
        return -(self.r_linear_pa_per_m3_s * q + self.r_quadratic_pa_per_m3_s2 * q * abs(q))

    def flow_at_pressure_change_pa(
        self, dp_pa: float, fluid: Fluid, temperature_c: float
    ) -> Optional[float]:
        if dp_pa == 0.0:
            return 0.0
        r1 = self.r_linear_pa_per_m3_s
        r2 = self.r_quadratic_pa_per_m3_s2
        drop = abs(dp_pa)  # the curve is odd: solve the magnitude, restore sign
        if r2 == 0.0:
            magnitude = drop / r1
        else:
            magnitude = (-r1 + math.sqrt(r1 * r1 + 4.0 * r2 * drop)) / (2.0 * r2)
        return -math.copysign(magnitude, dp_pa)


@dataclass
class CheckValve(HydraulicElement):
    """A one-way valve: near-free forward flow, near-blocked reverse flow.

    Every circulation loop of the rack carries one so a stopped CM's loop
    cannot back-feed. Modelled as an asymmetric quadratic loss with a
    steep (but finite and smooth) reverse characteristic so the network
    solver keeps a monotone element curve.
    """

    k_forward: float = 1.5
    diameter_m: float = 0.025
    reverse_multiplier: float = 1.0e5

    def __post_init__(self) -> None:
        if self.k_forward <= 0 or self.diameter_m <= 0:
            raise ValueError("forward loss and diameter must be positive")
        if self.reverse_multiplier < 1.0:
            raise ValueError("reverse multiplier cannot be below forward")

    @property
    def area_m2(self) -> float:
        """Reference flow cross-section, m^2."""
        return math.pi * self.diameter_m ** 2 / 4.0

    def pressure_change_pa(self, flow_m3_s: float, fluid: Fluid, temperature_c: float) -> float:
        rho = fluid.density(temperature_c)
        velocity = flow_m3_s / self.area_m2
        k = self.k_forward if flow_m3_s >= 0 else self.k_forward * self.reverse_multiplier
        return -k * rho * velocity * abs(velocity) / 2.0

    def flow_at_pressure_change_pa(
        self, dp_pa: float, fluid: Fluid, temperature_c: float
    ) -> Optional[float]:
        if dp_pa == 0.0:
            return 0.0
        # dp < 0 is a forward loss (q > 0); dp > 0 drives reverse flow.
        k = self.k_forward if dp_pa < 0 else self.k_forward * self.reverse_multiplier
        c = k * fluid.density(temperature_c) / (2.0 * self.area_m2 ** 2)
        return _invert_quadratic_loss(dp_pa, c)


@dataclass(frozen=True)
class PumpCurve:
    """A quadratic centrifugal pump curve ``dp(q) = dp0 (1 - (q/q_max)^2)``.

    Parameters
    ----------
    shutoff_pressure_pa:
        Head at zero flow, Pa.
    max_flow_m3_s:
        Runout flow where head reaches zero.
    """

    shutoff_pressure_pa: float
    max_flow_m3_s: float

    def __post_init__(self) -> None:
        if self.shutoff_pressure_pa <= 0 or self.max_flow_m3_s <= 0:
            raise ValueError("pump curve parameters must be positive")

    def head_pa(self, flow_m3_s: float) -> float:
        """Pump head at the given flow; negative beyond runout.

        Reverse flow (q < 0) returns more than shutoff head, keeping the
        curve monotone so a network with a failed pump still solves.
        """
        q_ratio = flow_m3_s / self.max_flow_m3_s
        return self.shutoff_pressure_pa * (1.0 - q_ratio * abs(q_ratio))

    def flow_at_head_pa(self, head_pa: float) -> float:
        """Inverse of :meth:`head_pa` (monotone, defined for all heads)."""
        arg = 1.0 - head_pa / self.shutoff_pressure_pa
        return self.max_flow_m3_s * math.copysign(math.sqrt(abs(arg)), arg)

    def hydraulic_power_w(self, flow_m3_s: float) -> float:
        """Hydraulic power delivered to the fluid ``dp * q``, W."""
        return max(self.head_pa(flow_m3_s), 0.0) * max(flow_m3_s, 0.0)


@dataclass
class Pump(HydraulicElement):
    """A pump element driving flow from node *a* to node *b*.

    Parameters
    ----------
    curve:
        The pump's H-Q curve at rated speed.
    speed_fraction:
        Affinity-law speed scaling: head scales with speed^2, flow with
        speed. ``0`` models a stopped pump, which (with its check valve)
        blocks reverse flow but is modelled here as a high-resistance leak
        path so transients stay solvable.
    efficiency:
        Wire-to-water efficiency used for electrical power accounting.
    immersed:
        True for the SKAT+ immersed pump design (Section 4) — the pump's
        electrical losses are then dissipated into the oil and counted by
        the CM heat balance.
    """

    curve: PumpCurve
    speed_fraction: float = 1.0
    efficiency: float = 0.55
    immersed: bool = False
    stopped_leak_resistance_pa_per_m3_s2: float = field(default=1.0e12, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.speed_fraction <= 1.5:
            raise ValueError("speed fraction must be within [0, 1.5]")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")

    @property
    def running(self) -> bool:
        """Whether the pump is spinning."""
        return self.speed_fraction > 0.0

    def head_pa(self, flow_m3_s: float) -> float:
        """Head at the given flow and current speed (affinity laws)."""
        if not self.running:
            return -self.stopped_leak_resistance_pa_per_m3_s2 * flow_m3_s * abs(flow_m3_s)
        s = self.speed_fraction
        scaled = self.curve.head_pa(flow_m3_s / s)
        return s ** 2 * scaled

    def pressure_change_pa(self, flow_m3_s: float, fluid: Fluid, temperature_c: float) -> float:
        return self.head_pa(flow_m3_s)

    def flow_at_pressure_change_pa(
        self, dp_pa: float, fluid: Fluid, temperature_c: float
    ) -> Optional[float]:
        if not self.running:
            if dp_pa == 0.0:
                return 0.0
            return _invert_quadratic_loss(
                dp_pa, self.stopped_leak_resistance_pa_per_m3_s2
            )
        s = self.speed_fraction
        return s * self.curve.flow_at_head_pa(dp_pa / s ** 2)

    def electrical_power_w(self, flow_m3_s: float) -> float:
        """Electrical draw at the given operating flow, W."""
        if not self.running:
            return 0.0
        hydraulic = max(self.head_pa(flow_m3_s), 0.0) * max(flow_m3_s, 0.0)
        return hydraulic / self.efficiency


__all__ = [
    "CheckValve",
    "HeatExchangerPassage",
    "HydraulicElement",
    "MinorLoss",
    "Pipe",
    "Pump",
    "PumpCurve",
    "Valve",
]
