"""Nodal Newton solver for hydraulic networks.

Unknowns are the junction pressures (the reference junction is pinned to
zero gauge). For a candidate pressure field, every open branch's flow is
recovered by inverting its monotone pressure-change characteristic; the
residual is the volumetric imbalance at each junction. The outer system is
solved with scipy's hybrid Newton (Powell) method.

Two formulations coexist:

- the **fast path** (:class:`NetworkSolver`, default) inverts each branch
  analytically where the element provides
  :meth:`~repro.hydraulics.elements.HydraulicElement.flow_at_pressure_change_pa`
  (quadratic losses, pump curves, Colebrook fixed-point for pipes) and
  assembles the junction residuals as numpy arrays. It supports
  warm-starting the Newton iteration from the previous pressure field and
  replaying converged solutions from an LRU cache
  (:mod:`repro.hydraulics.cache`);
- the **robust path** brackets every inversion with an expanding interval
  and Brent's method. It never diverges no matter how stiff the element
  curves are, so the fast path falls back to it automatically whenever its
  solution fails the convergence or element-consistency checks (e.g. a
  valve-slam state that defeats the analytic inverses).

Both paths converge to the same junction imbalance tolerance, so their
solutions agree to solver precision — a property the test suite asserts on
randomized networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import brentq, root

from repro.fluids.properties import Fluid
from repro.hydraulics.cache import (
    DEFAULT_TEMPERATURE_BUCKET_C,
    SolutionCache,
    SolverCounters,
    network_state_key,
)
from repro.hydraulics.elements import HydraulicElement, PumpCurve
from repro.hydraulics.network import HydraulicNetwork, HydraulicsError
from repro.obs import get_registry

#: Largest conceivable branch flow used to cap bracket expansion, m^3/s.
_FLOW_CAP_M3_S = 1.0e3

#: Relative/absolute tolerance of the fast path's element-consistency
#: cross-check (inverted flow re-evaluated through the element curve).
_CONSISTENCY_RTOL = 1.0e-8
_CONSISTENCY_ATOL = 1.0e-4

#: Bucket edges of the per-solve residual-evaluation histogram (cache
#: hits land in the first bucket at 0 evaluations).
_RESIDUAL_EVAL_BUCKETS = (0.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0)


class _FastPathFailed(Exception):
    """Internal: the fast formulation did not produce a verified solution."""


def _branch_flow(
    element: HydraulicElement,
    dp_b_minus_a: float,
    fluid: Fluid,
    temperature_c: float,
) -> float:
    """Invert ``pressure_change(q) = dp_b_minus_a`` for the branch flow.

    ``pressure_change`` is monotone decreasing in q for every element type,
    so the root is unique; we expand a symmetric bracket until it straddles
    the root, then apply Brent's method. This is the robust inversion the
    fast path falls back to.
    """

    def residual(q: float) -> float:
        return element.pressure_change_pa(q, fluid, temperature_c) - dp_b_minus_a

    at_zero = residual(0.0)
    if at_zero == 0.0:
        return 0.0
    # Monotone decreasing: positive residual at 0 means the root lies at q > 0.
    q_hi = 1.0e-9
    if at_zero > 0:
        while residual(q_hi) > 0:
            q_hi *= 4.0
            if q_hi > _FLOW_CAP_M3_S:
                raise HydraulicsError("branch flow bracket exceeded the physical cap")
        return brentq(residual, 0.0, q_hi, xtol=1e-15, rtol=1e-12)
    while residual(-q_hi) < 0:
        q_hi *= 4.0
        if q_hi > _FLOW_CAP_M3_S:
            raise HydraulicsError("branch flow bracket exceeded the physical cap")
    return brentq(residual, -q_hi, 0.0, xtol=1e-15, rtol=1e-12)


@dataclass(frozen=True)
class SolveResult:
    """Solution of a hydraulic network.

    Attributes
    ----------
    pressures_pa:
        Gauge pressure per junction.
    flows_m3_s:
        Signed flow per branch name (positive from node_a to node_b);
        closed branches report exactly 0.
    residual_m3_s:
        Worst junction imbalance at the solution (solver quality metric).
    """

    pressures_pa: Dict[str, float]
    flows_m3_s: Dict[str, float]
    residual_m3_s: float

    def flow(self, branch_name: str) -> float:
        """Signed flow of a branch, m^3/s."""
        try:
            return self.flows_m3_s[branch_name]
        except KeyError:
            raise HydraulicsError(f"unknown branch {branch_name!r}") from None

    def pressure_drop_pa(self, node_a: str, node_b: str) -> float:
        """Pressure difference ``p_a - p_b`` between two junctions."""
        return self.pressures_pa[node_a] - self.pressures_pa[node_b]


def junction_residuals(
    network: HydraulicNetwork, result: SolveResult
) -> Dict[str, float]:
    """Signed volumetric imbalance at every junction of a solution, m^3/s.

    For each junction: external injection minus the net flow leaving
    through its open branches. A converged solution keeps every entry
    within the solve tolerance; the verification layer
    (:mod:`repro.verify.checkers`) re-checks this continuity law on every
    manifold solve instead of trusting only the solver's own worst-case
    ``residual_m3_s``.
    """
    residuals: Dict[str, float] = {}
    for name in network.junction_names:
        balance = network.injection(name)
        for branch, orientation in network.incident(name):
            balance -= orientation * result.flows_m3_s[branch.name]
        residuals[name] = balance
    return residuals


class NetworkSolver:
    """A stateful network solver: fast path + warm start + solution cache.

    One instance should own one family of networks that are re-solved many
    times (a manifold system across valve actuations, a transient stepping
    a loop through temperature). Not thread-safe; give each worker of a
    parameter sweep its own instance.

    Parameters
    ----------
    use_cache:
        Replay converged solutions for previously seen (topology, element
        states, fluid, temperature-bucket) keys.
    cache_size:
        LRU capacity when the cache is enabled.
    warm_start:
        Seed Newton with the last converged pressure field of the same
        junction set (falls back to a cold start automatically when the
        warm start fails to converge).
    temperature_bucket_c:
        Temperature quantization of the cache key — see
        :func:`repro.hydraulics.cache.network_state_key`.
    counters:
        An existing :class:`~repro.hydraulics.cache.SolverCounters` to
        accumulate into (a fresh one is created otherwise).
    """

    def __init__(
        self,
        use_cache: bool = True,
        cache_size: int = 256,
        warm_start: bool = True,
        temperature_bucket_c: float = DEFAULT_TEMPERATURE_BUCKET_C,
        counters: Optional[SolverCounters] = None,
    ) -> None:
        self.cache: Optional[SolutionCache] = (
            SolutionCache(cache_size) if use_cache else None
        )
        self.warm_start = warm_start
        self.temperature_bucket_c = temperature_bucket_c
        self.counters = counters if counters is not None else SolverCounters()
        self._warm: Dict[Tuple, np.ndarray] = {}

    def reset(self) -> None:
        """Drop cached solutions, warm-start state and counters."""
        if self.cache is not None:
            self.cache.clear()
        self._warm.clear()
        self.counters.reset()

    def solve(
        self,
        network: HydraulicNetwork,
        fluid: Fluid,
        temperature_c: float,
        tolerance_m3_s: float = 1.0e-9,
    ) -> SolveResult:
        """Solve the network (see :func:`solve_network` for semantics).

        Each call mirrors its counter deltas into the process metrics
        registry under the ``hydraulics_`` prefix (a no-op under the
        default null registry, whose ``enabled`` flag skips the snapshot
        entirely).
        """
        obs = get_registry()
        if not obs.enabled:
            return self._solve(network, fluid, temperature_c, tolerance_m3_s)
        before = self.counters.as_dict()
        with obs.span("hydraulics.solve"):
            try:
                return self._solve(network, fluid, temperature_c, tolerance_m3_s)
            finally:
                after = self.counters.as_dict()
                for name, value in after.items():
                    delta = value - before[name]
                    if delta:
                        obs.inc("hydraulics_" + name, delta)
                obs.observe(
                    "hydraulics_residual_evaluations_per_solve",
                    after["residual_evaluations"] - before["residual_evaluations"],
                    buckets=_RESIDUAL_EVAL_BUCKETS,
                )

    def _solve(
        self,
        network: HydraulicNetwork,
        fluid: Fluid,
        temperature_c: float,
        tolerance_m3_s: float,
    ) -> SolveResult:
        network.validate()
        counters = self.counters
        counters.solves += 1

        key = None
        if self.cache is not None:
            key = network_state_key(
                network, fluid, temperature_c, self.temperature_bucket_c
            )
            cached = self.cache.get(key)
            if cached is not None:
                counters.cache_hits += 1
                return cached
            counters.cache_misses += 1

        unknowns = [j for j in network.junction_names if j != network.reference]
        topo_key = (tuple(network.junction_names), network.reference)
        x0: Optional[np.ndarray] = None
        if self.warm_start:
            previous = self._warm.get(topo_key)
            if previous is not None and len(previous) == len(unknowns):
                x0 = previous
        if x0 is None:
            counters.cold_starts += 1
        else:
            counters.warm_starts += 1

        result, x = _solve_with_fallback(
            network, fluid, temperature_c, tolerance_m3_s, x0, counters
        )
        if self.warm_start and x is not None:
            self._warm[topo_key] = x.copy()
        if key is not None:
            self.cache.put(key, result)
        return result


def _compile(
    network: HydraulicNetwork, unknowns: List[str]
) -> Tuple[List, np.ndarray, np.ndarray, np.ndarray]:
    """Precompute branch/junction index arrays for residual assembly.

    Returns ``(open_branches, a_idx, b_idx, injections)`` where the index
    arrays map each open branch's end nodes into the unknown vector, with
    the reference junction mapped to the extra slot ``len(unknowns)``
    (pinned at zero pressure).
    """
    node_index = {name: i for i, name in enumerate(unknowns)}
    node_index[network.reference] = len(unknowns)
    open_branches = network.open_branches()
    a_idx = np.array([node_index[b.node_a] for b in open_branches], dtype=int)
    b_idx = np.array([node_index[b.node_b] for b in open_branches], dtype=int)
    injections = np.array([network.injection(name) for name in unknowns])
    return open_branches, a_idx, b_idx, injections


def _solve_with_fallback(
    network: HydraulicNetwork,
    fluid: Fluid,
    temperature_c: float,
    tolerance_m3_s: float,
    x0: Optional[np.ndarray],
    counters: SolverCounters,
) -> Tuple[SolveResult, Optional[np.ndarray]]:
    """Fast path first; bracketed scalar formulation when it fails."""
    try:
        result, x = _fast_solve(
            network, fluid, temperature_c, tolerance_m3_s, x0, counters
        )
        counters.fast_path_solves += 1
        return result, x
    except (_FastPathFailed, HydraulicsError, FloatingPointError, ValueError):
        counters.scalar_fallbacks += 1
        return _robust_solve(
            network, fluid, temperature_c, tolerance_m3_s, x0, counters
        )


def _fast_solve(
    network: HydraulicNetwork,
    fluid: Fluid,
    temperature_c: float,
    tolerance_m3_s: float,
    x0: Optional[np.ndarray],
    counters: SolverCounters,
) -> Tuple[SolveResult, Optional[np.ndarray]]:
    unknowns = [j for j in network.junction_names if j != network.reference]
    n = len(unknowns)
    open_branches, a_idx, b_idx, injections = _compile(network, unknowns)
    elements = [b.element for b in open_branches]
    a_interior = a_idx < n
    b_interior = b_idx < n

    def flows_at(dp: np.ndarray) -> np.ndarray:
        q = np.empty(len(elements))
        for i, element in enumerate(elements):
            qi = element.flow_at_pressure_change_pa(dp[i], fluid, temperature_c)
            if qi is None:
                # Branch-level automatic fallback: no (or failed) analytic
                # inverse — bracketed inversion for this branch only.
                counters.bracket_inversions += 1
                qi = _branch_flow(element, dp[i], fluid, temperature_c)
            q[i] = qi
        return q

    def branch_dp(x: np.ndarray) -> np.ndarray:
        pressures = np.concatenate((x, (0.0,)))
        return pressures[b_idx] - pressures[a_idx]

    def residuals(x: np.ndarray) -> np.ndarray:
        counters.residual_evaluations += 1
        q = flows_at(branch_dp(x))
        out = injections.copy()
        np.add.at(out, a_idx[a_interior], -q[a_interior])
        np.add.at(out, b_idx[b_interior], q[b_interior])
        return out

    if n:
        starts: List[np.ndarray] = []
        if x0 is not None:
            starts.append(np.asarray(x0, dtype=float))
        starts.append(np.zeros(n))
        x = None
        last = np.zeros(n)
        for attempt, start in enumerate(starts):
            solution = root(residuals, start, method="hybr", tol=1e-13)
            worst = float(np.max(np.abs(residuals(solution.x))))
            if worst <= tolerance_m3_s:
                x = solution.x
                break
            last = solution.x
        if x is None:
            # One retry from a perturbed start; Powell hybrid occasionally
            # stalls on the flat zero-flow region of quadratic elements.
            solution = root(residuals, last + 1.0e3, method="hybr", tol=1e-13)
            worst = float(np.max(np.abs(residuals(solution.x))))
            if worst > tolerance_m3_s:
                raise _FastPathFailed
            x = solution.x
    else:
        x = np.zeros(0)
        worst = 0.0

    dp = branch_dp(x)
    q = flows_at(dp)
    # Element-consistency cross-check: the inverted flows must land back on
    # the true element curves, otherwise an analytic inverse disagreed with
    # pressure_change_pa and the robust path must take over.
    for i, element in enumerate(elements):
        back = element.pressure_change_pa(float(q[i]), fluid, temperature_c)
        if abs(back - dp[i]) > max(_CONSISTENCY_RTOL * abs(dp[i]), _CONSISTENCY_ATOL):
            raise _FastPathFailed

    pressures = {network.reference: 0.0}
    for name, value in zip(unknowns, x):
        pressures[name] = float(value)
    flows = {b.name: float(qi) for b, qi in zip(open_branches, q)}
    for branch in network.branches:
        if branch.element.is_closed:
            flows[branch.name] = 0.0
    return (
        SolveResult(pressures_pa=pressures, flows_m3_s=flows, residual_m3_s=worst),
        x,
    )


def _robust_solve(
    network: HydraulicNetwork,
    fluid: Fluid,
    temperature_c: float,
    tolerance_m3_s: float,
    x0: Optional[np.ndarray],
    counters: SolverCounters,
) -> Tuple[SolveResult, Optional[np.ndarray]]:
    """The original bracketed scalar formulation (never diverges)."""
    unknowns = [j for j in network.junction_names if j != network.reference]
    index = {name: i for i, name in enumerate(unknowns)}
    open_branches = network.open_branches()

    def pressures_from(x: np.ndarray) -> Dict[str, float]:
        p = {network.reference: 0.0}
        for name, i in index.items():
            p[name] = float(x[i])
        return p

    def flows_from(p: Dict[str, float]) -> Dict[str, float]:
        flows = {}
        for branch in open_branches:
            dp = p[branch.node_b] - p[branch.node_a]
            counters.bracket_inversions += 1
            flows[branch.name] = _branch_flow(branch.element, dp, fluid, temperature_c)
        return flows

    def residuals(x: np.ndarray) -> np.ndarray:
        counters.residual_evaluations += 1
        p = pressures_from(x)
        flows = flows_from(p)
        out = np.zeros(len(unknowns))
        for name, i in index.items():
            balance = network.injection(name)
            for branch, orientation in network.incident(name):
                q = flows[branch.name]
                balance -= orientation * q
            out[i] = balance
        return out

    if unknowns:
        starts: List[np.ndarray] = []
        if x0 is not None:
            starts.append(np.asarray(x0, dtype=float))
        starts.append(np.zeros(len(unknowns)))
        x = None
        last = np.zeros(len(unknowns))
        for start in starts:
            solution = root(residuals, start, method="hybr", tol=1e-13)
            worst = float(np.max(np.abs(residuals(solution.x))))
            if worst <= tolerance_m3_s:
                x = solution.x
                break
            last = solution.x
        if x is None:
            # One retry from a perturbed start; Powell hybrid occasionally
            # stalls on the flat zero-flow region of quadratic elements.
            solution = root(residuals, last + 1.0e3, method="hybr", tol=1e-13)
            x = solution.x
            worst = float(np.max(np.abs(residuals(x))))
            if worst > tolerance_m3_s:
                raise HydraulicsError(
                    f"hydraulic solve did not converge: worst imbalance {worst:g} m^3/s"
                )
    else:
        x = np.zeros(0)
        worst = 0.0

    pressures = pressures_from(x)
    flows = flows_from(pressures)
    for branch in network.branches:
        if branch.element.is_closed:
            flows[branch.name] = 0.0
    return (
        SolveResult(pressures_pa=pressures, flows_m3_s=flows, residual_m3_s=worst),
        x,
    )


def solve_network(
    network: HydraulicNetwork,
    fluid: Fluid,
    temperature_c: float,
    tolerance_m3_s: float = 1.0e-9,
    solver: Optional[NetworkSolver] = None,
) -> SolveResult:
    """Solve the network for junction pressures and branch flows.

    Parameters
    ----------
    network:
        A validated (or validatable) hydraulic network.
    fluid, temperature_c:
        The working fluid and its bulk temperature (fluid properties are
        evaluated once at this temperature).
    tolerance_m3_s:
        Acceptable worst-junction volumetric imbalance.
    solver:
        An optional stateful :class:`NetworkSolver` supplying warm starts
        and a solution cache across calls. Without one, the solve is
        stateless and deterministic: fast path with automatic fallback,
        cold start, no cache.

    Raises
    ------
    HydraulicsError
        If the network is invalid or the solver fails to converge.
    """
    if solver is not None:
        return solver.solve(network, fluid, temperature_c, tolerance_m3_s)
    network.validate()
    counters = SolverCounters()
    counters.solves += 1
    counters.cold_starts += 1
    result, _ = _solve_with_fallback(
        network, fluid, temperature_c, tolerance_m3_s, None, counters
    )
    obs = get_registry()
    if obs.enabled:
        counters.publish(obs)
    return result


def solve_network_robust(
    network: HydraulicNetwork,
    fluid: Fluid,
    temperature_c: float,
    tolerance_m3_s: float = 1.0e-9,
) -> SolveResult:
    """Solve via the bracketed scalar formulation only (reference path).

    The fast path is validated against this in the property tests; it is
    also the right tool for exotic element classes whose analytic inverses
    are suspect.
    """
    network.validate()
    counters = SolverCounters()
    counters.solves += 1
    counters.cold_starts += 1
    result, _ = _robust_solve(
        network, fluid, temperature_c, tolerance_m3_s, None, counters
    )
    obs = get_registry()
    if obs.enabled:
        counters.publish(obs)
    return result


def operating_point(
    curve: PumpCurve,
    system_pressure_drop_pa: Callable[[float], float],
    speed_fraction: float = 1.0,
) -> float:
    """Intersect a pump curve with a system curve for a single closed loop.

    Solves ``speed^2 * head(q / speed) = dp_system(q)`` for the loop flow.
    This is the fast path used by the CM's self-contained oil loop, where
    the whole circuit is one series resistance and building a full network
    is unnecessary.

    Returns the loop flow in m^3/s (0 when the pump is stopped).
    """
    if speed_fraction <= 0.0:
        return 0.0

    def mismatch(q: float) -> float:
        head = speed_fraction ** 2 * curve.head_pa(q / speed_fraction)
        return head - system_pressure_drop_pa(q)

    q_hi = speed_fraction * curve.max_flow_m3_s
    if mismatch(q_hi) > 0:
        # System curve never catches the pump before runout: run at runout.
        return q_hi
    return brentq(mismatch, 0.0, q_hi, xtol=1e-15, rtol=1e-12)


__all__ = [
    "NetworkSolver",
    "SolveResult",
    "junction_residuals",
    "operating_point",
    "solve_network",
    "solve_network_robust",
]
