"""Nodal Newton solver for hydraulic networks.

Unknowns are the junction pressures (the reference junction is pinned to
zero gauge). For a candidate pressure field, every open branch's flow is
recovered by inverting its monotone pressure-change characteristic with a
bracketed scalar root find; the residual is the volumetric imbalance at
each junction. The outer system is solved with scipy's hybrid
Newton (Powell) method.

This is deliberately the robust formulation rather than the fastest one:
the balancing experiments repeatedly re-solve small networks (tens of
junctions) with valves slamming shut, and bracketed inversion never
diverges no matter how stiff the element curves are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np
from scipy.optimize import brentq, root

from repro.fluids.properties import Fluid
from repro.hydraulics.elements import HydraulicElement, PumpCurve
from repro.hydraulics.network import HydraulicNetwork, HydraulicsError

#: Largest conceivable branch flow used to cap bracket expansion, m^3/s.
_FLOW_CAP_M3_S = 1.0e3


def _branch_flow(
    element: HydraulicElement,
    dp_b_minus_a: float,
    fluid: Fluid,
    temperature_c: float,
) -> float:
    """Invert ``pressure_change(q) = dp_b_minus_a`` for the branch flow.

    ``pressure_change`` is monotone decreasing in q for every element type,
    so the root is unique; we expand a symmetric bracket until it straddles
    the root, then apply Brent's method.
    """

    def residual(q: float) -> float:
        return element.pressure_change_pa(q, fluid, temperature_c) - dp_b_minus_a

    at_zero = residual(0.0)
    if at_zero == 0.0:
        return 0.0
    # Monotone decreasing: positive residual at 0 means the root lies at q > 0.
    q_hi = 1.0e-9
    if at_zero > 0:
        while residual(q_hi) > 0:
            q_hi *= 4.0
            if q_hi > _FLOW_CAP_M3_S:
                raise HydraulicsError("branch flow bracket exceeded the physical cap")
        return brentq(residual, 0.0, q_hi, xtol=1e-15, rtol=1e-12)
    while residual(-q_hi) < 0:
        q_hi *= 4.0
        if q_hi > _FLOW_CAP_M3_S:
            raise HydraulicsError("branch flow bracket exceeded the physical cap")
    return brentq(residual, -q_hi, 0.0, xtol=1e-15, rtol=1e-12)


@dataclass(frozen=True)
class SolveResult:
    """Solution of a hydraulic network.

    Attributes
    ----------
    pressures_pa:
        Gauge pressure per junction.
    flows_m3_s:
        Signed flow per branch name (positive from node_a to node_b);
        closed branches report exactly 0.
    residual_m3_s:
        Worst junction imbalance at the solution (solver quality metric).
    """

    pressures_pa: Dict[str, float]
    flows_m3_s: Dict[str, float]
    residual_m3_s: float

    def flow(self, branch_name: str) -> float:
        """Signed flow of a branch, m^3/s."""
        try:
            return self.flows_m3_s[branch_name]
        except KeyError:
            raise HydraulicsError(f"unknown branch {branch_name!r}") from None

    def pressure_drop_pa(self, node_a: str, node_b: str) -> float:
        """Pressure difference ``p_a - p_b`` between two junctions."""
        return self.pressures_pa[node_a] - self.pressures_pa[node_b]


def solve_network(
    network: HydraulicNetwork,
    fluid: Fluid,
    temperature_c: float,
    tolerance_m3_s: float = 1.0e-9,
) -> SolveResult:
    """Solve the network for junction pressures and branch flows.

    Parameters
    ----------
    network:
        A validated (or validatable) hydraulic network.
    fluid, temperature_c:
        The working fluid and its bulk temperature (fluid properties are
        evaluated once at this temperature).
    tolerance_m3_s:
        Acceptable worst-junction volumetric imbalance.

    Raises
    ------
    HydraulicsError
        If the network is invalid or the solver fails to converge.
    """
    network.validate()
    unknowns = [j for j in network.junction_names if j != network.reference]
    index = {name: i for i, name in enumerate(unknowns)}
    open_branches = network.open_branches()

    def pressures_from(x: np.ndarray) -> Dict[str, float]:
        p = {network.reference: 0.0}
        for name, i in index.items():
            p[name] = float(x[i])
        return p

    def flows_from(p: Dict[str, float]) -> Dict[str, float]:
        flows = {}
        for branch in open_branches:
            dp = p[branch.node_b] - p[branch.node_a]
            flows[branch.name] = _branch_flow(branch.element, dp, fluid, temperature_c)
        return flows

    def residuals(x: np.ndarray) -> np.ndarray:
        p = pressures_from(x)
        flows = flows_from(p)
        out = np.zeros(len(unknowns))
        for name, i in index.items():
            balance = network.injection(name)
            for branch, orientation in network.incident(name):
                q = flows[branch.name]
                balance -= orientation * q
            out[i] = balance
        return out

    if unknowns:
        x0 = np.zeros(len(unknowns))
        solution = root(residuals, x0, method="hybr", tol=1e-13)
        x = solution.x
        worst = float(np.max(np.abs(residuals(x)))) if len(unknowns) else 0.0
        if worst > tolerance_m3_s:
            # One retry from a perturbed start; Powell hybrid occasionally
            # stalls on the flat zero-flow region of quadratic elements.
            solution = root(residuals, x + 1.0e3, method="hybr", tol=1e-13)
            x = solution.x
            worst = float(np.max(np.abs(residuals(x))))
            if worst > tolerance_m3_s:
                raise HydraulicsError(
                    f"hydraulic solve did not converge: worst imbalance {worst:g} m^3/s"
                )
    else:
        x = np.zeros(0)
        worst = 0.0

    pressures = pressures_from(x)
    flows = flows_from(pressures)
    for branch in network.branches:
        if branch.element.is_closed:
            flows[branch.name] = 0.0
    return SolveResult(pressures_pa=pressures, flows_m3_s=flows, residual_m3_s=worst)


def operating_point(
    curve: PumpCurve,
    system_pressure_drop_pa: Callable[[float], float],
    speed_fraction: float = 1.0,
) -> float:
    """Intersect a pump curve with a system curve for a single closed loop.

    Solves ``speed^2 * head(q / speed) = dp_system(q)`` for the loop flow.
    This is the fast path used by the CM's self-contained oil loop, where
    the whole circuit is one series resistance and building a full network
    is unnecessary.

    Returns the loop flow in m^3/s (0 when the pump is stopped).
    """
    if speed_fraction <= 0.0:
        return 0.0

    def mismatch(q: float) -> float:
        head = speed_fraction ** 2 * curve.head_pa(q / speed_fraction)
        return head - system_pressure_drop_pa(q)

    q_hi = speed_fraction * curve.max_flow_m3_s
    if mismatch(q_hi) > 0:
        # System curve never catches the pump before runout: run at runout.
        return q_hi
    return brentq(mismatch, 0.0, q_hi, xtol=1e-15, rtol=1e-12)


__all__ = ["SolveResult", "operating_point", "solve_network"]
