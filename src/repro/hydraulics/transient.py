"""Hydraulic transients of a single closed loop: spin-up and coast-down.

When the SKAT circulation pump stops, the oil does not stop instantly —
the fluid column's inertia coasts the flow down over seconds. That coast
time sets how quickly the chips lose their forced-convection film during
a pump failure, so the failure simulations need it.

Model: lumped incompressible loop with inertance
``I = rho L / A`` (Pa s^2/m^3), driven by the pump head against the
loop's resistance:

    I dQ/dt = head(Q, t) - dp_loop(Q)

Integrated with RK4 at a fixed step; both the pump head and the loop
resistance are arbitrary callables, so the module-level system curves
plug straight in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.fluids.properties import Fluid


def loop_inertance(
    fluid: Fluid, temperature_c: float, length_m: float, area_m2: float
) -> float:
    """Inertance of a fluid column, ``rho L / A``, Pa s^2/m^3."""
    if length_m <= 0 or area_m2 <= 0:
        raise ValueError("length and area must be positive")
    return fluid.density(temperature_c) * length_m / area_m2


@dataclass(frozen=True)
class LoopTransient:
    """Flow history of a loop transient.

    ``settled`` is True when an early-settle tolerance was given and the
    integration stopped because the flow derivative fell inside it before
    the requested duration elapsed.
    """

    times_s: np.ndarray
    flows_m3_s: np.ndarray
    settled: bool = False

    @property
    def final_flow_m3_s(self) -> float:
        """Flow at the end of the run."""
        return float(self.flows_m3_s[-1])

    @property
    def steps(self) -> int:
        """RK4 steps actually integrated."""
        return len(self.times_s) - 1

    def time_to_fraction(self, fraction: float) -> float:
        """First time the flow falls to ``fraction`` of its initial value
        (coast-down) or rises to it (spin-up from rest).

        Returns the last sample time if the threshold is never crossed.
        """
        if not 0.0 < fraction < 10.0:
            raise ValueError("fraction must be positive")
        q0 = self.flows_m3_s[0]
        target = fraction * q0 if q0 > 0 else fraction * self.final_flow_m3_s
        if q0 > target:  # coast-down
            below = np.nonzero(self.flows_m3_s <= target)[0]
            idx = below[0] if len(below) else -1
        else:  # spin-up
            above = np.nonzero(self.flows_m3_s >= target)[0]
            idx = above[0] if len(above) else -1
        return float(self.times_s[idx])


def simulate_loop_flow(
    head_pa: Callable[[float, float], float],
    loop_drop_pa: Callable[[float], float],
    inertance: float,
    initial_flow_m3_s: float,
    duration_s: float,
    dt_s: float = 0.01,
    settle_atol_m3_s2: Optional[float] = None,
) -> LoopTransient:
    """Integrate the loop momentum balance.

    Parameters
    ----------
    head_pa:
        ``f(flow, time) -> head`` — the (possibly time-varying) pump head;
        return 0 for a stopped pump.
    loop_drop_pa:
        ``f(flow) -> dp`` — the loop's resistive drop (must be odd-ish:
        non-negative for non-negative flow).
    inertance:
        Loop inertance from :func:`loop_inertance`.
    initial_flow_m3_s:
        Flow at t = 0.
    duration_s, dt_s:
        Run length and RK4 step.
    settle_atol_m3_s2:
        Optional early exit: stop once ``|dQ/dt|`` falls below this
        threshold (the transient has settled). None — the default —
        always integrates the full duration, so existing callers see
        identical histories. Note :meth:`LoopTransient.time_to_fraction`
        reports the last sample time for thresholds the truncated run
        never reached.
    """
    if inertance <= 0:
        raise ValueError("inertance must be positive")
    if duration_s <= 0 or dt_s <= 0:
        raise ValueError("duration and step must be positive")
    if settle_atol_m3_s2 is not None and settle_atol_m3_s2 <= 0:
        raise ValueError("settle tolerance must be positive")

    def dq_dt(q: float, t: float) -> float:
        drop = loop_drop_pa(abs(q))
        signed_drop = drop if q >= 0 else -drop
        return (head_pa(q, t) - signed_drop) / inertance

    steps = int(duration_s / dt_s) + 1
    times: List[float] = [0.0]
    flows: List[float] = [initial_flow_m3_s]
    q = initial_flow_m3_s
    t = 0.0
    settled = False
    for _ in range(steps):
        k1 = dq_dt(q, t)
        if settle_atol_m3_s2 is not None and abs(k1) < settle_atol_m3_s2:
            settled = True
            break
        k2 = dq_dt(q + 0.5 * dt_s * k1, t + 0.5 * dt_s)
        k3 = dq_dt(q + 0.5 * dt_s * k2, t + 0.5 * dt_s)
        k4 = dq_dt(q + dt_s * k3, t + dt_s)
        q += dt_s * (k1 + 2 * k2 + 2 * k3 + k4) / 6.0
        q = max(q, 0.0)  # the check valve stops reverse flow
        t += dt_s
        times.append(t)
        flows.append(q)
    return LoopTransient(
        times_s=np.asarray(times), flows_m3_s=np.asarray(flows), settled=settled
    )


def coast_down(
    module_drop_pa: Callable[[float], float],
    inertance: float,
    initial_flow_m3_s: float,
    duration_s: float = 10.0,
    dt_s: float = 0.01,
    settle_atol_m3_s2: Optional[float] = None,
) -> LoopTransient:
    """Flow decay after a pump trip (head drops to zero at t = 0)."""
    return simulate_loop_flow(
        head_pa=lambda q, t: 0.0,
        loop_drop_pa=module_drop_pa,
        inertance=inertance,
        initial_flow_m3_s=initial_flow_m3_s,
        duration_s=duration_s,
        dt_s=dt_s,
        settle_atol_m3_s2=settle_atol_m3_s2,
    )


def spin_up(
    head_at_flow_pa: Callable[[float], float],
    module_drop_pa: Callable[[float], float],
    inertance: float,
    duration_s: float = 10.0,
    dt_s: float = 0.01,
    settle_atol_m3_s2: Optional[float] = None,
) -> LoopTransient:
    """Flow rise from rest when the pump starts at full speed."""
    return simulate_loop_flow(
        head_pa=lambda q, t: head_at_flow_pa(q),
        loop_drop_pa=module_drop_pa,
        inertance=inertance,
        initial_flow_m3_s=0.0,
        duration_s=duration_s,
        dt_s=dt_s,
        settle_atol_m3_s2=settle_atol_m3_s2,
    )


__all__ = [
    "LoopTransient",
    "coast_down",
    "loop_inertance",
    "simulate_loop_flow",
    "spin_up",
]
