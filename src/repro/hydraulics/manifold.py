"""Shared builder for supply/return manifold networks (Fig. 5 topology).

Both distribution scales of the reproduction use the same plumbing idiom:
a pump feeds a supply manifold, N parallel branches (a trim valve in
series with a hydraulic passage) drop to a return manifold, and a riser
closes the loop back through the heat sink to the pump. The rack-level
system (:class:`repro.core.balancing.RackManifoldSystem`, one branch per
CM) and the facility-level secondary loop
(:class:`repro.facility.network.FacilityLoopSystem`, one branch per rack)
only differ in element sizing and in what a "branch" means, so the
network construction lives here once.

Junction/branch naming is part of the contract — solution caches
fingerprint the topology, and the simulators valve branches off by name —
so both callers share it: junctions ``s{i}``/``m{i}``/``r{i}``, branches
``pump``, ``supply_in``, ``supply_{i}_{i+1}``, ``valve_{i}``,
``loop_{i}``, ``return_{i}_{i+1}``, ``riser``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.hydraulics.elements import HydraulicElement, Pump
from repro.hydraulics.network import HydraulicNetwork


@dataclass(frozen=True)
class ManifoldNetworkPlan:
    """A built manifold network plus the names the caller operates by."""

    network: HydraulicNetwork
    valve_names: List[str]
    loop_names: List[str]


def build_return_manifold_network(
    n_loops: int,
    reverse_return: bool,
    pump: Pump,
    segment_factory: Callable[[], HydraulicElement],
    valves: Sequence[HydraulicElement],
    passages: Sequence[HydraulicElement],
    riser: HydraulicElement,
) -> ManifoldNetworkPlan:
    """Build the Fig. 5 manifold loop as a solvable network.

    Parameters
    ----------
    n_loops:
        Parallel branch count (CM loops at rack scale, rack branches at
        facility scale); at least 2.
    reverse_return:
        True places the return-manifold outlet at the far end (the
        paper's balanced Tichelmann layout); False short-circuits at the
        near end (direct return).
    pump:
        The primary circulation pump.
    segment_factory:
        Zero-argument callable producing one manifold segment element
        (called once per supply and return segment).
    valves, passages:
        Per-branch isolation/trim valve and branch hydraulic resistance,
        one each per loop. The valve sits between the supply tap and the
        mid-branch node, the passage between the mid node and the return
        tap.
    riser:
        The return pipe plus heat-sink circuit closing the loop.
    """
    if n_loops < 2:
        raise ValueError("a manifold system needs at least 2 loops")
    if len(valves) != n_loops or len(passages) != n_loops:
        raise ValueError("one valve and one passage per loop required")
    net = HydraulicNetwork()
    net.add_junction("pump_in")
    net.add_junction("pump_out")
    net.set_reference("pump_in")
    for i in range(n_loops):
        net.add_junction(f"s{i}")
        net.add_junction(f"r{i}")
        net.add_junction(f"m{i}")  # mid-loop node between valve and passage

    net.add_branch("pump", "pump_in", "pump_out", pump)
    # Supply manifold: inlet (Fig. 5 item 8) at the loop-0 end.
    net.add_branch("supply_in", "pump_out", "s0", segment_factory())
    for i in range(n_loops - 1):
        net.add_branch(f"supply_{i}_{i + 1}", f"s{i}", f"s{i + 1}", segment_factory())

    valve_names: List[str] = []
    loop_names: List[str] = []
    for i in range(n_loops):
        valve_name = f"valve_{i}"
        valve_names.append(valve_name)
        net.add_branch(valve_name, f"s{i}", f"m{i}", valves[i])
        loop_name = f"loop_{i}"
        loop_names.append(loop_name)
        net.add_branch(loop_name, f"m{i}", f"r{i}", passages[i])

    # Return manifold segments always run along the row; only the outlet
    # position differs between the layouts.
    for i in range(n_loops - 1):
        net.add_branch(f"return_{i}_{i + 1}", f"r{i}", f"r{i + 1}", segment_factory())
    if reverse_return:
        # Fig. 5: outlet of the return manifold (item 11) at the far end,
        # returned by pipe 12 through the heat sink to the pump.
        net.add_branch("riser", f"r{n_loops - 1}", "pump_in", riser)
    else:
        net.add_branch("riser", "r0", "pump_in", riser)
    return ManifoldNetworkPlan(
        network=net, valve_names=valve_names, loop_names=loop_names
    )


__all__ = ["ManifoldNetworkPlan", "build_return_manifold_network"]
