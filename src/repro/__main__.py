"""Command-line entry point: ``python -m repro <command>``.

Commands:

- ``summary`` — the headline SKAT numbers against the paper's anchors.
- ``machines`` — solve every machine (Rigel-2, Taygeta, SKAT, SKAT+).
- ``balance [n]`` — the Fig. 5 manifold study for n loops (default 6).
- ``scorecard`` — the three-architecture comparison.
- ``energy`` — annual energy accounting.
- ``tco`` — cooling total-cost-of-ownership comparison.
- ``sensitivity`` — the SKAT design-point sensitivity tornado.
- ``commission`` — the staged heat experiment on SKAT.
- ``experiments`` — rebuild every paper-vs-measured table (slow).
"""

from __future__ import annotations

import sys


def _summary() -> None:
    from repro.core.skat import SKAT_WATER_FLOW_M3_S, SKAT_WATER_SUPPLY_C, skat

    report = skat().solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
    chips = report.immersion.chips_per_board
    print("SKAT computational module — measured vs paper")
    print(f"  max FPGA junction : {report.max_fpga_c:5.1f} C   (paper: <= 55 C)")
    print(f"  bath temperature  : {report.bath_mean_c:5.1f} C   (paper: <= 30 C)")
    print(f"  per-FPGA power    : {sum(c.power_w for c in chips) / len(chips):5.1f} W   (paper: 91 W)")
    print(f"  96-FPGA field     : {96 * sum(c.power_w for c in chips) / 8:5.0f} W  (paper: 8736 W)")


def _machines() -> None:
    from repro.core.skat import (
        SKAT_WATER_FLOW_M3_S,
        SKAT_WATER_SUPPLY_C,
        rigel2,
        skat,
        skat_plus,
        taygeta,
    )

    for name, machine in [("Rigel-2", rigel2()), ("Taygeta", taygeta())]:
        report = machine.solve(25.0)
        print(f"{name:8s} (air)      : maxTj {report.max_junction_c:5.1f} C, "
              f"{report.module_power_w:6.0f} W")
    for machine in (skat(), skat_plus()):
        report = machine.solve_steady(SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S)
        print(f"{machine.name:8s} (immersion): maxTj {report.max_fpga_c:5.1f} C, "
              f"{report.module_electrical_w:6.0f} W, bath {report.bath_mean_c:4.1f} C")


def _balance(n_loops: int) -> None:
    from repro.core.balancing import ManifoldLayout, RackManifoldSystem

    for layout in ManifoldLayout:
        report = RackManifoldSystem(n_loops=n_loops, layout=layout).solve()
        flows = " ".join(f"{q * 1000:.3f}" for q in report.loop_flows_m3_s)
        print(f"{layout.value:8s}: [{flows}] L/s  max/min {report.imbalance_ratio:.3f}")


def _scorecard() -> None:
    from repro.analysis.compare import compare_architectures, render_scorecard

    print(render_scorecard(compare_architectures()))


def _energy() -> None:
    from repro.analysis.energy import annual_energy_report, render_energy_report

    report = annual_energy_report()
    print(render_energy_report(report["air"]))
    print(render_energy_report(report["immersion"]))
    print(f"overhead ratio: {report['overhead_ratio']:.1f}x")


def _tco() -> None:
    from repro.analysis.tco import rack_tco_comparison, render_tco

    print(render_tco(rack_tco_comparison()))


def _sensitivity() -> None:
    from repro.analysis.sensitivity import render_sensitivity, skat_sensitivity

    print(render_sensitivity(skat_sensitivity()))


def _commission() -> None:
    from repro.core.commissioning import run_heat_experiment
    from repro.core.skat import SKAT_WATER_FLOW_M3_S, SKAT_WATER_SUPPLY_C, skat

    print(run_heat_experiment(skat(), SKAT_WATER_SUPPLY_C, SKAT_WATER_FLOW_M3_S).render())


def _experiments() -> None:
    import importlib.util
    from pathlib import Path

    bench_dir = Path(__file__).resolve().parent.parent.parent / "benchmarks"
    for path in sorted(bench_dir.glob("test_bench_*.py")):
        spec = importlib.util.spec_from_file_location(path.stem, path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        # Pure-timing benches (test_bench_solvers) carry no claim table.
        if hasattr(module, "build_table"):
            module.build_table().print()


COMMANDS = {
    "summary": lambda args: _summary(),
    "machines": lambda args: _machines(),
    "balance": lambda args: _balance(int(args[0]) if args else 6),
    "scorecard": lambda args: _scorecard(),
    "energy": lambda args: _energy(),
    "tco": lambda args: _tco(),
    "sensitivity": lambda args: _sensitivity(),
    "commission": lambda args: _commission(),
    "experiments": lambda args: _experiments(),
}


def main(argv=None) -> int:
    """Dispatch a CLI command; returns the process exit code."""
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help") or argv[0] not in COMMANDS:
        print(__doc__)
        return 0 if argv and argv[0] in ("-h", "--help") else 1
    COMMANDS[argv[0]](argv[1:])
    return 0


if __name__ == "__main__":
    sys.exit(main())
